#include "race/race.hpp"

#include "history/print.hpp"
#include "order/derived.hpp"

namespace ssm::race {

rel::Relation synchronizes_with(const SystemHistory& h) {
  rel::Relation sw(h.size());
  for (const auto& op : h.operations()) {
    if (!op.is_labeled() || !op.is_read()) continue;
    const OpIndex w = h.writer_of(op.index);
    if (w != kNoOp && h.op(w).is_labeled()) sw.add(w, op.index);
  }
  return sw;
}

rel::Relation happens_before(const SystemHistory& h) {
  rel::Relation hb = order::Orders(h).po();
  hb |= synchronizes_with(h);
  return hb.transitive_closure();
}

std::vector<Race> find_races(const SystemHistory& h) {
  const rel::Relation hb = happens_before(h);
  std::vector<Race> races;
  for (OpIndex i = 0; i < h.size(); ++i) {
    const auto& a = h.op(i);
    if (a.is_labeled()) continue;
    for (OpIndex j = i + 1; j < h.size(); ++j) {
      const auto& b = h.op(j);
      if (b.is_labeled()) continue;
      if (a.proc == b.proc || a.loc != b.loc) continue;
      if (!a.is_write() && !b.is_write()) continue;
      if (!hb.test(i, j) && !hb.test(j, i)) races.push_back({i, j});
    }
  }
  return races;
}

bool is_data_race_free(const SystemHistory& h) {
  return find_races(h).empty();
}

std::string format_races(const SystemHistory& h,
                         const std::vector<Race>& races) {
  std::string out;
  for (const auto& r : races) {
    out += "race: ";
    out += history::format_op(h, r.first);
    out += " || ";
    out += history::format_op(h, r.second);
    out += '\n';
  }
  return out;
}

}  // namespace ssm::race
