// Data-race analysis: the program-model side of the paper's story.
//
// The paper (§1, §3.4) follows the properly-labeled / data-race-free
// program discipline: "programs that meet certain requirements (properly
// labeled or data-race-free) do not need to be aware of the weak
// consistency".  The cited result (Gibbons-Merritt-Gharachorloo, paper
// ref [8]) is that race-free programs see sequentially consistent
// behaviour on RC_sc.  This module makes the per-execution version of
// that guarantee checkable:
//
//   * synchronization happens-before  hb = (po ∪ sw)+, where sw links a
//     labeled write to every labeled read returning its value;
//   * two operations conflict when they target the same location, at
//     least one writes, and they are issued by different processors;
//   * a history is data-race-free (DRF) when every conflicting pair of
//     ordinary operations is hb-ordered.
//
// The empirical DRF theorem (tests/race/drf_test.cpp, bench/drf_theorem):
// over exhaustively enumerated labeled universes, every RC_sc-admitted
// DRF history is SC-admitted — weakness is only observable through races.
#pragma once

#include <vector>

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::race {

using history::SystemHistory;

/// sw: labeled write -> labeled read that returns its value.
[[nodiscard]] rel::Relation synchronizes_with(const SystemHistory& h);

/// hb = (po ∪ sw)+.
[[nodiscard]] rel::Relation happens_before(const SystemHistory& h);

struct Race {
  OpIndex first;
  OpIndex second;
};

/// All unordered conflicting pairs of ordinary operations (first < second
/// by dense index).
[[nodiscard]] std::vector<Race> find_races(const SystemHistory& h);

[[nodiscard]] bool is_data_race_free(const SystemHistory& h);

/// Human-readable race report (empty string when race-free).
[[nodiscard]] std::string format_races(const SystemHistory& h,
                                       const std::vector<Race>& races);

}  // namespace ssm::race
