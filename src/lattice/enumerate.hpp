// History enumeration and sampling for the empirical lattice (Figure 5).
//
// Histories are enumerated in a canonical form that loses no generality:
// the k-th write to a location (in processor-major program order) writes
// value k, and each read returns either 0 (the initial value) or the value
// of some write to its location.  Every well-formed history is isomorphic
// (by value renaming) to exactly one canonical history, so set inclusions
// measured over this universe are exact, not sampled.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "history/system_history.hpp"

namespace ssm::lattice {

using history::SystemHistory;

struct EnumerationSpec {
  std::uint32_t procs = 2;
  std::uint32_t ops_per_proc = 2;
  std::uint32_t locs = 2;
  /// When true, read-modify-write operations participate in enumeration
  /// (costly; off by default).
  bool include_rmw = false;
  /// Locations below this index are synchronization variables: every
  /// operation on them is labeled (used for labeled-model universes —
  /// release consistency, weak ordering, DRF experiments).
  std::uint32_t sync_locs = 0;
};

/// Calls `visit` with every canonical history for the spec; stops early if
/// `visit` returns false.  Returns the number of histories visited.
std::uint64_t for_each_history(
    const EnumerationSpec& spec,
    const std::function<bool(const SystemHistory&)>& visit);

/// One uniformly-shaped random canonical history (used for large-scale
/// sampling beyond the exhaustive envelope).
[[nodiscard]] SystemHistory random_history(const EnumerationSpec& spec,
                                           Rng& rng);

}  // namespace ssm::lattice
