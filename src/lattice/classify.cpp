#include "lattice/classify.hpp"

namespace ssm::lattice {

Pattern classify(const history::SystemHistory& h,
                 const std::vector<models::ModelPtr>& models) {
  Pattern p;
  p.reserve(models.size());
  for (const auto& m : models) {
    p.push_back(m->check(h).allowed);
  }
  return p;
}

void ClassifyStats::add(const Pattern& p) {
  ++total;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i]) ++admitted[i];
  }
  ++patterns[p];
}

ClassifyStats make_stats(const std::vector<models::ModelPtr>& models) {
  ClassifyStats s;
  for (const auto& m : models) s.model_names.emplace_back(m->name());
  s.admitted.assign(models.size(), 0);
  return s;
}

}  // namespace ssm::lattice
