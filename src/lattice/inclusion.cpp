#include "lattice/inclusion.hpp"

#include "history/print.hpp"
#include "lattice/classify.hpp"

namespace ssm::lattice {
namespace {

InclusionReport prepare(const std::vector<models::ModelPtr>& models) {
  InclusionReport r;
  const std::size_t n = models.size();
  for (const auto& m : models) r.model_names.emplace_back(m->name());
  r.admitted.assign(n, 0);
  r.only_in.assign(n, std::vector<std::uint64_t>(n, 0));
  r.witness.assign(
      n, std::vector<std::optional<std::string>>(n, std::nullopt));
  return r;
}

void absorb(InclusionReport& r, const history::SystemHistory& h,
            const Pattern& p) {
  ++r.universe_size;
  const std::size_t n = p.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!p[i]) continue;
    ++r.admitted[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (p[j]) continue;
      if (r.only_in[i][j]++ == 0) {
        r.witness[i][j] = history::format_history(h);
      }
    }
  }
}

}  // namespace

std::string InclusionReport::format() const {
  std::string out;
  const std::size_t n = model_names.size();
  out += "universe: " + std::to_string(universe_size) + " histories\n";
  for (std::size_t i = 0; i < n; ++i) {
    out += model_names[i] + ": " + std::to_string(admitted[i]) +
           " admitted\n";
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      out += model_names[i] + " vs " + model_names[j] + ": ";
      if (strictly_stronger(i, j)) {
        out += model_names[i] + " strictly stronger";
      } else if (strictly_stronger(j, i)) {
        out += model_names[j] + " strictly stronger";
      } else if (stronger_or_equal(i, j) && stronger_or_equal(j, i)) {
        out += "equivalent over this universe";
      } else {
        out += "incomparable";
      }
      out += " (|" + model_names[i] + "\\" + model_names[j] +
             "|=" + std::to_string(only_in[i][j]) + ", |" + model_names[j] +
             "\\" + model_names[i] + "|=" + std::to_string(only_in[j][i]) +
             ")\n";
    }
  }
  return out;
}

InclusionReport compute_inclusions(
    const EnumerationSpec& spec,
    const std::vector<models::ModelPtr>& models) {
  InclusionReport r = prepare(models);
  for_each_history(spec, [&](const history::SystemHistory& h) {
    absorb(r, h, classify(h, models));
    return true;
  });
  return r;
}

const std::vector<Containment>& figure5_containments() {
  // Figure 5 chains: SC ⊆ TSO ⊆ {PC, Causal} ⊆ PRAM, plus extension
  // floors.  Transitive closure is intentionally not expanded: the fuzzing
  // oracle and the property tests close over chains by checking every
  // edge, and keeping the list primitive keeps failure messages sharp.
  static const std::vector<Containment> edges = {
      {"SC", "TSO"},           {"TSO", "PC"},      {"TSO", "Causal"},
      {"PC", "PRAM"},          {"Causal", "PRAM"}, {"SC", "PCg"},
      {"PCg", "PRAM"},         {"PRAM", "Slow"},   {"Slow", "Local"},
      {"SC", "Cache"},         {"TSO", "TSOfwd"},  {"SC", "CausalCoh"},
      {"CausalCoh", "Causal"}, {"SC", "RCsc"},     {"RCsc", "RCpc"},
      {"SC", "WO"},            {"WO", "RCsc"},     {"WO", "HC"},
      {"SC", "HC"},            {"RCsc", "RCg"},
      {"CausalCoh", "CausalCohL"},                 {"CausalCohL", "Causal"},
      // Found by the differential fuzzer (src/fuzz): with even one strong
      // operation HC orders weak operations across processors, which
      // Local never does — the floor edge only holds unlabeled.
      {"Local", "HC", /*unlabeled_only=*/true},
  };
  return edges;
}

InclusionReport sample_inclusions(const EnumerationSpec& spec,
                                  const std::vector<models::ModelPtr>& models,
                                  std::uint64_t samples, std::uint64_t seed) {
  InclusionReport r = prepare(models);
  Rng rng(seed);
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto h = random_history(spec, rng);
    absorb(r, h, classify(h, models));
  }
  return r;
}

}  // namespace ssm::lattice
