#include "lattice/separate.hpp"

namespace ssm::lattice {
namespace {

/// Rebuilds `h` without operation `skip`; returns nullopt when the result
/// is not well-formed (e.g. a read's writer was removed).
std::optional<history::SystemHistory> without_op(
    const history::SystemHistory& h, OpIndex skip) {
  history::SystemHistory out(h.symbols());
  for (const auto& op : h.operations()) {
    if (op.index == skip) continue;
    out.append(op);
  }
  if (out.empty() || out.validate().has_value()) return std::nullopt;
  return out;
}

}  // namespace

std::optional<history::SystemHistory> find_separation(
    const models::Model& a, const models::Model& b,
    const SeparationQuery& query) {
  std::optional<history::SystemHistory> witness;
  for (const auto& spec : query.universes) {
    for_each_history(spec, [&](const history::SystemHistory& h) {
      if (a.check(h).allowed && !b.check(h).allowed) {
        witness = h;
        return false;
      }
      return true;
    });
    if (witness) break;
  }
  return witness;
}

history::SystemHistory shrink_separation(const history::SystemHistory& h,
                                         const models::Model& a,
                                         const models::Model& b) {
  history::SystemHistory current = h;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (OpIndex i = 0; i < current.size(); ++i) {
      const auto candidate = without_op(current, i);
      if (!candidate) continue;
      if (a.check(*candidate).allowed && !b.check(*candidate).allowed) {
        current = *candidate;
        progressed = true;
        break;  // indices shifted; restart the scan
      }
    }
  }
  return current;
}

}  // namespace ssm::lattice
