// Empirical containment lattice (paper Figure 5).
//
// "A is (at least as) strong as B" means histories(A) ⊆ histories(B).  Over
// an enumerated universe this is decided exactly: we count, for every
// ordered pair, the histories admitted by A but not by B, and keep the
// first such history as a machine-checkable separation witness.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lattice/enumerate.hpp"
#include "models/model.hpp"

namespace ssm::lattice {

struct InclusionReport {
  std::vector<std::string> model_names;
  std::uint64_t universe_size = 0;
  /// admitted[i]: histories admitted by model i.
  std::vector<std::uint64_t> admitted;
  /// only_in[i][j]: histories admitted by i but not by j.
  std::vector<std::vector<std::uint64_t>> only_in;
  /// witness[i][j]: one history admitted by i but not j (DSL-ish text).
  std::vector<std::vector<std::optional<std::string>>> witness;

  /// True iff model i is at-least-as-strong-as j over the universe.
  [[nodiscard]] bool stronger_or_equal(std::size_t i, std::size_t j) const {
    return only_in[i][j] == 0;
  }
  /// Strict: i ⊆ j and j has extra histories.
  [[nodiscard]] bool strictly_stronger(std::size_t i, std::size_t j) const {
    return only_in[i][j] == 0 && only_in[j][i] > 0;
  }
  [[nodiscard]] bool incomparable(std::size_t i, std::size_t j) const {
    return only_in[i][j] > 0 && only_in[j][i] > 0;
  }

  /// Human-readable relation summary, one line per ordered pair class.
  [[nodiscard]] std::string format() const;
};

/// Classifies every history in the exhaustive universe given by `spec`.
[[nodiscard]] InclusionReport compute_inclusions(
    const EnumerationSpec& spec, const std::vector<models::ModelPtr>& models);

/// Classifies `samples` random histories (for larger shapes).
[[nodiscard]] InclusionReport sample_inclusions(
    const EnumerationSpec& spec, const std::vector<models::ModelPtr>& models,
    std::uint64_t samples, std::uint64_t seed);

/// One proven containment edge of the paper's Figure 5 (extended with the
/// registry's extra models at their lattice positions): every history
/// admitted by `stronger` must be admitted by `weaker`.
struct Containment {
  const char* stronger;
  const char* weaker;
  /// True for edges that are theorems only over histories with no labeled
  /// operations.  HC floors the unlabeled lattice (its weak operations
  /// carry no cross-processor obligations at all), but one strong
  /// operation gives HC cross-processor ordering that Local never has —
  /// so Local ⊆ HC must not be checked against labeled histories.
  bool unlabeled_only = false;
};

/// The proven containment edges.  This is the ground truth the fuzzing
/// oracle (src/fuzz/oracle.hpp) and the Figure 5 property tests validate
/// model implementations against: an edge here is a theorem, so a random
/// history admitted by the stronger model but rejected by the weaker one
/// is always an implementation bug, never a surprise.
[[nodiscard]] const std::vector<Containment>& figure5_containments();

}  // namespace ssm::lattice
