// Separation search: find a minimal history admitted by one model and
// rejected by another, by scanning canonical universes in increasing
// size.  This is how the suite's `pcg-vs-pc` witness was discovered; the
// utility makes that capability part of the library's public API.
#pragma once

#include <optional>

#include "lattice/enumerate.hpp"
#include "models/model.hpp"

namespace ssm::lattice {

struct SeparationQuery {
  /// Universes are scanned in the order given until a witness appears.
  std::vector<EnumerationSpec> universes = {
      {2, 2, 1, false, 0},
      {2, 2, 2, false, 0},
      {2, 3, 1, false, 0},
      {2, 3, 2, false, 0},
  };
};

/// First history admitted by `a` but rejected by `b`, or nullopt when the
/// scanned universes contain none.
[[nodiscard]] std::optional<history::SystemHistory> find_separation(
    const models::Model& a, const models::Model& b,
    const SeparationQuery& query = {});

/// Greedy 1-minimal shrink of a separation witness: repeatedly drop any
/// single operation while the history stays well-formed, admitted by `a`,
/// and rejected by `b`.  The result is locally minimal (no single op can
/// be removed), which is usually the textbook-size litmus shape.
[[nodiscard]] history::SystemHistory shrink_separation(
    const history::SystemHistory& h, const models::Model& a,
    const models::Model& b);

}  // namespace ssm::lattice
