#include "lattice/enumerate.hpp"

#include <map>
#include <vector>

#include "history/builder.hpp"

namespace ssm::lattice {
namespace {

struct Slot {
  ProcId proc;
  OpKind kind = OpKind::Read;
  LocId loc = 0;
  Value value = 0;  // resolved during value assignment
};

class Enumerator {
 public:
  Enumerator(const EnumerationSpec& spec,
             const std::function<bool(const SystemHistory&)>& visit)
      : spec_(spec), visit_(visit) {
    slots_.reserve(static_cast<std::size_t>(spec.procs) *
                   spec.ops_per_proc);
    for (std::uint32_t p = 0; p < spec.procs; ++p) {
      for (std::uint32_t k = 0; k < spec.ops_per_proc; ++k) {
        slots_.push_back(Slot{static_cast<ProcId>(p)});
      }
    }
  }

  std::uint64_t run() {
    choose_shape(0);
    return visited_;
  }

 private:
  /// Phase 1: choose kind and location for every slot.
  void choose_shape(std::size_t i) {
    if (stopped_) return;
    if (i == slots_.size()) {
      assign_values(0, std::vector<std::uint32_t>(spec_.locs, 0));
      return;
    }
    for (OpKind kind : {OpKind::Write, OpKind::Read}) {
      for (LocId loc = 0; loc < spec_.locs; ++loc) {
        slots_[i].kind = kind;
        slots_[i].loc = loc;
        choose_shape(i + 1);
        if (stopped_) return;
      }
    }
    if (spec_.include_rmw) {
      for (LocId loc = 0; loc < spec_.locs; ++loc) {
        slots_[i].kind = OpKind::ReadModifyWrite;
        slots_[i].loc = loc;
        choose_shape(i + 1);
        if (stopped_) return;
      }
    }
  }

  /// Phase 2: canonical write values (k-th write to loc writes k), then
  /// enumerate read values over {0} ∪ written values of the location.
  void assign_values(std::size_t i, std::vector<std::uint32_t> write_count) {
    if (stopped_) return;
    if (i == slots_.size()) {
      emit();
      return;
    }
    Slot& s = slots_[i];
    if (s.kind == OpKind::Write || s.kind == OpKind::ReadModifyWrite) {
      const std::uint32_t next = ++write_count[s.loc];
      s.value = next;
      if (s.kind == OpKind::Write) {
        assign_values(i + 1, write_count);
        return;
      }
    }
    // Read (or rmw read part) values resolved in emit(): enumerate here by
    // total writes to the location across the WHOLE history (not just the
    // prefix), so count them once.
    const std::uint32_t total = total_writes_to(s.loc);
    for (std::uint32_t v = 0; v <= total; ++v) {
      read_value_[i] = static_cast<Value>(v);
      assign_values(i + 1, write_count);
      if (stopped_) return;
    }
  }

  [[nodiscard]] std::uint32_t total_writes_to(LocId loc) const {
    std::uint32_t n = 0;
    for (const Slot& s : slots_) {
      if (s.loc == loc &&
          (s.kind == OpKind::Write || s.kind == OpKind::ReadModifyWrite)) {
        ++n;
      }
    }
    return n;
  }

  void emit() {
    history::SystemHistory h(
        history::SymbolTable::canonical(spec_.procs, spec_.locs));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& s = slots_[i];
      history::Operation op;
      op.kind = s.kind;
      op.proc = s.proc;
      op.loc = s.loc;
      op.label = s.loc < spec_.sync_locs ? OpLabel::Labeled
                                         : OpLabel::Ordinary;
      if (s.kind == OpKind::Read) {
        op.value = read_value_.at(i);
      } else {
        op.value = s.value;
        if (s.kind == OpKind::ReadModifyWrite) {
          op.rmw_read = read_value_.at(i);
        }
      }
      h.append(op);
    }
    ++visited_;
    if (!visit_(h)) stopped_ = true;
  }

  EnumerationSpec spec_;
  const std::function<bool(const SystemHistory&)>& visit_;
  std::vector<Slot> slots_;
  std::map<std::size_t, Value> read_value_;
  std::uint64_t visited_ = 0;
  bool stopped_ = false;
};

}  // namespace

std::uint64_t for_each_history(
    const EnumerationSpec& spec,
    const std::function<bool(const SystemHistory&)>& visit) {
  Enumerator e(spec, visit);
  return e.run();
}

SystemHistory random_history(const EnumerationSpec& spec, Rng& rng) {
  history::SystemHistory h(
      history::SymbolTable::canonical(spec.procs, spec.locs));
  // Choose shapes first so read values can range over all writes.
  struct RandSlot {
    ProcId proc;
    OpKind kind;
    LocId loc;
  };
  std::vector<RandSlot> slots;
  std::vector<std::uint32_t> writes_to(spec.locs, 0);
  for (std::uint32_t p = 0; p < spec.procs; ++p) {
    for (std::uint32_t k = 0; k < spec.ops_per_proc; ++k) {
      const bool is_write = rng.chance(1, 2);
      const LocId loc = static_cast<LocId>(rng.below(spec.locs));
      slots.push_back(
          {static_cast<ProcId>(p), is_write ? OpKind::Write : OpKind::Read,
           loc});
      if (is_write) ++writes_to[loc];
    }
  }
  std::vector<std::uint32_t> next_value(spec.locs, 0);
  for (const RandSlot& s : slots) {
    history::Operation op;
    op.proc = s.proc;
    op.kind = s.kind;
    op.loc = s.loc;
    op.label = s.loc < spec.sync_locs ? OpLabel::Labeled
                                      : OpLabel::Ordinary;
    if (s.kind == OpKind::Write) {
      op.value = static_cast<Value>(++next_value[s.loc]);
    } else {
      op.value = static_cast<Value>(rng.below(writes_to[s.loc] + 1));
    }
    h.append(op);
  }
  return h;
}

}  // namespace ssm::lattice
