// Classification of histories against a set of models, and aggregation of
// the resulting admission patterns.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "history/system_history.hpp"
#include "models/model.hpp"

namespace ssm::lattice {

/// One history's admission bit per model (index-aligned with the model
/// vector passed to classify()).
using Pattern = std::vector<bool>;

[[nodiscard]] Pattern classify(const history::SystemHistory& h,
                               const std::vector<models::ModelPtr>& models);

/// Aggregate over many histories: admission count per model and a
/// histogram of full patterns.
struct ClassifyStats {
  std::vector<std::string> model_names;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> admitted;       // per model
  std::map<Pattern, std::uint64_t> patterns;  // full pattern -> count

  void add(const Pattern& p);
};

[[nodiscard]] ClassifyStats make_stats(
    const std::vector<models::ModelPtr>& models);

}  // namespace ssm::lattice
