// Pooled, protocol-verified connections to one backend `ssm serve` node.
//
// A pool dial is a bounded non-blocking connect (service::Client
// deadlines) followed by a `ping` handshake: the node must answer ok with
// `"proto"` equal to our service::kProtocolVersion, or the connection is
// rejected with a typed `proto_mismatch` error and never enters the pool
// — a mixed-version ring fails fast at connect time instead of
// corrupting frames mid-request (docs/CLUSTER.md).  The handshake also
// learns the node's `--node-id`, which the router reports in health
// transitions and stats aggregation.
//
// Leases are RAII: a connection returns to the idle pool on destruction
// unless the holder discard()s it (any I/O error mid-request makes the
// connection's framing state untrusted — always discard on throw).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "service/client.hpp"

namespace ssm::cluster {

/// A typed pool/transport failure.  `type()` is one of "connect" (dial or
/// resolve failed / timed out), "io" (an established connection died or
/// hit its deadline), "proto_mismatch" (handshake version disagreement —
/// permanent until the node is upgraded, so the router logs it loudly and
/// keeps the node out of rotation).
class ClusterError : public InvalidInput {
 public:
  ClusterError(std::string type, const std::string& message)
      : InvalidInput(message), type_(std::move(type)) {}
  [[nodiscard]] const std::string& type() const noexcept { return type_; }

 private:
  std::string type_;
};

/// A backend address spec: "unix:PATH" or "HOST:PORT" (bare ":PORT" =
/// 127.0.0.1).  The spec string itself is the node's ring identity.
struct NodeAddress {
  std::string spec;  ///< the original spec (ring identity)
  bool is_unix = false;
  std::string path;  ///< unix socket path when is_unix
  std::string host;  ///< tcp host otherwise
  std::uint16_t port = 0;

  /// Parses a spec; throws InvalidInput on malformed input (bad port,
  /// empty path/host).
  [[nodiscard]] static NodeAddress parse(const std::string& spec);
};

struct PoolOptions {
  std::uint32_t connect_timeout_ms = 2000;
  std::uint32_t io_timeout_ms = 0;  ///< 0 = unbounded (solves can be slow)
  std::size_t max_idle = 4;         ///< idle connections kept per node
};

class NodePool {
 public:
  NodePool(NodeAddress addr, PoolOptions opts)
      : addr_(std::move(addr)), opts_(opts) {}

  /// An exclusive connection lease.  Movable; returns the connection to
  /// the pool on destruction unless discard()ed.
  class Lease {
   public:
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    [[nodiscard]] service::Client& client() { return *client_; }
    /// Drops the connection instead of returning it (call after any
    /// transport error — the stream position is no longer trustworthy).
    void discard() noexcept { discarded_ = true; }

   private:
    friend class NodePool;
    Lease(NodePool* pool, std::unique_ptr<service::Client> client)
        : pool_(pool), client_(std::move(client)) {}
    NodePool* pool_;
    std::unique_ptr<service::Client> client_;
    bool discarded_ = false;
  };

  /// Pops an idle connection, or dials + handshakes a fresh one.  Throws
  /// ClusterError ("connect" | "io" | "proto_mismatch").
  [[nodiscard]] Lease acquire();

  /// Drops every idle connection (node marked down — anything pooled may
  /// be a dead socket).
  void invalidate();

  [[nodiscard]] const NodeAddress& address() const noexcept { return addr_; }
  /// The node's self-reported id from the last successful handshake
  /// (empty before the first one).
  [[nodiscard]] std::string node_id() const;

 private:
  friend class Lease;
  void give_back(std::unique_ptr<service::Client> client);
  [[nodiscard]] std::unique_ptr<service::Client> dial();

  NodeAddress addr_;
  PoolOptions opts_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<service::Client>> idle_;
  std::string node_id_;
};

}  // namespace ssm::cluster
