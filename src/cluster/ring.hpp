// Consistent-hash ring over `ssm serve` nodes, keyed on the canonical
// litmus key — the same isomorphism-class representative that keys the
// verdict cache (litmus/canonical.hpp).  Every class has one home node,
// so a warm cache survives scale-out: adding or removing a node remaps
// only the key ranges adjacent to its own vnode points, never reshuffles
// the whole space (docs/CLUSTER.md).
//
// The ring is a fixed membership list; liveness is layered on top by the
// router, which resolves a key to the FIRST LIVE entry of candidates().
// That makes failover a pure function of (ring, up-set): when a node
// dies, exactly its own key ranges slide to their ring successors, and
// they slide back when it returns — the rebalancing property the unit
// tests pin down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ssm::cluster {

class HashRing {
 public:
  /// Builds the ring: `vnodes` points per node, point i of node n at
  /// fnv1a64("<n>#<i>").  Node order in `nodes` is preserved for
  /// indexing; ring order is independent of it (ties broken by index, so
  /// two routers given the same membership agree on every assignment).
  explicit HashRing(std::vector<std::string> nodes, std::size_t vnodes = 64);

  /// All node indices in ring order starting at the owner of `hash`:
  /// element 0 is the home node, element k the k-th failover successor.
  /// Always a permutation of [0, size()).
  [[nodiscard]] std::vector<std::size_t> candidates(std::uint64_t hash) const;

  /// candidates(hash)[0] without materializing the rest.
  [[nodiscard]] std::size_t owner(std::uint64_t hash) const;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& node(std::size_t i) const {
    return nodes_[i];
  }

  /// The routing hash of a canonical litmus key (fnv1a64 — matches the
  /// verdict cache's content-address hash family).
  [[nodiscard]] static std::uint64_t key_hash(
      std::string_view canonical_key) noexcept;

 private:
  struct VNode {
    std::uint64_t point;
    std::uint32_t node;
  };

  std::vector<std::string> nodes_;
  std::vector<VNode> points_;  ///< sorted by (point, node)
};

}  // namespace ssm::cluster
