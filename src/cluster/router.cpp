#include "cluster/router.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <utility>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace ssm::cluster {

namespace json = common::json;
namespace metrics = common::metrics;
using service::serialize_error;

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw InvalidInput(what + ": " + std::strerror(errno));
}

metrics::Counter& routed_counter() {
  static auto& c = metrics::Registry::global().counter("cluster.routed");
  return c;
}
metrics::Counter& retries_counter() {
  static auto& c = metrics::Registry::global().counter("cluster.retries");
  return c;
}
metrics::Counter& failovers_counter() {
  static auto& c = metrics::Registry::global().counter("cluster.failovers");
  return c;
}
metrics::Counter& shipped_counter() {
  static auto& c =
      metrics::Registry::global().counter("cluster.shipped_records");
  return c;
}
metrics::Gauge& nodes_up_gauge() {
  static auto& g = metrics::Registry::global().gauge("cluster.nodes_up");
  return g;
}
metrics::Histogram& backoff_histogram() {
  static auto& h = metrics::Registry::global().histogram("cluster.backoff_ms");
  return h;
}

/// The routing hash of a check: the canonical key of its program — the
/// SAME representative the verdict cache keys on, so every member of an
/// isomorphism class lands on the one node that has its verdict warm.
/// An unparseable program hashes its raw text; the home node then owns
/// producing the contract's `bad_request` (the router never duplicates
/// the parser's error surface).
std::uint64_t routing_hash(const std::string& program) {
  try {
    return HashRing::key_hash(
        litmus::canonicalize(litmus::parse_test(program)).key);
  } catch (const InvalidInput&) {
    return service::fnv1a64(program);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structs

struct Router::Node {
  Node(NodeAddress addr, PoolOptions opts) : pool(std::move(addr), opts) {}
  NodePool pool;
  std::atomic<bool> up{false};
};

struct Router::RouteElem {
  std::size_t index = 0;  ///< position in the client frame
  std::string id;
  std::string wire;  ///< serialize_request bytes ('\n'-terminated)
  std::uint64_t hash = 0;
  std::uint32_t attempts = 0;
  std::string fail_type = "overloaded";
  std::string fail_msg = "no live backend for key";
  std::string response;  ///< final frame ('\n'-terminated) once done
  bool done = false;
};

/// Buffered NDJSON framing over an accepted client fd.  Mirrors the
/// single-node server's oversize handling: a frame exceeding the cap is
/// answered with a parse_error and discarded up to its terminator.
struct Router::ConnIo {
  int fd;
  std::size_t cap;
  std::string buf;
  bool discarding = false;

  /// nullopt on EOF (clean or mid-frame — a router has nothing to
  /// salvage from a truncated request).  `oversize` is set instead of a
  /// frame when the cap tripped.
  std::optional<std::string> read_frame(bool& oversize) {
    oversize = false;
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos != std::string::npos) {
        std::string frame = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        if (discarding) {
          discarding = false;
          continue;  // tail of an oversize frame — swallow
        }
        return frame;
      }
      if (!discarding && buf.size() > cap) {
        buf.clear();
        discarding = true;
        oversize = true;
        return std::string();
      }
      if (discarding) buf.clear();
      char chunk[8192];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (n == 0) return std::nullopt;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  [[nodiscard]] bool send_all(std::string_view s) noexcept {
    std::size_t off = 0;
    while (off < s.size()) {
      const ssize_t n =
          ::send(fd, s.data() + off, s.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Lifecycle

Router::Router(RouterOptions options) : options_(std::move(options)) {}

Router::~Router() {
  begin_drain();
  wait();
}

void Router::start() {
  if (options_.nodes.empty()) {
    throw InvalidInput("router needs at least one backend node");
  }
  if (options_.router_id.empty()) {
    options_.router_id = "route-" + std::to_string(::getpid());
  }
  PoolOptions pool_opts;
  pool_opts.connect_timeout_ms = options_.connect_timeout_ms;
  pool_opts.io_timeout_ms = options_.io_timeout_ms;
  nodes_.reserve(options_.nodes.size());
  for (const std::string& spec : options_.nodes) {
    nodes_.push_back(
        std::make_unique<Node>(NodeAddress::parse(spec), pool_opts));
  }
  ring_ = std::make_unique<HashRing>(options_.nodes, options_.vnodes);

  if (!options_.ship_dir.empty()) {
    std::size_t skipped = 0;
    ship_set_ = load_ship_dir(options_.ship_dir, &skipped);
    if (!options_.quiet && skipped > 0) {
      std::fprintf(stderr, "ssm route: skipped %zu undecodable records in %s\n",
                   skipped, options_.ship_dir.c_str());
    }
  }
  if (!options_.ship_corpus.empty()) {
    std::vector<ShipItem> corpus = load_ship_corpus(options_.ship_corpus);
    ship_set_.insert(ship_set_.end(),
                     std::make_move_iterator(corpus.begin()),
                     std::make_move_iterator(corpus.end()));
  }

  // Bind the client-facing socket (same shapes as ServerOptions).
  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof addr.sun_path) {
      throw InvalidInput("unix socket path too long: " + options_.unix_socket);
    }
    std::memcpy(addr.sun_path, options_.unix_socket.c_str(),
                options_.unix_socket.size() + 1);
    ::unlink(options_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw_errno("bind " + options_.unix_socket);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw_errno("bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 128) != 0) throw_errno("listen");

  // One synchronous probe+ship round before accepting: nodes that are
  // already alive enter rotation warm, so the very first client request
  // routes normally.  Late joiners are picked up by the health thread.
  for (std::size_t i = 0; i < nodes_.size(); ++i) probe_node(i);

  if (!options_.quiet) {
    std::size_t up = 0;
    for (const auto& n : nodes_) up += n->up.load() ? 1 : 0;
    std::fprintf(stderr,
                 "ssm route: listening (%zu/%zu nodes up, warm set %zu)\n", up,
                 nodes_.size(), ship_set_.size());
  }
  accept_thread_ = std::thread(&Router::accept_main, this);
  health_thread_ = std::thread(&Router::health_main, this);
}

void Router::begin_drain() noexcept {
  if (!drain_.exchange(true, std::memory_order_acq_rel)) {
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void Router::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_socket.empty()) {
      ::unlink(options_.unix_socket.c_str());
    }
  }
}

std::size_t Router::node_count() const noexcept { return nodes_.size(); }

bool Router::node_up(std::size_t i) const noexcept {
  return i < nodes_.size() && nodes_[i]->up.load(std::memory_order_acquire);
}

const std::string& Router::node_spec(std::size_t i) const {
  return nodes_[i]->pool.address().spec;
}

std::size_t Router::ship_set_size() const noexcept { return ship_set_.size(); }

// ---------------------------------------------------------------------------
// Frontend

void Router::accept_main() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (drain) or fatal
    }
    if (draining()) {
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(fd);
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    conn_threads_.emplace_back(&Router::handle_connection, this, fd);
  }
}

void Router::handle_connection(int fd) {
  ConnIo io{fd, options_.max_frame_bytes, {}, false};

  // A trace session pins its connection-shaped server state to one node:
  // the stream's chunks must all land on the same TraceSession, so they
  // travel on one dedicated backend connection for the session lifetime.
  struct TraceSession {
    std::size_t node;
    std::unique_ptr<NodePool::Lease> lease;
  };
  std::optional<TraceSession> session;

  auto handle_trace = [&](const service::Request& req) -> std::string {
    using Phase = service::TraceRequest::Phase;
    if (!session) {
      if (req.trace.phase != Phase::Begin) {
        return serialize_error(req.id, "bad_request",
                               "no active trace session (begin first)");
      }
      const std::uint64_t hash = service::fnv1a64(req.trace.header_line);
      std::optional<std::size_t> target;
      for (std::size_t c : ring_->candidates(hash)) {
        if (node_up(c)) {
          target = c;
          break;
        }
      }
      if (!target) {
        return serialize_error(req.id, "overloaded",
                               "no live backend for trace session");
      }
      try {
        session = TraceSession{
            *target,
            std::make_unique<NodePool::Lease>(nodes_[*target]->pool.acquire())};
      } catch (const ClusterError& e) {
        mark_down(*target, e.type().c_str());
        return serialize_error(req.id, "overloaded",
                               std::string("trace backend unavailable: ") +
                                   e.what());
      }
    }
    // Forward on the pinned connection.  Stateful streams cannot
    // transparently fail over — a dead node mid-session is a typed error
    // and the session is gone (docs/CLUSTER.md#traces).
    try {
      const std::string reply =
          session->lease->client().call(service::serialize_request(req));
      if (req.trace.phase == Phase::End) session.reset();  // lease pools
      return reply + "\n";
    } catch (const InvalidInput& e) {
      const std::size_t node = session->node;
      session->lease->discard();
      session.reset();
      mark_down(node, "trace io");
      return serialize_error(
          req.id, "internal",
          std::string("trace backend died mid-session: ") + e.what());
    }
  };

  bool oversize = false;
  std::optional<std::string> frame;
  while ((frame = io.read_frame(oversize))) {
    if (oversize) {
      if (!io.send_all(serialize_error(
              "", "parse_error",
              "frame exceeds max_frame_bytes (" +
                  std::to_string(options_.max_frame_bytes) + ")"))) {
        break;
      }
      continue;
    }
    std::vector<service::FrameItem> items;
    try {
      items = service::parse_frame(*frame);
    } catch (const service::ProtocolError& e) {
      if (!io.send_all(serialize_error(e.id(), e.type(), e.what()))) break;
      continue;
    }

    std::vector<std::string> responses(items.size());
    std::vector<RouteElem> elems;
    for (std::size_t i = 0; i < items.size(); ++i) {
      service::FrameItem& item = items[i];
      if (!item.ok) {
        responses[i] =
            serialize_error(item.error_id, item.error_type, item.error_message);
        continue;
      }
      service::Request& req = item.request;
      switch (req.op) {
        case service::Request::Op::Ping:
          responses[i] = service::serialize_pong(req.id, options_.router_id);
          break;
        case service::Request::Op::Stats:
          responses[i] = aggregate_stats(req.id);
          break;
        case service::Request::Op::Shutdown:
          // Drains the ROUTER only; backend nodes have their own drain
          // lifecycle (they may serve other routers or direct clients).
          begin_drain();
          responses[i] = service::serialize_drain_ack(req.id);
          break;
        case service::Request::Op::Trace:
          responses[i] = draining()
                             ? serialize_error(req.id, "draining",
                                               "router draining")
                             : handle_trace(req);
          break;
        case service::Request::Op::Check: {
          if (draining()) {
            responses[i] =
                serialize_error(req.id, "draining", "router draining");
            break;
          }
          RouteElem e;
          e.index = i;
          e.id = req.id;
          e.wire = service::serialize_request(req);
          e.hash = routing_hash(req.check.program);
          elems.push_back(std::move(e));
          break;
        }
      }
    }
    if (!elems.empty()) {
      route_elems(elems);
      for (RouteElem& e : elems) responses[e.index] = std::move(e.response);
    }
    std::string out;
    for (const std::string& r : responses) out += r;
    if (!io.send_all(out)) break;
  }

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
      if (*it == fd) {
        conn_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Routing core

std::uint32_t Router::backoff_delay_ms(std::uint64_t hash,
                                       std::uint32_t attempt) const {
  const std::uint32_t shift = attempt > 10 ? 10 : attempt;
  std::uint64_t delay =
      static_cast<std::uint64_t>(options_.backoff_base_ms) << shift;
  if (delay > options_.backoff_cap_ms) delay = options_.backoff_cap_ms;
  // Deterministic jitter in [0, base): keyed on (hash, attempt) so a
  // replayed workload backs off identically — reproducibility is part of
  // this tree's contract, even for failure timing.
  const std::string seed =
      std::to_string(hash) + ":" + std::to_string(attempt);
  const std::uint32_t base =
      options_.backoff_base_ms == 0 ? 1 : options_.backoff_base_ms;
  return static_cast<std::uint32_t>(delay + service::fnv1a64(seed) % base);
}

void Router::route_elems(std::vector<RouteElem>& elems) {
  struct Dispatch {
    std::size_t node;
    std::vector<RouteElem*> elems;
    std::optional<NodePool::Lease> lease;
  };

  std::vector<RouteElem*> pending;
  pending.reserve(elems.size());
  for (RouteElem& e : elems) pending.push_back(&e);

  std::uint32_t round = 0;
  while (!pending.empty()) {
    if (round > 0) {
      // Between-rounds backoff: capped exponential + deterministic
      // jitter.  One sleep per round (the round's elements share it).
      const std::uint32_t delay = backoff_delay_ms(pending[0]->hash, round);
      backoff_histogram().observe(delay);
      retries_counter().add(pending.size());
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    ++round;

    // Assign every pending element to the first LIVE candidate on its
    // ring walk; exhausted or unroutable elements finalize as errors.
    std::map<std::size_t, std::vector<RouteElem*>> groups;
    for (RouteElem* e : pending) {
      if (e->attempts >= options_.max_attempts) {
        e->response = serialize_error(e->id, e->fail_type, e->fail_msg);
        e->done = true;
        continue;
      }
      std::optional<std::size_t> target;
      for (std::size_t c : ring_->candidates(e->hash)) {
        if (node_up(c)) {
          target = c;
          break;
        }
      }
      if (!target) {
        e->response = serialize_error(e->id, "overloaded",
                                      "no live backend (all nodes down)");
        e->done = true;
        continue;
      }
      e->attempts++;
      groups[*target].push_back(e);
    }
    std::vector<RouteElem*> retry;

    // Send phase first, THEN read phase: every node is already solving
    // its sub-batch while we read the first one's responses.
    std::vector<Dispatch> dispatches;
    dispatches.reserve(groups.size());
    for (auto& [node, group] : groups) {
      Dispatch d;
      d.node = node;
      d.elems = std::move(group);
      std::string sub;
      if (d.elems.size() == 1) {
        sub = d.elems[0]->wire;
      } else {
        sub = "[";
        for (std::size_t i = 0; i < d.elems.size(); ++i) {
          if (i > 0) sub += ", ";
          std::string_view w = d.elems[i]->wire;
          w.remove_suffix(1);  // '\n'
          sub += w;
        }
        sub += "]\n";
      }
      try {
        d.lease.emplace(nodes_[d.node]->pool.acquire());
        d.lease->client().send_frame(sub);
        dispatches.push_back(std::move(d));
      } catch (const InvalidInput& e) {
        if (d.lease) d.lease->discard();
        mark_down(d.node, e.what());
        failovers_counter().add(d.elems.size());
        for (RouteElem* el : d.elems) {
          el->fail_type = "overloaded";
          el->fail_msg = "backend " + nodes_[d.node]->pool.address().spec +
                         " unreachable: " + e.what();
          retry.push_back(el);
        }
      }
    }

    for (Dispatch& d : dispatches) {
      std::size_t answered = 0;
      try {
        for (; answered < d.elems.size(); ++answered) {
          RouteElem* e = d.elems[answered];
          auto reply = d.lease->client().read_frame();
          if (!reply) throw InvalidInput("backend closed the connection");
          const json::Value doc = json::parse(*reply);
          if (doc.at("ok").as_bool()) {
            e->response = *reply + "\n";
            e->done = true;
            routed_counter().add(1);
            continue;
          }
          const std::string& type = doc.at("error").at("type").as_string();
          if (type == "overloaded") {
            // Transient pressure: same node again after backoff (the
            // node stays the first live candidate).
            e->fail_type = "overloaded";
            e->fail_msg = *reply;
            retry.push_back(e);
          } else if (type == "draining") {
            // The node is leaving: take it out of rotation NOW so this
            // and every later element re-routes to the ring successor.
            mark_down(d.node, "draining");
            failovers_counter().add(1);
            e->fail_type = "draining";
            e->fail_msg = "backend " + nodes_[d.node]->pool.address().spec +
                          " draining";
            retry.push_back(e);
          } else {
            // Typed application error (bad_request, internal): the
            // verdict of the contract, forwarded verbatim in position.
            e->response = *reply + "\n";
            e->done = true;
          }
        }
      } catch (const InvalidInput& err) {
        // Transport death mid-sub-batch: answered elements are final
        // (checks are pure, so no answered work is lost or redone);
        // everything unanswered fails over.
        d.lease->discard();
        mark_down(d.node, err.what());
        failovers_counter().add(d.elems.size() - answered);
        for (std::size_t i = answered; i < d.elems.size(); ++i) {
          RouteElem* e = d.elems[i];
          e->fail_type = "overloaded";
          e->fail_msg = "backend " + nodes_[d.node]->pool.address().spec +
                        " died mid-batch: " + err.what();
          retry.push_back(e);
        }
      }
    }
    pending = std::move(retry);
  }
}

// ---------------------------------------------------------------------------
// Health + shipping

void Router::mark_down(std::size_t i, const char* why) {
  if (nodes_[i]->up.exchange(false, std::memory_order_acq_rel)) {
    nodes_[i]->pool.invalidate();
    std::int64_t up = 0;
    for (const auto& n : nodes_) up += n->up.load() ? 1 : 0;
    nodes_up_gauge().set(up);
    if (!options_.quiet) {
      std::fprintf(stderr, "ssm route: node down %s (%s)\n",
                   nodes_[i]->pool.address().spec.c_str(), why);
    }
  }
}

bool Router::ship_slice(std::size_t i) {
  // The slice is membership-keyed (ring owner, ignoring liveness): a
  // recovering node gets exactly the keys that were ALWAYS its home —
  // the ones that failed over away while it was dead and are about to
  // come back.
  std::vector<const ShipItem*> slice;
  for (const ShipItem& item : ship_set_) {
    if (ring_->owner(item.hash) == i) slice.push_back(&item);
  }
  if (slice.empty()) return true;
  std::size_t shipped = 0;
  try {
    auto lease = nodes_[i]->pool.acquire();
    try {
      // Pipelined replay: the node coalesces and answers in order.
      for (std::size_t s = 0; s < slice.size(); ++s) {
        lease.client().send_frame(ship_frame(*slice[s], s));
      }
      for (std::size_t s = 0; s < slice.size(); ++s) {
        auto reply = lease.client().read_frame();
        if (!reply) throw InvalidInput("backend closed during shipping");
        const json::Value doc = json::parse(*reply);
        if (doc.at("ok").as_bool()) ++shipped;
      }
    } catch (...) {
      lease.discard();
      throw;
    }
  } catch (const InvalidInput& e) {
    if (!options_.quiet) {
      std::fprintf(stderr, "ssm route: shipping to %s failed: %s\n",
                   nodes_[i]->pool.address().spec.c_str(), e.what());
    }
    return false;
  }
  shipped_counter().add(shipped);
  if (!options_.quiet) {
    std::fprintf(stderr, "ssm route: shipped %zu/%zu records to %s\n", shipped,
                 slice.size(), nodes_[i]->pool.address().spec.c_str());
  }
  return true;
}

void Router::probe_node(std::size_t i) {
  try {
    auto lease = nodes_[i]->pool.acquire();
    try {
      (void)lease.client().call("{\"op\": \"ping\", \"id\": \"probe\"}");
    } catch (...) {
      lease.discard();
      throw;
    }
  } catch (const ClusterError& e) {
    mark_down(i, e.type().c_str());
    return;
  } catch (const InvalidInput& e) {
    mark_down(i, e.what());
    return;
  }
  if (!nodes_[i]->up.load(std::memory_order_acquire)) {
    // down→up: ship the node's home slice BEFORE it re-enters rotation,
    // so a recovered node is warm from its very first routed request.
    // A failed ship keeps it down; the next probe retries.
    if (!ship_slice(i)) return;
    nodes_[i]->up.store(true, std::memory_order_release);
    std::int64_t up = 0;
    for (const auto& n : nodes_) up += n->up.load() ? 1 : 0;
    nodes_up_gauge().set(up);
    if (!options_.quiet) {
      std::fprintf(stderr, "ssm route: node up %s (%s)\n",
                   nodes_[i]->pool.address().spec.c_str(),
                   nodes_[i]->pool.node_id().c_str());
    }
  }
}

void Router::health_main() {
  using Clock = std::chrono::steady_clock;
  auto next = Clock::now() + std::chrono::milliseconds(options_.probe_interval_ms);
  while (!draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (Clock::now() < next) continue;
    for (std::size_t i = 0; i < nodes_.size() && !draining(); ++i) {
      probe_node(i);
    }
    next = Clock::now() + std::chrono::milliseconds(options_.probe_interval_ms);
  }
  // Drain teardown: wake every connection handler; they finish the frame
  // in hand (its responses flush) and exit on the next read.
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

// ---------------------------------------------------------------------------
// Stats aggregation

std::string Router::aggregate_stats(const std::string& id) {
  std::string out = "{\"id\": ";
  json::append_quoted(out, id);
  out += ", \"ok\": true, \"node\": ";
  json::append_quoted(out, options_.router_id);
  out += ", \"proto\": " + std::to_string(service::kProtocolVersion);
  out += ", \"nodes\": [";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!node_up(i)) {
      out += "{\"spec\": ";
      json::append_quoted(out, nodes_[i]->pool.address().spec);
      out += ", \"up\": false}";
      continue;
    }
    try {
      auto lease = nodes_[i]->pool.acquire();
      try {
        out += lease.client().call("{\"op\": \"stats\", \"id\": \"agg\"}");
      } catch (...) {
        lease.discard();
        throw;
      }
    } catch (const InvalidInput&) {
      mark_down(i, "stats probe");
      out += "{\"spec\": ";
      json::append_quoted(out, nodes_[i]->pool.address().spec);
      out += ", \"up\": false}";
    }
  }
  // The router's own registry (cluster.* counters, backoff histogram).
  out += "], \"stats\": ";
  out += metrics::compact_global_snapshot();
  out += "}\n";
  return out;
}

}  // namespace ssm::cluster
