#include "cluster/pool.hpp"

#include <utility>

#include "common/json.hpp"
#include "service/protocol.hpp"

namespace ssm::cluster {

namespace json = common::json;

NodeAddress NodeAddress::parse(const std::string& spec) {
  NodeAddress out;
  out.spec = spec;
  if (spec.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      throw InvalidInput("node spec '" + spec + "': empty unix socket path");
    }
    return out;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    throw InvalidInput("node spec '" + spec +
                       "': expected unix:PATH or HOST:PORT");
  }
  out.host = spec.substr(0, colon);
  if (out.host.empty()) out.host = "127.0.0.1";
  const std::string port_str = spec.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidInput("node spec '" + spec + "': bad port '" + port_str +
                       "'");
  }
  const unsigned long port = std::stoul(port_str);
  if (port == 0 || port > 65535) {
    throw InvalidInput("node spec '" + spec + "': port out of range");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

NodePool::Lease::~Lease() {
  if (client_ && !discarded_) pool_->give_back(std::move(client_));
}

NodePool::Lease NodePool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<service::Client> client = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(client));
    }
  }
  return Lease(this, dial());
}

void NodePool::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.clear();
}

std::string NodePool::node_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return node_id_;
}

void NodePool::give_back(std::unique_ptr<service::Client> client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idle_.size() < opts_.max_idle) idle_.push_back(std::move(client));
}

std::unique_ptr<service::Client> NodePool::dial() {
  service::ClientDeadlines deadlines{opts_.connect_timeout_ms,
                                     opts_.io_timeout_ms};
  std::unique_ptr<service::Client> client;
  try {
    if (addr_.is_unix) {
      client = std::make_unique<service::Client>(
          service::Client::connect_unix(addr_.path, deadlines));
    } else {
      client = std::make_unique<service::Client>(
          service::Client::connect_tcp(addr_.host, addr_.port, deadlines));
    }
  } catch (const InvalidInput& e) {
    throw ClusterError("connect", addr_.spec + ": " + e.what());
  }

  // Handshake: ping, require ok + our protocol version.  The handshake
  // deliberately uses the pool's (short) io deadline even when check
  // traffic later runs unbounded — a node that cannot answer a ping
  // promptly is not a node we want in rotation.
  std::string reply;
  try {
    reply = client->call("{\"op\": \"ping\", \"id\": \"hs\"}");
  } catch (const InvalidInput& e) {
    throw ClusterError("io", addr_.spec + ": handshake: " + e.what());
  }
  try {
    const json::Value doc = json::parse(reply);
    if (!doc.at("ok").as_bool()) {
      throw InvalidInput("handshake ping answered ok:false");
    }
    const std::uint64_t proto = doc.at("proto").as_u64();
    if (proto != service::kProtocolVersion) {
      throw ClusterError(
          "proto_mismatch",
          addr_.spec + ": node speaks proto " + std::to_string(proto) +
              ", router speaks " +
              std::to_string(service::kProtocolVersion));
    }
    if (const json::Value* node = doc.find("node")) {
      std::lock_guard<std::mutex> lock(mu_);
      node_id_ = node->as_string();
    }
  } catch (const ClusterError&) {
    throw;
  } catch (const InvalidInput& e) {
    throw ClusterError("proto_mismatch", addr_.spec +
                                             ": unversioned or malformed "
                                             "handshake reply: " +
                                             e.what());
  }
  return client;
}

}  // namespace ssm::cluster
