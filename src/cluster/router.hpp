// `ssm route` — the cluster front-end (docs/CLUSTER.md).
//
// Speaks the exact single-node NDJSON contract to clients (same frames,
// same batch semantics, same error taxonomy, responses strictly in
// request order per connection) and fans each check out to its home
// `ssm serve` node over the consistent-hash ring.  The preserved-contract
// framing matters: verdicts are deterministic and checks are pure, so a
// request may be retried or re-routed at will — the router exploits that
// to hide node failure entirely.  What a client can observe through the
// router is byte-for-byte what it would observe from one big node (the
// bench pins the digest), except `meta`/`source`, which legitimately vary.
//
// Per client frame:
//   * control ops answer locally: `ping` with the router's identity,
//     `shutdown` drains the router (never the nodes), `stats` aggregates
//     every live node's stats under the router's own;
//   * batch frames split into one sub-batch per home node, dispatched
//     concurrently over pooled connections, responses reassembled in
//     original array order;
//   * `trace` sessions pin to the header's home node on a dedicated
//     connection for the session's lifetime (stateful streams cannot
//     transparently fail over — a mid-session node death is a typed
//     `internal` error).
//
// Failure policy, per element:
//   * `overloaded`  → same node again after capped exponential backoff
//                     with deterministic jitter (hash- and attempt-keyed,
//                     so replays are reproducible);
//   * `draining` / connect refused / dead or timed-out socket
//                  → node marked down, element re-routed to the ring
//                     successor (cluster.failovers);
//   * attempts exhausted / no live candidate → the last typed error (or
//     `overloaded` with a "no live backend" message) — never a hang,
//     never a disconnect.
//
// A health thread probes every node each probe interval; a down→up
// transition re-ships the node's home-keyed slice of the warm set
// BEFORE the node re-enters rotation, so recovery never degrades the
// warm hit rate (ship.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/pool.hpp"
#include "cluster/ring.hpp"
#include "cluster/ship.hpp"

namespace ssm::cluster {

struct RouterOptions {
  /// Bind address, same shape as ServerOptions: unix socket path, or
  /// (when empty) 127.0.0.1 TCP on tcp_port (0 = kernel-assigned).
  std::string unix_socket;
  std::uint16_t tcp_port = 0;
  bool use_tcp = false;

  /// Backend membership: "unix:PATH" | "HOST:PORT" specs.  Fixed for the
  /// router's lifetime; liveness is probed, membership is not discovered.
  std::vector<std::string> nodes;
  std::size_t vnodes = 64;

  /// Retry policy: per-element dispatch cap, and the backoff curve
  /// delay(a) = min(cap, base * 2^a) + jitter(hash, a) applied between
  /// rounds (jitter in [0, base), from fnv1a — deterministic).
  std::uint32_t max_attempts = 6;
  std::uint32_t backoff_base_ms = 10;
  std::uint32_t backoff_cap_ms = 500;

  std::uint32_t probe_interval_ms = 200;
  std::uint32_t connect_timeout_ms = 2000;
  std::uint32_t io_timeout_ms = 0;  ///< per-I/O cap to nodes; 0 = unbounded

  /// Warm set sources (both optional, combinable): a `--cache-dir` of
  /// persisted verdict records, and/or a .litmus corpus directory.
  std::string ship_dir;
  std::string ship_corpus;

  std::string router_id;  ///< identity in ping/stats (default route-<pid>)
  std::size_t max_frame_bytes = 4u << 20;
  bool quiet = false;  ///< suppress stderr progress lines (tests)
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Loads the warm set, binds, runs one synchronous probe+ship round
  /// over all nodes, then starts the accept and health threads.  Throws
  /// InvalidInput on bind/config failure.
  void start();

  /// Requests a graceful drain (async-signal-safe: atomic flag + a
  /// shutdown() on the listen fd; the health thread tears down client
  /// connections within one poll tick).
  void begin_drain() noexcept;

  /// Blocks until drained: accept loop closed, every in-flight frame
  /// answered, all threads joined.
  void wait();

  [[nodiscard]] bool draining() const noexcept {
    return drain_.load(std::memory_order_acquire);
  }

  /// Bound TCP port (after start(); 0 for unix-domain routers).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  [[nodiscard]] std::size_t node_count() const noexcept;
  [[nodiscard]] bool node_up(std::size_t i) const noexcept;
  [[nodiscard]] const std::string& node_spec(std::size_t i) const;
  /// Ship-set size after start() (0 when no warm source configured).
  [[nodiscard]] std::size_t ship_set_size() const noexcept;

 private:
  struct Node;
  struct RouteElem;
  struct ConnIo;

  void accept_main();
  void health_main();
  void handle_connection(int fd);

  /// One probe of node `i`; flips up/down state, ships on down→up.
  void probe_node(std::size_t i);
  void mark_down(std::size_t i, const char* why);
  /// Ships node i's home slice of the warm set; true on success.
  [[nodiscard]] bool ship_slice(std::size_t i);

  /// Routes every element of one parsed frame; fills responses (indexed
  /// like the frame items).  `session` is the connection's trace pin.
  void route_elems(std::vector<RouteElem>& elems);
  [[nodiscard]] std::string aggregate_stats(const std::string& id);
  [[nodiscard]] std::uint32_t backoff_delay_ms(std::uint64_t hash,
                                               std::uint32_t attempt) const;

  RouterOptions options_;
  std::unique_ptr<HashRing> ring_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<ShipItem> ship_set_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> drain_{false};

  std::thread accept_thread_;
  std::thread health_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;  ///< live client fds (drain teardown)
  std::vector<std::thread> conn_threads_;
  std::mutex threads_mu_;
};

}  // namespace ssm::cluster
