#include "cluster/ship.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "cluster/ring.hpp"
#include "common/json.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "service/cache.hpp"

namespace ssm::cluster {

namespace fs = std::filesystem;

namespace {

/// Sorted directory listing by extension — deterministic ship order.
std::vector<fs::path> list_files(const std::string& dir,
                                 std::string_view ext) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw InvalidInput("ship source is not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ext) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::vector<ShipItem> finish(
    std::map<std::string, std::vector<std::string>>&& by_program) {
  std::vector<ShipItem> items;
  items.reserve(by_program.size());
  for (auto& [program, models] : by_program) {
    ShipItem item;
    item.program = program;
    std::sort(models.begin(), models.end());
    models.erase(std::unique(models.begin(), models.end()), models.end());
    item.models = std::move(models);
    item.hash = HashRing::key_hash(program);
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace

std::vector<ShipItem> load_ship_dir(const std::string& dir,
                                    std::size_t* skipped) {
  // Keyed by canonical program; a record's `key.program` already IS the
  // canonical representative (the cache canonicalizes before keying), so
  // its text doubles as the routing key.
  std::map<std::string, std::vector<std::string>> by_program;
  std::size_t bad = 0;
  for (const fs::path& file : list_files(dir, ".json")) {
    const auto record = service::decode_record(slurp(file));
    if (!record) {
      ++bad;
      continue;
    }
    by_program[record->first.program].push_back(record->first.model);
  }
  if (skipped != nullptr) *skipped = bad;
  return finish(std::move(by_program));
}

std::vector<ShipItem> load_ship_corpus(const std::string& dir) {
  std::map<std::string, std::vector<std::string>> by_program;
  for (const fs::path& file : list_files(dir, ".litmus")) {
    for (const auto& t : litmus::parse_suite(slurp(file))) {
      // Empty model list = ship every registered model for the class.
      by_program.emplace(litmus::canonical_key(t),
                         std::vector<std::string>{});
    }
  }
  return finish(std::move(by_program));
}

std::string ship_frame(const ShipItem& item, std::size_t seq) {
  std::string frame = "{\"op\": \"check\", \"id\": \"ship-" +
                      std::to_string(seq) + "\", \"program\": ";
  common::json::append_quoted(frame, item.program);
  if (!item.models.empty()) {
    frame += ", \"models\": [";
    bool first = true;
    for (const std::string& m : item.models) {
      if (!first) frame += ", ";
      first = false;
      common::json::append_quoted(frame, m);
    }
    frame += ']';
  }
  frame += "}\n";
  return frame;
}

}  // namespace ssm::cluster
