#include "cluster/ring.hpp"

#include <algorithm>

#include "common/types.hpp"
#include "service/cache.hpp"

namespace ssm::cluster {

HashRing::HashRing(std::vector<std::string> nodes, std::size_t vnodes)
    : nodes_(std::move(nodes)) {
  if (nodes_.empty()) throw InvalidInput("hash ring needs at least one node");
  if (vnodes == 0) throw InvalidInput("hash ring needs at least one vnode");
  points_.reserve(nodes_.size() * vnodes);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (std::size_t i = 0; i < vnodes; ++i) {
      const std::string label = nodes_[n] + "#" + std::to_string(i);
      points_.push_back(
          {service::fnv1a64(label), static_cast<std::uint32_t>(n)});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const VNode& a, const VNode& b) {
    return a.point != b.point ? a.point < b.point : a.node < b.node;
  });
}

std::vector<std::size_t> HashRing::candidates(std::uint64_t hash) const {
  std::vector<std::size_t> order;
  order.reserve(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  const auto start = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const VNode& v, std::uint64_t h) { return v.point < h; });
  const std::size_t begin =
      static_cast<std::size_t>(start - points_.begin()) % points_.size();
  for (std::size_t k = 0; k < points_.size() && order.size() < nodes_.size();
       ++k) {
    const std::uint32_t n = points_[(begin + k) % points_.size()].node;
    if (!seen[n]) {
      seen[n] = true;
      order.push_back(n);
    }
  }
  return order;
}

std::size_t HashRing::owner(std::uint64_t hash) const {
  const auto start = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const VNode& v, std::uint64_t h) { return v.point < h; });
  const std::size_t begin =
      static_cast<std::size_t>(start - points_.begin()) % points_.size();
  return points_[begin].node;
}

std::uint64_t HashRing::key_hash(std::string_view canonical_key) noexcept {
  return service::fnv1a64(canonical_key);
}

}  // namespace ssm::cluster
