// Warm-cache shipping: when a node joins (or recovers), the router
// replays the home-keyed slice of a warm corpus to it, so the node
// reaches its steady-state hit rate before client traffic arrives
// (docs/CLUSTER.md#warm-cache-shipping).
//
// The warm set comes from either source the single-node service already
// persists:
//   * --ship-dir:    a `ssm serve --cache-dir` directory — each record
//     decodes (version + checksum checked, witnesses re-verified by
//     decode_record) to its canonical program;
//   * --ship-corpus: a .litmus suite directory — each test canonicalizes
//     to its class representative.
//
// Either way a ship item is one canonical program (records for the same
// program merge their model lists; corpus tests ship every model by
// leaving `models` empty), and shipping = sending ordinary `check`
// requests for the items whose ring home is the target node.  The node
// SOLVES them into its own cache — records are never injected as trusted
// verdicts, so a stale or hostile warm source costs CPU, never a wrong
// answer (the same stance as VerdictCache::load_persistent).  Budgets and
// backends are the node's defaults; the cache's budget/backend alias
// layer then answers client requests across budget variations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssm::cluster {

struct ShipItem {
  std::string program;              ///< canonical litmus DSL text
  std::vector<std::string> models;  ///< empty = every registered model
  std::uint64_t hash = 0;           ///< routing hash of the canonical key
};

/// Loads the warm set from a persisted cache directory.  Undecodable
/// records are skipped (counted into `skipped`), matching the cache's own
/// load tolerance.
[[nodiscard]] std::vector<ShipItem> load_ship_dir(const std::string& dir,
                                                  std::size_t* skipped);

/// Loads the warm set from a .litmus corpus directory, canonicalizing
/// each test and deduplicating by class.
[[nodiscard]] std::vector<ShipItem> load_ship_corpus(const std::string& dir);

/// Serializes one ship item as a check request frame (id "ship-<n>").
[[nodiscard]] std::string ship_frame(const ShipItem& item, std::size_t seq);

}  // namespace ssm::cluster
