// The fuzzing loop: generate → differentially check → shrink → report.
//
// Iterations are independent and fan out across the process-wide
// common::ThreadPool exactly like litmus::run_suite cells: each iteration
// derives its own Rng from (seed, index) by splitmix64, writes only its
// presized result slot, and the report is assembled in index order
// afterwards — so the findings JSON is byte-identical for any --jobs
// value and across runs (docs/FUZZING.md, determinism contract).
//
// Every finding carries the reproducing (seed, case index, case seed)
// triple and the shrunk case's DSL; every INCONCLUSIVE budget trip is
// reported the same way so resource limits never silently eat coverage.
// Metrics: fuzz.cases / fuzz.findings / fuzz.shrink_steps /
// fuzz.inconclusive (common/metrics.hpp, exported by `ssm --json fuzz`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace ssm::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1000;
  GeneratorSpec gen;
  OracleOptions oracle;
  /// Shrink findings before reporting (off: report the raw case).
  bool shrink = true;
  /// When non-empty, save each shrunk finding here (see corpus.hpp).
  std::string corpus_dir;
  /// Test hook: plant make_buggy_model around this model name ("" = none).
  std::string inject_bug_into;
};

struct FuzzFinding {
  std::uint64_t case_index = 0;
  /// The derived per-case seed; `ssm fuzz --seed <case_seed> --iters 1`
  /// with the same generator knobs reproduces the case directly.
  std::uint64_t case_seed = 0;
  FindingKind kind = FindingKind::LatticeInversion;
  std::string model;
  std::string other;
  std::string detail;
  /// The shrunk (or raw, when shrinking is off) counterexample.
  litmus::LitmusTest test;
  std::string dsl;  ///< litmus::emit(test)
};

struct InconclusiveCase {
  std::uint64_t case_index = 0;
  std::uint64_t case_seed = 0;
  std::string detail;  ///< "model: note"
  std::string dsl;     ///< the case that tripped the budget
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::uint64_t cases = 0;
  std::uint64_t shrink_steps = 0;
  std::vector<FuzzFinding> findings;
  std::vector<InconclusiveCase> inconclusive;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
  /// Deterministic JSON (no timestamps / wall times): the artifact the
  /// cross-jobs and cross-run byte-identity tests compare.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable finding lines with reproduction seeds.
  [[nodiscard]] std::string format() const;
};

/// Derives the per-case seed the fuzzer uses for iteration `i`.  Case 0
/// uses `seed` itself, so `--seed <case_seed> --iters 1` regenerates any
/// case from a larger run exactly (exposed so tests can predict it).
[[nodiscard]] std::uint64_t case_seed(std::uint64_t seed, std::uint64_t i);

/// Runs the loop.  `models` is consumed by the oracle; pass
/// models::all_models() (optionally with one entry wrapped by
/// make_buggy_model — FuzzOptions::inject_bug_into does this for you).
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options,
                                  std::vector<models::ModelPtr> models);

/// Convenience: run_fuzz over the full registry (honoring
/// inject_bug_into).
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace ssm::fuzz
