// Counterexample shrinker: greedy 1-minimal reduction of a fuzz finding.
//
// Given a history and a predicate "the finding still reproduces", the
// shrinker repeatedly applies the cheapest transformation that keeps the
// predicate true, largest reductions first:
//
//   1. drop a whole processor (all its operations),
//   2. drop a single operation,
//   3. merge two processors (append one sequence onto another),
//   4. strip a synchronization label (Labeled → Ordinary).
//
// Every candidate must stay well-formed (SystemHistory::validate()), so
// dropping a read's writer automatically forces the read out too on a
// later step.  The loop runs to a fixpoint: no single transformation can
// shrink the result further (local 1-minimality — the same guarantee
// lattice::shrink_separation gives, generalized to any predicate).  The
// result is finally compacted to canonical processor/location names with
// no empty processors, which is the form the corpus stores.
#pragma once

#include <cstdint>
#include <functional>

#include "history/system_history.hpp"

namespace ssm::fuzz {

using Predicate = std::function<bool(const history::SystemHistory&)>;

struct ShrinkStats {
  /// Accepted transformations (metrics counter fuzz.shrink_steps).
  std::uint64_t steps = 0;
  /// Candidate histories evaluated (accepted + rejected).
  std::uint64_t attempts = 0;
};

/// Shrinks `h` while `reproduces` holds.  `reproduces(h)` must be true on
/// entry; the returned history satisfies it and is locally minimal.
[[nodiscard]] history::SystemHistory shrink(const history::SystemHistory& h,
                                            const Predicate& reproduces,
                                            ShrinkStats* stats = nullptr);

/// Rebuilds `h` dropping empty processors and unused locations, renaming
/// both to canonical symbols (p,q,r,… / x,y,z,…).  Verdicts are invariant
/// under this renaming; the shrinker re-checks the predicate anyway.
[[nodiscard]] history::SystemHistory compact(const history::SystemHistory& h);

}  // namespace ssm::fuzz
