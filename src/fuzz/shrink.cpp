#include "fuzz/shrink.hpp"

#include <optional>
#include <vector>

#include "history/symbol_table.hpp"

namespace ssm::fuzz {
namespace {

using history::SystemHistory;

/// Well-formed rebuild of `h` keeping ops for which `keep(op)` is true,
/// with an optional per-op rewrite; nullopt when the result is empty or
/// fails validate().
template <typename Keep, typename Rewrite>
std::optional<SystemHistory> rebuild(const SystemHistory& h, Keep keep,
                                     Rewrite rewrite) {
  SystemHistory out(h.symbols());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    for (OpIndex i : h.processor_ops(p)) {
      const auto& op = h.op(i);
      if (!keep(op)) continue;
      history::Operation copy = op;
      rewrite(copy);
      out.append(copy);
    }
  }
  if (out.empty() || out.validate().has_value()) return std::nullopt;
  return out;
}

std::optional<SystemHistory> drop_processor(const SystemHistory& h,
                                            ProcId victim) {
  return rebuild(
      h, [victim](const history::Operation& op) { return op.proc != victim; },
      [](history::Operation&) {});
}

std::optional<SystemHistory> drop_op(const SystemHistory& h, OpIndex victim) {
  return rebuild(
      h, [victim](const history::Operation& op) { return op.index != victim; },
      [](history::Operation&) {});
}

/// Appends processor `src`'s sequence onto `dst`'s (src disappears).
std::optional<SystemHistory> merge_processors(const SystemHistory& h,
                                              ProcId dst, ProcId src) {
  SystemHistory out(h.symbols());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    if (p == src) continue;
    for (OpIndex i : h.processor_ops(p)) out.append(h.op(i));
    if (p == dst) {
      for (OpIndex i : h.processor_ops(src)) {
        history::Operation copy = h.op(i);
        copy.proc = dst;
        out.append(copy);
      }
    }
  }
  if (out.empty() || out.validate().has_value()) return std::nullopt;
  return out;
}

/// Makes every operation on `loc` ordinary.  Labels are stripped
/// per-location, not per-op: properly-labeled histories (the subspace the
/// labeled models are defined on — models/labeling.hpp) label a location
/// all-or-nothing, and shrinking must not leave that subspace.
std::optional<SystemHistory> strip_location_labels(const SystemHistory& h,
                                                   LocId loc) {
  bool any = false;
  for (const auto& op : h.operations()) {
    if (op.loc == loc && op.is_labeled()) {
      any = true;
      break;
    }
  }
  if (!any) return std::nullopt;
  return rebuild(
      h, [](const history::Operation&) { return true; },
      [loc](history::Operation& op) {
        if (op.loc == loc) op.label = OpLabel::Ordinary;
      });
}

/// Tries one candidate; on success commits it to `current`.
bool try_candidate(SystemHistory& current,
                   std::optional<SystemHistory> candidate,
                   const Predicate& reproduces, ShrinkStats& stats) {
  if (!candidate) return false;
  ++stats.attempts;
  if (!reproduces(*candidate)) return false;
  current = std::move(*candidate);
  ++stats.steps;
  return true;
}

}  // namespace

SystemHistory compact(const SystemHistory& h) {
  std::vector<bool> loc_used(h.num_locations(), false);
  std::vector<bool> proc_used(h.num_processors(), false);
  for (const auto& op : h.operations()) {
    loc_used[op.loc] = true;
    proc_used[op.proc] = true;
  }
  std::vector<ProcId> proc_map(h.num_processors(), 0);
  std::vector<LocId> loc_map(h.num_locations(), 0);
  ProcId procs = 0;
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    if (proc_used[p]) proc_map[p] = procs++;
  }
  LocId locs = 0;
  for (LocId l = 0; l < h.num_locations(); ++l) {
    if (loc_used[l]) loc_map[l] = locs++;
  }
  SystemHistory out(history::SymbolTable::canonical(procs, locs));
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    for (OpIndex i : h.processor_ops(p)) {
      history::Operation copy = h.op(i);
      copy.proc = proc_map[copy.proc];
      copy.loc = loc_map[copy.loc];
      out.append(copy);
    }
  }
  return out;
}

SystemHistory shrink(const SystemHistory& h, const Predicate& reproduces,
                     ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  SystemHistory current = h;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pass 1: whole processors, biggest cut first.
    for (ProcId p = 0; p < current.num_processors(); ++p) {
      if (current.processor_ops(p).empty()) continue;
      if (try_candidate(current, drop_processor(current, p), reproduces,
                        s)) {
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    // Pass 2: single operations.
    for (OpIndex i = 0; i < current.size(); ++i) {
      if (try_candidate(current, drop_op(current, i), reproduces, s)) {
        progressed = true;
        break;
      }
    }
    if (progressed) continue;
    // Pass 3: merge processor pairs (fewer processors, same ops).
    for (ProcId a = 0; a < current.num_processors() && !progressed; ++a) {
      for (ProcId b = 0; b < current.num_processors(); ++b) {
        if (a == b || current.processor_ops(a).empty() ||
            current.processor_ops(b).empty()) {
          continue;
        }
        if (try_candidate(current, merge_processors(current, a, b),
                          reproduces, s)) {
          progressed = true;
          break;
        }
      }
    }
    if (progressed) continue;
    // Pass 4: demote whole synchronization locations to ordinary.
    for (LocId l = 0; l < current.num_locations(); ++l) {
      if (try_candidate(current, strip_location_labels(current, l),
                        reproduces, s)) {
        progressed = true;
        break;
      }
    }
  }
  // Canonical names for the corpus; renaming must not (and does not)
  // change any verdict, but verify rather than assume.
  SystemHistory compacted = compact(current);
  ++s.attempts;
  if (reproduces(compacted)) return compacted;
  return current;
}

}  // namespace ssm::fuzz
