#include "fuzz/generator.hpp"

#include <algorithm>

#include "history/symbol_table.hpp"

namespace ssm::fuzz {
namespace {

/// Kind/location/label of one slot; values are resolved in a second pass
/// so read values can range over every write in the final history.
struct Slot {
  ProcId proc = 0;
  OpKind kind = OpKind::Read;
  LocId loc = 0;
  /// Template reads pin their outcome ("stale" = initial value, "fresh" =
  /// the location's first write); free reads draw uniformly.
  enum class Pin : std::uint8_t { Free, Initial, FirstWrite } pin = Pin::Free;
};

std::uint32_t pick_in(Rng& rng, std::uint32_t lo, std::uint32_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
}

/// Free-mode slot for processor `p`.
Slot free_slot(const GeneratorSpec& spec, Rng& rng, ProcId p) {
  Slot s;
  s.proc = p;
  s.loc = static_cast<LocId>(rng.below(spec.locs));
  if (rng.chance(spec.write_percent, 100)) {
    s.kind = rng.chance(spec.rmw_percent, 100) ? OpKind::ReadModifyWrite
                                               : OpKind::Write;
  } else {
    s.kind = OpKind::Read;
  }
  return s;
}

/// Two distinct locations for a skeleton (falls back to one when the spec
/// has a single location — the skeleton degrades to a coherence shape).
std::pair<LocId, LocId> two_locs(const GeneratorSpec& spec, Rng& rng) {
  const LocId x = static_cast<LocId>(rng.below(spec.locs));
  if (spec.locs < 2) return {x, x};
  LocId y = static_cast<LocId>(rng.below(spec.locs - 1));
  if (y >= x) ++y;
  return {x, y};
}

Slot::Pin pick_pin(Rng& rng) {
  return rng.chance(1, 2) ? Slot::Pin::Initial : Slot::Pin::FirstWrite;
}

/// Message passing: p writes x then y; q reads y then x.  The interesting
/// outcome (y fresh, x stale) is one of the four random pin choices.
void mp_skeleton(const GeneratorSpec& spec, Rng& rng,
                 std::vector<Slot>& slots) {
  const auto [x, y] = two_locs(spec, rng);
  slots.push_back({0, OpKind::Write, x, Slot::Pin::Free});
  slots.push_back({0, OpKind::Write, y, Slot::Pin::Free});
  slots.push_back({1, OpKind::Read, y, pick_pin(rng)});
  slots.push_back({1, OpKind::Read, x, pick_pin(rng)});
}

/// Store buffering: p writes x reads y; q writes y reads x.
void sb_skeleton(const GeneratorSpec& spec, Rng& rng,
                 std::vector<Slot>& slots) {
  const auto [x, y] = two_locs(spec, rng);
  slots.push_back({0, OpKind::Write, x, Slot::Pin::Free});
  slots.push_back({0, OpKind::Read, y, pick_pin(rng)});
  slots.push_back({1, OpKind::Write, y, Slot::Pin::Free});
  slots.push_back({1, OpKind::Read, x, pick_pin(rng)});
}

/// IRIW: two writers, two readers observing in opposite orders (needs 4
/// processors; callers only select it when max_procs allows).
void iriw_skeleton(const GeneratorSpec& spec, Rng& rng,
                   std::vector<Slot>& slots) {
  const auto [x, y] = two_locs(spec, rng);
  slots.push_back({0, OpKind::Write, x, Slot::Pin::Free});
  slots.push_back({1, OpKind::Write, y, Slot::Pin::Free});
  slots.push_back({2, OpKind::Read, x, pick_pin(rng)});
  slots.push_back({2, OpKind::Read, y, pick_pin(rng)});
  slots.push_back({3, OpKind::Read, y, pick_pin(rng)});
  slots.push_back({3, OpKind::Read, x, pick_pin(rng)});
}

}  // namespace

litmus::LitmusTest random_test(const GeneratorSpec& spec, Rng& rng,
                               std::string name) {
  const std::uint32_t locs = std::max<std::uint32_t>(spec.locs, 1);
  // Per-location synchronization flags, drawn up front: a sync location
  // has every operation labeled, so the history stays properly labeled.
  std::vector<bool> sync(locs, false);
  for (std::uint32_t l = 0; l < locs; ++l) {
    sync[l] = rng.chance(spec.label_percent, 100);
  }
  std::vector<Slot> slots;
  std::uint32_t procs = 0;
  const char* origin = "fuzz (free)";
  const bool templated = rng.chance(spec.shape_percent, 100);
  if (templated) {
    const bool iriw_ok = spec.max_procs >= 4;
    switch (rng.below(iriw_ok ? 3 : 2)) {
      case 0:
        mp_skeleton(spec, rng, slots);
        procs = 2;
        origin = "fuzz (mp skeleton)";
        break;
      case 1:
        sb_skeleton(spec, rng, slots);
        procs = 2;
        origin = "fuzz (sb skeleton)";
        break;
      default:
        iriw_skeleton(spec, rng, slots);
        procs = 4;
        origin = "fuzz (iriw skeleton)";
        break;
    }
    // Pad with free ops so templates still explore the surrounding space.
    for (ProcId p = 0; p < procs; ++p) {
      const std::uint32_t extra =
          static_cast<std::uint32_t>(rng.below(spec.max_ops + 1)) / 2;
      for (std::uint32_t k = 0; k < extra; ++k) {
        slots.push_back(free_slot(spec, rng, p));
      }
    }
  } else {
    procs = pick_in(rng, std::max<std::uint32_t>(spec.min_procs, 1),
                    std::max<std::uint32_t>(spec.max_procs, 1));
    for (ProcId p = 0; p < procs; ++p) {
      const std::uint32_t ops =
          pick_in(rng, std::max<std::uint32_t>(spec.min_ops, 1),
                  std::max<std::uint32_t>(spec.max_ops, 1));
      for (std::uint32_t k = 0; k < ops; ++k) {
        slots.push_back(free_slot(spec, rng, p));
      }
    }
  }
  // Guarantee every processor issues at least one operation (an empty
  // processor would vanish from the emitted DSL and break round-trips).
  std::vector<bool> seen(procs, false);
  for (const Slot& s : slots) seen[s.proc] = true;
  for (ProcId p = 0; p < procs; ++p) {
    if (!seen[p]) slots.push_back(free_slot(spec, rng, p));
  }
  // Order slots processor-major (templates interleave processors; dense
  // append order must follow per-processor program order per line).
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) { return a.proc < b.proc; });

  // Value pass: canonical write values keep every (location, value) pair
  // unique, which is exactly what SystemHistory::validate() requires of a
  // checkable history.
  std::vector<std::uint32_t> writes_to(locs, 0);
  for (const Slot& s : slots) {
    if (is_write_like(s.kind)) ++writes_to[s.loc];
  }
  litmus::LitmusTest t;
  t.name = std::move(name);
  t.origin = origin;
  t.hist = history::SystemHistory(history::SymbolTable::canonical(procs,
                                                                  locs));
  std::vector<std::uint32_t> next_value(locs, 0);
  for (const Slot& s : slots) {
    history::Operation op;
    op.proc = s.proc;
    op.kind = s.kind;
    op.loc = s.loc;
    op.label = sync[s.loc] ? OpLabel::Labeled : OpLabel::Ordinary;
    const auto read_value = [&]() -> Value {
      switch (s.pin) {
        case Slot::Pin::Initial:
          return kInitialValue;
        case Slot::Pin::FirstWrite:
          return writes_to[s.loc] > 0 ? Value{1} : kInitialValue;
        case Slot::Pin::Free:
          break;
      }
      return static_cast<Value>(rng.below(writes_to[s.loc] + 1));
    };
    if (s.kind == OpKind::Read) {
      op.value = read_value();
    } else {
      op.value = static_cast<Value>(++next_value[s.loc]);
      if (s.kind == OpKind::ReadModifyWrite) op.rmw_read = read_value();
    }
    t.hist.append(op);
  }
  return t;
}

}  // namespace ssm::fuzz
