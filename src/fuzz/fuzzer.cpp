#include "fuzz/fuzzer.hpp"

#include <cstdio>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/shrink.hpp"
#include "litmus/emit.hpp"
#include "models/registry.hpp"

namespace ssm::fuzz {
namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Per-iteration result, written only by its own worker.
struct CaseSlot {
  std::vector<FuzzFinding> findings;
  std::vector<InconclusiveCase> inconclusive;
  std::uint64_t shrink_steps = 0;
};

}  // namespace

std::uint64_t case_seed(std::uint64_t seed, std::uint64_t i) {
  // Case 0 uses the master seed directly: that is what makes
  // `--seed <case_seed> --iters 1` replay any case from a larger run.
  if (i == 0) return seed;
  return splitmix64(seed ^ splitmix64(i));
}

std::string FuzzReport::to_json() const {
  std::string json = "{\n  \"seed\": " + std::to_string(seed) +
                     ",\n  \"cases\": " + std::to_string(cases) +
                     ",\n  \"shrink_steps\": " + std::to_string(shrink_steps) +
                     ",\n  \"findings\": [";
  bool first = true;
  for (const auto& f : findings) {
    json += first ? "\n    {" : ",\n    {";
    first = false;
    json += "\"case\": " + std::to_string(f.case_index) +
            ", \"case_seed\": " + std::to_string(f.case_seed) +
            ", \"kind\": \"";
    json += to_string(f.kind);
    json += "\", \"model\": \"";
    json_escape(json, f.model);
    json += "\", \"other\": \"";
    json_escape(json, f.other);
    json += "\", \"detail\": \"";
    json_escape(json, f.detail);
    json += "\", \"litmus\": \"";
    json_escape(json, f.dsl);
    json += "\"}";
  }
  json += "\n  ],\n  \"inconclusive\": [";
  first = true;
  for (const auto& c : inconclusive) {
    json += first ? "\n    {" : ",\n    {";
    first = false;
    json += "\"case\": " + std::to_string(c.case_index) +
            ", \"case_seed\": " + std::to_string(c.case_seed) +
            ", \"detail\": \"";
    json_escape(json, c.detail);
    json += "\", \"litmus\": \"";
    json_escape(json, c.dsl);
    json += "\"}";
  }
  json += "\n  ]\n}\n";
  return json;
}

std::string FuzzReport::format() const {
  std::string out;
  for (const auto& f : findings) {
    out += "FINDING [";
    out += to_string(f.kind);
    out += "] case " + std::to_string(f.case_index) + " (reproduce: --seed " +
           std::to_string(f.case_seed) + " --iters 1): " + f.detail +
           "\n  shrunk to " + std::to_string(f.test.hist.size()) +
           " ops:\n" + f.dsl;
  }
  for (const auto& c : inconclusive) {
    out += "INCONCLUSIVE case " + std::to_string(c.case_index) +
           " (reproduce: --seed " + std::to_string(c.case_seed) +
           " --iters 1): " + c.detail + "\n";
  }
  out += "fuzz: " + std::to_string(cases) + " cases, " +
         std::to_string(findings.size()) + " findings, " +
         std::to_string(inconclusive.size()) + " inconclusive\n";
  return out;
}

FuzzReport run_fuzz(const FuzzOptions& options,
                    std::vector<models::ModelPtr> models) {
  auto& registry = common::metrics::Registry::global();
  auto& cases_ctr = registry.counter("fuzz.cases");
  auto& findings_ctr = registry.counter("fuzz.findings");
  auto& shrink_ctr = registry.counter("fuzz.shrink_steps");
  auto& inconclusive_ctr = registry.counter("fuzz.inconclusive");

  const Oracle oracle(std::move(models), options.oracle);
  const std::uint64_t n = options.iters;
  std::vector<CaseSlot> slots(n);

  const auto run_one = [&](std::size_t i) {
    CaseSlot& slot = slots[i];
    const std::uint64_t cs = case_seed(options.seed, i);
    Rng rng(cs);
    const auto t = random_test(options.gen, rng,
                               "fuzz-" + std::to_string(i));
    cases_ctr.add(1);
    auto result = oracle.run_case(t);
    for (const auto& note : result.inconclusive) {
      slot.inconclusive.push_back(
          {i, cs, note, litmus::emit(t)});
    }
    for (auto& raw : result.findings) {
      FuzzFinding f;
      f.case_index = i;
      f.case_seed = cs;
      f.kind = raw.kind;
      f.model = std::move(raw.model);
      f.other = std::move(raw.other);
      f.detail = std::move(raw.detail);
      f.test = t;
      f.test.expectations.clear();
      if (options.shrink) {
        Finding probe;  // shrink predicate re-checks this finding only
        probe.kind = f.kind;
        probe.model = f.model;
        probe.other = f.other;
        ShrinkStats stats;
        f.test.hist = shrink(
            t.hist,
            [&](const history::SystemHistory& h) {
              return oracle.reproduces(h, probe);
            },
            &stats);
        slot.shrink_steps += stats.steps;
      }
      // No case index in the name: structurally equal findings from
      // different iterations must collide in the corpus (dedup by
      // content); the reproducing seed lives in origin and the report.
      f.test.name = "fuzz-" + std::string(to_string(f.kind));
      f.test.origin = "shrunk fuzz finding (seed " + std::to_string(cs) +
                      "): " + f.detail;
      f.dsl = litmus::emit(f.test);
      slot.findings.push_back(std::move(f));
    }
  };

  // One iteration per chunk on the work-stealing scheduler: the caller
  // seeds its own deque and idle lanes steal — iterations that hit a
  // finding (and pay for shrinking) stop stalling the rest of the batch,
  // which the old shared-counter pool serialized behind them.  Each
  // iteration writes only slot i, so the findings JSON stays
  // byte-identical at any --jobs width.
  auto& pool = common::ThreadPool::global();
  if (pool.jobs() <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    pool.parallel_for(n, run_one);
  }

  FuzzReport report;
  report.seed = options.seed;
  report.cases = n;
  for (auto& slot : slots) {
    report.shrink_steps += slot.shrink_steps;
    for (auto& f : slot.findings) report.findings.push_back(std::move(f));
    for (auto& c : slot.inconclusive) {
      report.inconclusive.push_back(std::move(c));
    }
  }
  findings_ctr.add(report.findings.size());
  shrink_ctr.add(report.shrink_steps);
  inconclusive_ctr.add(report.inconclusive.size());

  if (!options.corpus_dir.empty() && !report.findings.empty()) {
    // Expectations come from a clean registry — with an injected bug the
    // wrapped model must not poison the recorded ground truth.
    const auto reference = models::all_models();
    for (auto& f : report.findings) {
      save_case(options.corpus_dir, f.test, reference,
                options.oracle.budget);
    }
  }
  return report;
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  auto models = models::all_models();
  if (!options.inject_bug_into.empty()) {
    bool wrapped = false;
    for (auto& m : models) {
      if (m->name() == options.inject_bug_into) {
        m = make_buggy_model(std::move(m));
        wrapped = true;
      }
    }
    if (!wrapped) {
      throw InvalidInput("--inject-bug: unknown model '" +
                         options.inject_bug_into + "'");
    }
  }
  return run_fuzz(options, std::move(models));
}

}  // namespace ssm::fuzz
