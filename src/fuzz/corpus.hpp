// Regression corpus: shrunk fuzz findings persisted as .litmus files.
//
// Every finding the fuzzer shrinks is saved under a deterministic file
// name derived from its canonical DSL text, so re-running the same seed
// never duplicates entries and corpora merge by simple file copy.  Saved
// tests carry `expect:` lines recorded from a reference model set at save
// time — replaying the corpus is then just litmus::run_suite plus the
// oracle's lattice invariant, which is exactly what the `fuzz`-labeled
// ctest corpus runner does (tools/CMakeLists.txt).  The starter corpus
// under tests/litmus/corpus/ holds the shrunk paper figures 1–4 and the
// §5 Bakery RC_pc violation; docs/FUZZING.md describes the triage
// workflow that grows it.
#pragma once

#include <string>
#include <vector>

#include "checker/budget.hpp"
#include "litmus/test.hpp"
#include "models/model.hpp"

namespace ssm::fuzz {

/// Deterministic corpus file name: "<name>-<fnv1a64 of the symmetry-
/// canonical form (litmus::canonical_key)>.litmus".  Two isomorphic
/// shrunk cases — equal up to processor/location/value renaming — collide
/// on purpose (same class, same file).
[[nodiscard]] std::string corpus_file_name(const litmus::LitmusTest& t);

/// Records `expect:` lines on `t` from the reference models' conclusive
/// verdicts (INCONCLUSIVE cells stay unspecified), then writes
/// litmus::emit(t) to `dir`/corpus_file_name(t).  Creates `dir` when
/// missing.  Returns the full path written.
std::string save_case(const std::string& dir, litmus::LitmusTest t,
                      const std::vector<models::ModelPtr>& reference,
                      const checker::BudgetSpec& budget = {});

/// Parses every *.litmus file under `dir` (sorted by file name, one or
/// more tests per file).  Throws InvalidInput on unreadable or malformed
/// files — a corrupt corpus should fail loudly, not shrink silently.
[[nodiscard]] std::vector<litmus::LitmusTest> load_corpus(
    const std::string& dir);

struct ReplayFailure {
  std::string test;
  std::string detail;
};

struct ReplayResult {
  std::uint64_t tests = 0;
  std::uint64_t cells = 0;
  std::vector<ReplayFailure> failures;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Replays the corpus: every test is checked against `models`, recorded
/// expectations must match (INCONCLUSIVE cells contradict nothing), and
/// no verdict vector may invert a figure5 containment edge.
[[nodiscard]] ReplayResult replay_corpus(
    const std::string& dir, const std::vector<models::ModelPtr>& models,
    const checker::BudgetSpec& budget = {});

}  // namespace ssm::fuzz
