#include "fuzz/oracle.hpp"

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "lattice/inclusion.hpp"
#include "models/operational.hpp"
#include "order/derived.hpp"
#include "solve/backend.hpp"

namespace ssm::fuzz {
namespace {

/// The sound machine→model correspondences established by
/// tests/models/operational_test.cpp (EXPERIMENTS.md records the
/// completeness gaps; soundness is what the oracle enforces).
struct MachinePair {
  const char* machine;
  const char* model;
};
constexpr MachinePair kSoundPairs[] = {
    {"sc", "SC"},         {"tso", "TSOfwd"},   {"pram", "PRAM"},
    {"causal", "Causal"}, {"coherent", "PCg"},
};

bool has_labeled_ops(const history::SystemHistory& h) {
  for (const auto& op : h.operations()) {
    if (op.is_labeled()) return true;
  }
  return false;
}

class BuggyModel final : public models::Model {
 public:
  BuggyModel(models::ModelPtr inner, std::uint32_t min_writes)
      : inner_(std::move(inner)), min_writes_(min_writes) {}

  std::string_view name() const noexcept override { return inner_->name(); }
  std::string_view description() const noexcept override {
    return "INJECTED BUG wrapper (rejects multi-write processors)";
  }

  checker::Verdict check(const history::SystemHistory& h) const override {
    std::vector<std::uint32_t> writes(h.num_processors(), 0);
    for (const auto& op : h.operations()) {
      if (op.is_write() && ++writes[op.proc] >= min_writes_) {
        return checker::Verdict::no("injected bug: processor issues " +
                                    std::to_string(min_writes_) +
                                    "+ writes");
      }
    }
    return inner_->check(h);
  }

 private:
  models::ModelPtr inner_;
  std::uint32_t min_writes_;
};

}  // namespace

const char* to_string(FindingKind k) noexcept {
  switch (k) {
    case FindingKind::LatticeInversion:
      return "lattice-inversion";
    case FindingKind::OperationalUnsound:
      return "operational-unsound";
    case FindingKind::WitnessMismatch:
      return "witness-mismatch";
    case FindingKind::BackendDisagreement:
      return "backend-disagreement";
  }
  return "unknown";
}

Oracle::Oracle(std::vector<models::ModelPtr> models, OracleOptions options)
    : models_(std::move(models)), options_(options) {
  const auto index_of = [&](std::string_view name) -> std::size_t {
    for (std::size_t i = 0; i < models_.size(); ++i) {
      if (models_[i]->name() == name) return i;
    }
    return models_.size();
  };
  for (const auto& edge : lattice::figure5_containments()) {
    const std::size_t s = index_of(edge.stronger);
    const std::size_t w = index_of(edge.weaker);
    if (s < models_.size() && w < models_.size()) {
      edges_.push_back({s, w, edge.unlabeled_only});
    }
  }
  if (options_.check_operational) {
    for (const auto& pair : kSoundPairs) {
      const std::size_t m = index_of(pair.model);
      if (m < models_.size()) {
        machines_.emplace_back(
            models::make_operational(pair.machine, options_.max_schedules),
            m);
      }
    }
  }
}

checker::Verdict Oracle::check_budgeted(
    const models::Model& m, const history::SystemHistory& h) const {
  if (options_.budget.unlimited()) return m.check(h);
  checker::SearchBudget budget(options_.budget);
  const checker::BudgetScope scope(&budget);
  return m.check(h);
}

checker::Verdict Oracle::encode_budgeted(
    std::string_view model_name, const history::SystemHistory& h) const {
  if (options_.budget.unlimited()) return solve::encode_check(h, model_name);
  checker::SearchBudget budget(options_.budget);
  const checker::SearchControl control(nullptr, &budget);
  return solve::encode_check(h, model_name, control);
}

const models::Model* Oracle::by_name(std::string_view name) const {
  for (const auto& m : models_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

CaseResult Oracle::run_case(const litmus::LitmusTest& t) const {
  CaseResult out;
  const auto& h = t.hist;
  // One shared derived-order cache for the whole model sweep (and the
  // witness re-verification below): po/ppo/wb/co derive once per case.
  const order::DerivedOrders orders(h);
  const order::OrdersScope orders_scope(orders);
  std::vector<checker::Verdict> verdicts;
  verdicts.reserve(models_.size());
  for (const auto& m : models_) {
    verdicts.push_back(check_budgeted(*m, h));
    const auto& v = verdicts.back();
    if (v.inconclusive) {
      out.inconclusive.push_back(std::string(m->name()) + ": " + v.note);
    }
  }
  // Invariant 1: no containment inversion among conclusive cells.
  const bool labeled_case = has_labeled_ops(h);
  for (const auto& [s, w, unlabeled_only] : edges_) {
    if (unlabeled_only && labeled_case) continue;
    const auto& strong = verdicts[s];
    const auto& weak = verdicts[w];
    if (strong.inconclusive || weak.inconclusive) continue;
    if (strong.allowed && !weak.allowed) {
      Finding f;
      f.kind = FindingKind::LatticeInversion;
      f.model = std::string(models_[s]->name());
      f.other = std::string(models_[w]->name());
      f.detail = f.model + " admits but " + f.other +
                 " rejects (containment " + f.model + " ⊆ " + f.other +
                 " violated)";
      out.findings.push_back(std::move(f));
    }
  }
  // Invariant 2: every positive verdict certifies.
  if (options_.check_witnesses) {
    for (std::size_t i = 0; i < models_.size(); ++i) {
      const auto& v = verdicts[i];
      if (!v.allowed || v.inconclusive) continue;
      Finding f;
      f.kind = FindingKind::WitnessMismatch;
      f.model = std::string(models_[i]->name());
      try {
        const auto w = checker::witness_from_verdict(h, f.model, v);
        const auto err = checker::verify_witness(h, w);
        if (!err) continue;
        f.detail = "independent verifier rejects certificate: " + *err;
      } catch (const InvalidInput& e) {
        f.detail = std::string("certificate packaging failed: ") + e.what();
      }
      out.findings.push_back(std::move(f));
    }
  }
  // Invariant 4: search and encoding must agree wherever both decide.
  // The encode side is always the real encoding by model NAME, so a
  // sabotaged search model (make_buggy_model) disagrees here.
  if (options_.check_backends) {
    for (std::size_t i = 0; i < models_.size(); ++i) {
      const std::string name(models_[i]->name());
      if (!solve::encode_supports(name)) continue;
      const auto& sv = verdicts[i];
      if (sv.inconclusive) continue;
      const auto ev = encode_budgeted(name, h);
      if (ev.inconclusive) {
        out.inconclusive.push_back(name + " (encode): " + ev.note);
        continue;
      }
      if (sv.allowed == ev.allowed) continue;
      Finding f;
      f.kind = FindingKind::BackendDisagreement;
      f.model = name;
      f.detail = "search says " +
                 std::string(sv.allowed ? "allowed" : "forbidden") +
                 " but encode says " +
                 std::string(ev.allowed ? "allowed" : "forbidden");
      out.findings.push_back(std::move(f));
    }
  }
  // Invariant 3: machine-reachable implies declaratively admitted.
  if (options_.check_operational &&
      h.size() <= options_.max_operational_ops) {
    for (const auto& [machine, mi] : machines_) {
      const auto& decl = verdicts[mi];
      if (decl.inconclusive || decl.allowed) continue;
      const auto reach = machine->check(h);
      if (!reach.allowed) continue;
      Finding f;
      f.kind = FindingKind::OperationalUnsound;
      f.model = std::string(machine->name());
      f.other = std::string(models_[mi]->name());
      f.detail = f.model + " reaches this trace but " + f.other +
                 " rejects it";
      out.findings.push_back(std::move(f));
    }
  }
  return out;
}

bool Oracle::reproduces(const history::SystemHistory& h,
                        const Finding& finding) const {
  switch (finding.kind) {
    case FindingKind::LatticeInversion: {
      const auto* strong = by_name(finding.model);
      const auto* weak = by_name(finding.other);
      if (strong == nullptr || weak == nullptr) return false;
      for (const auto& e : edges_) {
        if (e.unlabeled_only && models_[e.stronger].get() == strong &&
            models_[e.weaker].get() == weak && has_labeled_ops(h)) {
          return false;
        }
      }
      const auto sv = check_budgeted(*strong, h);
      if (sv.inconclusive || !sv.allowed) return false;
      const auto wv = check_budgeted(*weak, h);
      return !wv.inconclusive && !wv.allowed;
    }
    case FindingKind::WitnessMismatch: {
      const auto* m = by_name(finding.model);
      if (m == nullptr) return false;
      const auto v = check_budgeted(*m, h);
      if (v.inconclusive || !v.allowed) return false;
      try {
        const auto w = checker::witness_from_verdict(h, finding.model, v);
        return checker::verify_witness(h, w).has_value();
      } catch (const InvalidInput&) {
        return true;
      }
    }
    case FindingKind::BackendDisagreement: {
      const auto* m = by_name(finding.model);
      if (m == nullptr || !solve::encode_supports(finding.model)) {
        return false;
      }
      const auto sv = check_budgeted(*m, h);
      if (sv.inconclusive) return false;
      const auto ev = encode_budgeted(finding.model, h);
      return !ev.inconclusive && sv.allowed != ev.allowed;
    }
    case FindingKind::OperationalUnsound: {
      if (h.size() > options_.max_operational_ops) return false;
      const models::Model* machine = nullptr;
      for (const auto& [op, mi] : machines_) {
        (void)mi;
        if (op->name() == finding.model) machine = op.get();
      }
      const auto* decl = by_name(finding.other);
      if (machine == nullptr || decl == nullptr) return false;
      const auto dv = check_budgeted(*decl, h);
      if (dv.inconclusive || dv.allowed) return false;
      return machine->check(h).allowed;
    }
  }
  return false;
}

models::ModelPtr make_buggy_model(models::ModelPtr inner,
                                  std::uint32_t min_writes_to_reject) {
  return std::make_unique<BuggyModel>(std::move(inner),
                                      min_writes_to_reject);
}

}  // namespace ssm::fuzz
