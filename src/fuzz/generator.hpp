// Random litmus-test generator for the fuzzing subsystem (diy-style).
//
// Produces straight-line programs-as-histories: every generated case is a
// well-formed SystemHistory (passes SystemHistory::validate()), rendered
// with canonical processor/location names so it round-trips exactly
// through litmus::emit / litmus::parse_test.
//
// Labeling is per-location: each location is independently chosen (with
// probability `label_percent`) to be a synchronization location, and then
// EVERY operation on it is labeled.  This keeps every generated history
// properly labeled (models::check_properly_labeled) — the labeled models
// (WO, HC, RC*) are only defined on that subspace, and the Figure 5
// containments are theorems there, not over arbitrarily mixed labelings.
//
// Two generation modes are mixed by `shape_percent`:
//   * free mode — every slot's kind/location drawn independently
//     from the knob distribution, canonical write values (the k-th write
//     to a location writes k), read values uniform over {initial} ∪
//     {values written to the location};
//   * template mode — the classic weak-memory skeletons (message passing,
//     store buffering, IRIW) instantiated on random locations with random
//     read outcomes and optional labeling, then padded with free-mode
//     ops.  These shapes sit exactly on the model separations of paper
//     Figures 1–4, so biasing toward them concentrates the fuzzer on the
//     regions where verdict vectors actually differ across the lattice.
//
// Determinism: generation consumes ONLY the passed Rng (common/rng.hpp,
// golden-sequence pinned), so a (seed, spec) pair reproduces the same
// case on any platform.
#pragma once

#include "common/rng.hpp"
#include "litmus/test.hpp"

namespace ssm::fuzz {

struct GeneratorSpec {
  /// Processor count range (inclusive).
  std::uint32_t min_procs = 2;
  std::uint32_t max_procs = 3;
  /// Operations per processor (inclusive range, drawn per processor).
  std::uint32_t min_ops = 1;
  std::uint32_t max_ops = 3;
  /// Number of shared locations.
  std::uint32_t locs = 2;
  /// Percent of operations that are writes (free mode).
  std::uint32_t write_percent = 50;
  /// Percent chance each location is a synchronization location (every
  /// operation on it labeled — see the proper-labeling note above).
  std::uint32_t label_percent = 20;
  /// Percent of writes that are atomic read-modify-writes.
  std::uint32_t rmw_percent = 10;
  /// Percent of cases built from a classic skeleton (MP / SB / IRIW).
  std::uint32_t shape_percent = 35;
};

/// One random test.  `name` becomes the test's name (the fuzzer passes
/// "fuzz-<case index>" so findings are addressable); origin records the
/// generation mode for triage.
[[nodiscard]] litmus::LitmusTest random_test(const GeneratorSpec& spec,
                                             Rng& rng, std::string name);

}  // namespace ssm::fuzz
