#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/oracle.hpp"
#include "litmus/canonical.hpp"
#include "litmus/emit.hpp"
#include "litmus/parser.hpp"
#include "litmus/runner.hpp"
#include "models/registry.hpp"

namespace ssm::fuzz {
namespace {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::string corpus_file_name(const litmus::LitmusTest& t) {
  // Hash the symmetry-canonical form (litmus/canonical.hpp), not just the
  // name-stripped emit: isomorphic shrunk findings — same bug modulo
  // processor/location/value renaming — collide onto one corpus file, so
  // re-fuzzing with different seeds doesn't accrete renamed duplicates.
  return t.name + "-" + hex16(fnv1a64(litmus::canonical_key(t))) + ".litmus";
}

std::string save_case(const std::string& dir, litmus::LitmusTest t,
                      const std::vector<models::ModelPtr>& reference,
                      const checker::BudgetSpec& budget) {
  const auto outcome =
      litmus::run_test(t, reference, litmus::RunOptions{budget});
  t.expectations.clear();
  for (const auto& cell : outcome.per_model) {
    if (cell.inconclusive) continue;
    t.expectations[cell.model] = cell.allowed;
  }
  fs::create_directories(dir);
  const fs::path path = fs::path(dir) / corpus_file_name(t);
  std::ofstream out(path);
  if (!out) {
    throw InvalidInput("cannot write corpus file " + path.string());
  }
  out << litmus::emit(t);
  return path.string();
}

std::vector<litmus::LitmusTest> load_corpus(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw InvalidInput("corpus directory not found: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".litmus") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<litmus::LitmusTest> out;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) throw InvalidInput("cannot read corpus file " + file.string());
    std::ostringstream text;
    text << in.rdbuf();
    try {
      for (auto& t : litmus::parse_suite(text.str())) {
        out.push_back(std::move(t));
      }
    } catch (const InvalidInput& e) {
      throw InvalidInput(file.string() + ": " + e.what());
    }
  }
  return out;
}

ReplayResult replay_corpus(const std::string& dir,
                           const std::vector<models::ModelPtr>& models,
                           const checker::BudgetSpec& budget) {
  ReplayResult result;
  const auto tests = load_corpus(dir);
  // The oracle re-checks the lattice invariant on every corpus entry;
  // recorded expectations guard against verdicts drifting over time.
  OracleOptions opts;
  opts.check_witnesses = true;
  opts.check_operational = false;  // corpus replay stays cheap (tier-1)
  opts.budget = budget;
  std::vector<models::ModelPtr> oracle_models;
  for (const auto& m : models) {
    oracle_models.push_back(models::make_model(m->name()));
  }
  const Oracle oracle(std::move(oracle_models), opts);
  for (const auto& t : tests) {
    ++result.tests;
    const auto outcome =
        litmus::run_test(t, models, litmus::RunOptions{budget});
    for (const auto& cell : outcome.per_model) {
      ++result.cells;
      if (!cell.matches()) {
        result.failures.push_back(
            {t.name, cell.model + ": got " +
                         (cell.inconclusive
                              ? "inconclusive"
                              : (cell.allowed ? "allowed" : "forbidden")) +
                         ", expected " +
                         (cell.expected.value() ? "allowed" : "forbidden")});
      }
    }
    for (const auto& f : oracle.run_case(t).findings) {
      result.failures.push_back(
          {t.name, std::string(to_string(f.kind)) + ": " + f.detail});
    }
  }
  return result;
}

}  // namespace ssm::fuzz
