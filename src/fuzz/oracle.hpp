// Differential oracle: cross-checks every model's verdict on one case
// against ground truth that does not depend on any single checker being
// right.
//
// For each generated case the oracle computes the full verdict vector over
// a model set and validates three invariants:
//
//   1. Lattice consistency (lattice::figure5_containments): a history
//      admitted by a stronger model must be admitted by every weaker
//      model.  An inversion means one of the two implementations is wrong
//      — the containments are theorems, not empirical observations.
//   2. Witness integrity: every positive verdict must package into a
//      checker::Witness that the deliberately independent
//      checker/witness_verifier accepts.  A verdict whose own evidence
//      fails re-verification is a checker bug even when the boolean answer
//      happens to be right.
//   3. Operational soundness: every trace reachable by an operational
//      machine in src/simulate must be admitted by the machine's sound
//      declarative counterpart (sc→SC, tso→TSOfwd, pram→PRAM,
//      causal→Causal, coherent→PCg).  Concretely: if exhaustive schedule
//      exploration (models::make_operational) reproduces the case's read
//      values, the declarative model must say yes.
//   4. Backend agreement (docs/PORTFOLIO.md): the enumerating search and
//      the SAT-encoding backend decide the same predicate, so two
//      conclusive verdicts for the same (history, model) must be equal.
//      The encode side always runs the REAL encoding (solve::encode_check
//      by model name), so a sabotaged search model (make_buggy_model,
//      `ssm fuzz --inject-bug`) surfaces here as a disagreement even when
//      no lattice edge catches it.
//
// INCONCLUSIVE verdicts (budget trips) are never findings: an exhausted
// search proves nothing in either direction, so budget trips are reported
// separately and every invariant skips undecided cells.
//
// The oracle is stateless after construction and safe to call from
// thread-pool workers concurrently (registry models are stateless; each
// run_case installs fresh SearchBudgets).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "checker/budget.hpp"
#include "litmus/test.hpp"
#include "models/model.hpp"

namespace ssm::fuzz {

enum class FindingKind : std::uint8_t {
  /// Stronger model admits, weaker model rejects (both conclusive).
  LatticeInversion,
  /// Machine-reachable trace rejected by the machine's sound model.
  OperationalUnsound,
  /// A positive verdict whose certificate fails independent
  /// re-verification (or cannot be packaged at all).
  WitnessMismatch,
  /// Search and SAT-encoding backends return different conclusive
  /// verdicts for the same (history, model) cell.
  BackendDisagreement,
};

[[nodiscard]] const char* to_string(FindingKind k) noexcept;

struct Finding {
  FindingKind kind = FindingKind::LatticeInversion;
  /// The implicated models: for LatticeInversion the (stronger, weaker)
  /// pair; for OperationalUnsound the (machine, model) pair; for
  /// WitnessMismatch `model` only.
  std::string model;
  std::string other;
  /// Human-readable diagnostic (verifier message, machine note, …).
  std::string detail;
};

struct OracleOptions {
  bool check_witnesses = true;
  bool check_operational = true;
  /// Invariant 4: differential search-vs-encode on every case, for every
  /// model the encoding supports.
  bool check_backends = true;
  /// Histories larger than this skip invariant 3 (exploration is
  /// exponential in total operations).
  std::uint32_t max_operational_ops = 6;
  /// Schedule cap forwarded to models::make_operational.
  std::uint64_t max_schedules = 500'000;
  /// Per model-check search budget (0/0 = unlimited).
  checker::BudgetSpec budget;
};

struct CaseResult {
  std::vector<Finding> findings;
  /// "model: note" for every budget-tripped (INCONCLUSIVE) cell.
  std::vector<std::string> inconclusive;
};

class Oracle {
 public:
  /// Checks cases against `models` (typically models::all_models()).  The
  /// figure5 containment edges and operational pairs are resolved against
  /// the set by name; edges naming absent models are skipped, so a
  /// filtered or instrumented model set (see make_buggy_model) just
  /// narrows the oracle.
  Oracle(std::vector<models::ModelPtr> models, OracleOptions options = {});

  [[nodiscard]] CaseResult run_case(const litmus::LitmusTest& t) const;

  /// True when `finding` still reproduces on `h` — the shrinker's
  /// predicate.  Re-runs only the implicated checks, not the full vector.
  [[nodiscard]] bool reproduces(const history::SystemHistory& h,
                                const Finding& finding) const;

  [[nodiscard]] const std::vector<models::ModelPtr>& models() const noexcept {
    return models_;
  }
  [[nodiscard]] const OracleOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] checker::Verdict check_budgeted(
      const models::Model& m, const history::SystemHistory& h) const;
  /// The SAT-encoding counterpart of check_budgeted: always the real
  /// encoding (by name), never a wrapped/instrumented model.
  [[nodiscard]] checker::Verdict encode_budgeted(
      std::string_view model_name, const history::SystemHistory& h) const;
  [[nodiscard]] const models::Model* by_name(std::string_view name) const;

  std::vector<models::ModelPtr> models_;
  OracleOptions options_;
  /// Containment edges as (stronger, weaker) indices into models_.
  /// Edges marked unlabeled_only are skipped on labeled histories.
  struct Edge {
    std::size_t stronger;
    std::size_t weaker;
    bool unlabeled_only;
  };
  std::vector<Edge> edges_;
  /// (operational machine model, sound declarative model index) pairs.
  std::vector<std::pair<models::ModelPtr, std::size_t>> machines_;
};

/// Test hook: wraps `inner` so that check() wrongly REJECTS any history in
/// which some processor issues at least `min_writes_to_reject` writes.
/// The wrapper keeps inner's name, so wrapping a weak model (e.g. Causal)
/// plants a lattice inversion the fuzzer must catch: TSO still admits
/// multi-write histories that the sabotaged Causal now rejects.  Used by
/// the acceptance tests and `ssm fuzz --inject-bug`.
[[nodiscard]] models::ModelPtr make_buggy_model(
    models::ModelPtr inner, std::uint32_t min_writes_to_reject = 2);

}  // namespace ssm::fuzz
