// Enumeration of linear extensions (topological orders) of a relation
// restricted to a subset of elements.
//
// TSO needs "all total orders of the writes consistent with the constraint
// relation"; PC and RC need per-location write linearizations.  The
// enumerator yields each extension to a callback and supports early exit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "relation/relation.hpp"

namespace ssm::rel {

/// Calls `visit` with each linear extension of `r` restricted to `universe`
/// (each extension is a vector of element indices).  If `visit` returns
/// false, enumeration stops early (used for "first witness wins").
/// Returns true iff enumeration was stopped early by the callback.
///
/// Precondition: `r` restricted to `universe` is acyclic (a cyclic input
/// simply yields no extensions).
bool for_each_linear_extension(
    const Relation& r, const DynBitset& universe,
    const std::function<bool(const std::vector<std::size_t>&)>& visit);

/// Convenience: the number of linear extensions (no early exit), capped at
/// `cap` to bound work on loosely-constrained inputs.
[[nodiscard]] std::uint64_t count_linear_extensions(const Relation& r,
                                                    const DynBitset& universe,
                                                    std::uint64_t cap);

/// One linear extension (Kahn's algorithm), or empty if cyclic/empty
/// universe with cycle.  Deterministic: smallest-index-first tie-break.
[[nodiscard]] std::vector<std::size_t> one_linear_extension(
    const Relation& r, const DynBitset& universe);

}  // namespace ssm::rel
