// DynBitset: a small dynamic bitset over operation indices.
//
// Relations and the checker's scheduled-set masks are bitsets over the dense
// OpIndex space of one SystemHistory (litmus scale: tens of operations, so
// one or two 64-bit words).  std::vector<bool> is too slow and std::bitset
// is fixed-size; this class is the minimal fast middle ground.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ssm::rel {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Resize to `bits` with all bits cleared, reusing the word storage
  /// (the checker's per-thread scratch bitsets are recycled across
  /// searches of different histories).
  void assign(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  [[nodiscard]] bool any() const noexcept {
    for (auto w : words_) {
      if (w) return true;
    }
    return false;
  }
  [[nodiscard]] bool none() const noexcept { return !any(); }

  [[nodiscard]] std::size_t count() const noexcept;

  DynBitset& operator|=(const DynBitset& o) noexcept;
  DynBitset& operator&=(const DynBitset& o) noexcept;
  /// Set difference: this &= ~o.
  DynBitset& operator-=(const DynBitset& o) noexcept;

  [[nodiscard]] bool operator==(const DynBitset& o) const noexcept {
    return bits_ == o.bits_ && words_ == o.words_;
  }

  /// True iff this is a subset of `o`.
  [[nodiscard]] bool subset_of(const DynBitset& o) const noexcept;

  /// True iff this and `o` intersect.
  [[nodiscard]] bool intersects(const DynBitset& o) const noexcept;

  /// Invoke `f(i)` for every set bit, in increasing order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        f(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Raw word access (used by Relation's closure inner loop).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::vector<std::uint64_t>& words() noexcept { return words_; }

  /// 64-bit mixing hash (for memoization keys).
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ssm::rel
