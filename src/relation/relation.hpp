// Relation: a binary relation over the dense OpIndex space of one history.
//
// Represented as one DynBitset row per element (row a = successors of a).
// This is the workhorse behind every order in the paper: po, ppo, wb, co,
// rwb, rrb, sem, and the per-model constraint relations assembled by the
// checker.  Transitive closure is bit-parallel (O(n^2 * n/64)).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "relation/bitset.hpp"

namespace ssm::rel {

class Relation {
 public:
  Relation() = default;
  explicit Relation(std::size_t n) : n_(n), rows_(n, DynBitset(n)) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  void add(std::size_t a, std::size_t b) { rows_[a].set(b); }
  void remove(std::size_t a, std::size_t b) { rows_[a].reset(b); }
  [[nodiscard]] bool test(std::size_t a, std::size_t b) const {
    return rows_[a].test(b);
  }

  [[nodiscard]] const DynBitset& successors(std::size_t a) const {
    return rows_[a];
  }

  /// Union in place; relations must have the same size.
  Relation& operator|=(const Relation& o);

  [[nodiscard]] bool operator==(const Relation& o) const noexcept {
    return n_ == o.n_ && rows_ == o.rows_;
  }

  /// R ∪ S as a new relation.
  [[nodiscard]] friend Relation operator|(Relation a, const Relation& b) {
    a |= b;
    return a;
  }

  /// Transitive closure (not reflexive).  Bit-parallel forward propagation:
  /// iterate until fixpoint; for litmus-scale n this is effectively instant.
  [[nodiscard]] Relation transitive_closure() const;

  /// True iff the transitive closure is irreflexive (no cycle).
  [[nodiscard]] bool is_acyclic() const;

  /// Number of edges.
  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// Restriction: keep only edges with both endpoints in `keep`.
  [[nodiscard]] Relation restricted_to(const DynBitset& keep) const;

  /// Predecessor counts restricted to `universe` (used to seed topological
  /// enumeration).  result[i] == number of j in universe with j -> i.
  [[nodiscard]] std::vector<std::uint32_t> indegrees(
      const DynBitset& universe) const;

 private:
  std::size_t n_ = 0;
  std::vector<DynBitset> rows_;
};

}  // namespace ssm::rel
