#include "relation/relation.hpp"

namespace ssm::rel {

Relation& Relation::operator|=(const Relation& o) {
  if (o.n_ != n_) throw InvalidInput("relation size mismatch in union");
  for (std::size_t i = 0; i < n_; ++i) rows_[i] |= o.rows_[i];
  return *this;
}

Relation Relation::transitive_closure() const {
  Relation out = *this;
  // Repeated squaring by row-propagation: for each i, fold in successor
  // rows until no row changes.  n is tiny (litmus scale) so the simple
  // fixpoint loop is both clear and fast.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n_; ++i) {
      DynBitset next = out.rows_[i];
      out.rows_[i].for_each([&](std::size_t j) { next |= out.rows_[j]; });
      if (!(next == out.rows_[i])) {
        out.rows_[i] = std::move(next);
        changed = true;
      }
    }
  }
  return out;
}

bool Relation::is_acyclic() const {
  const Relation closed = transitive_closure();
  for (std::size_t i = 0; i < n_; ++i) {
    if (closed.rows_[i].test(i)) return false;
  }
  return true;
}

std::size_t Relation::edge_count() const noexcept {
  std::size_t total = 0;
  for (const auto& row : rows_) total += row.count();
  return total;
}

Relation Relation::restricted_to(const DynBitset& keep) const {
  Relation out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (!keep.test(i)) continue;
    out.rows_[i] = rows_[i];
    out.rows_[i] &= keep;
  }
  return out;
}

std::vector<std::uint32_t> Relation::indegrees(
    const DynBitset& universe) const {
  std::vector<std::uint32_t> deg(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    if (!universe.test(i)) continue;
    rows_[i].for_each([&](std::size_t j) {
      if (universe.test(j)) ++deg[j];
    });
  }
  return deg;
}

}  // namespace ssm::rel
