#include "relation/topo.hpp"

namespace ssm::rel {
namespace {

struct EnumState {
  const Relation& r;
  const DynBitset& universe;
  const std::function<bool(const std::vector<std::size_t>&)>& visit;
  std::vector<std::uint32_t> indeg;
  std::vector<std::size_t> order;
  DynBitset done;
  std::size_t remaining = 0;
  bool stopped = false;

  void recurse() {
    if (stopped) return;
    if (remaining == 0) {
      if (!visit(order)) stopped = true;
      return;
    }
    for (std::size_t i = 0; i < indeg.size() && !stopped; ++i) {
      if (!universe.test(i) || done.test(i) || indeg[i] != 0) continue;
      // Schedule i.
      done.set(i);
      order.push_back(i);
      --remaining;
      r.successors(i).for_each([&](std::size_t j) {
        if (universe.test(j)) --indeg[j];
      });
      recurse();
      r.successors(i).for_each([&](std::size_t j) {
        if (universe.test(j)) ++indeg[j];
      });
      ++remaining;
      order.pop_back();
      done.reset(i);
    }
  }
};

}  // namespace

bool for_each_linear_extension(
    const Relation& r, const DynBitset& universe,
    const std::function<bool(const std::vector<std::size_t>&)>& visit) {
  EnumState st{r, universe, visit, r.indegrees(universe), {},
               DynBitset(r.size()), universe.count(), false};
  st.order.reserve(st.remaining);
  st.recurse();
  return st.stopped;
}

std::uint64_t count_linear_extensions(const Relation& r,
                                      const DynBitset& universe,
                                      std::uint64_t cap) {
  std::uint64_t count = 0;
  for_each_linear_extension(r, universe,
                            [&](const std::vector<std::size_t>&) {
                              ++count;
                              return count < cap;
                            });
  return count;
}

std::vector<std::size_t> one_linear_extension(const Relation& r,
                                              const DynBitset& universe) {
  auto indeg = r.indegrees(universe);
  DynBitset done(r.size());
  std::vector<std::size_t> order;
  order.reserve(universe.count());
  const std::size_t target = universe.count();
  while (order.size() < target) {
    bool advanced = false;
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (!universe.test(i) || done.test(i) || indeg[i] != 0) continue;
      done.set(i);
      order.push_back(i);
      r.successors(i).for_each([&](std::size_t j) {
        if (universe.test(j)) --indeg[j];
      });
      advanced = true;
      break;
    }
    if (!advanced) return {};  // cycle
  }
  return order;
}

}  // namespace ssm::rel
