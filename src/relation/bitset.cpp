#include "relation/bitset.hpp"

namespace ssm::rel {

std::size_t DynBitset::count() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

DynBitset& DynBitset::operator|=(const DynBitset& o) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator&=(const DynBitset& o) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynBitset& DynBitset::operator-=(const DynBitset& o) noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

bool DynBitset::subset_of(const DynBitset& o) const noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~o.words_[i]) return false;
  }
  return true;
}

bool DynBitset::intersects(const DynBitset& o) const noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & o.words_[i]) return true;
  }
  return false;
}

std::uint64_t DynBitset::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (auto w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace ssm::rel
