// Seeded trace generation: runs a simulated machine under a scheduler and
// streams the recorded operations out as trace-format NDJSON
// (docs/TRACES.md).  The generator is deterministic — the same options
// produce byte-identical output (golden-file pinned in tests/trace) — and
// bounded-memory: the scheduler's TraceRecorder forwards each operation to
// the writer instead of accumulating a SystemHistory, so multi-million-op
// traces stream in O(window) space.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "simulate/machine.hpp"
#include "trace/format.hpp"

namespace ssm::trace {

struct TraceGenOptions {
  /// Machine name: sc | tso | rc-sc | rc-pc.
  std::string machine = "sc";
  /// Scenario: "workload" (random straight-line programs, ~`ops` total
  /// operations, adversarial Random scheduling) or "bakery" (one
  /// single-entry Bakery run per §5 — small, and buggy under rc-pc with
  /// the DelayDelivery schedule; `ops` is ignored).
  std::string scenario = "workload";
  std::uint32_t procs = 4;
  std::uint32_t locs = 8;
  std::uint64_t ops = 100'000;
  std::uint64_t seed = 1;
  std::uint32_t write_percent = 50;
  /// Workload locations [0, sync_locs) are labeled-only (see
  /// sim::WorkloadSpec).
  std::uint32_t sync_locs = 0;
};

struct TraceGenResult {
  TraceHeader header;
  std::uint64_t ops = 0;
  bool livelock = false;
};

/// Builds the named operational machine.  Throws InvalidInput for an
/// unknown name.
[[nodiscard]] std::unique_ptr<sim::Machine> make_machine_by_name(
    const std::string& name, std::size_t procs, std::size_t locs);

/// Runs the configured scenario and streams the trace to `out` (header
/// line first, then one line per operation).  Deterministic per options.
/// Throws InvalidInput for unknown machine/scenario names or degenerate
/// dimensions.
TraceGenResult generate_trace(const TraceGenOptions& options,
                              std::ostream& out);

}  // namespace ssm::trace
