#include "trace/trace_export.hpp"

#include <algorithm>
#include <ostream>

#include "bakery/driver.hpp"
#include "common/rng.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/scheduler.hpp"
#include "simulate/tso_memory.hpp"
#include "simulate/workload.hpp"

namespace ssm::trace {

namespace {

TraceOp to_trace_op(const history::Operation& op) {
  TraceOp t;
  t.kind = op.kind;
  t.label = op.label;
  t.proc = op.proc;
  t.loc = op.loc;
  t.value = op.value;
  t.rmw_read = op.rmw_read;
  return t;
}

TraceGenResult generate_workload(const TraceGenOptions& options,
                                 std::ostream& out) {
  if (options.procs == 0 || options.locs == 0 || options.ops == 0) {
    throw InvalidInput("trace gen needs procs, locs and ops >= 1");
  }
  sim::WorkloadSpec spec;
  spec.procs = options.procs;
  spec.locs = options.locs;
  spec.ops_per_proc = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, options.ops / options.procs));
  spec.write_percent = options.write_percent;
  spec.sync_locs = options.sync_locs;
  Rng rng(options.seed);
  const sim::Plan plan = sim::make_plan(spec, rng);

  auto machine =
      make_machine_by_name(options.machine, options.procs, options.locs);
  sim::SchedulerOptions sched;
  sched.policy = sim::Policy::Random;
  sched.seed = options.seed;
  // Program steps plus generous headroom for internal-event deliveries;
  // hitting the cap reports livelock instead of hanging.
  sched.max_steps = options.ops * 8 + 1024;
  sim::Scheduler scheduler(*machine, sched);
  for (std::uint32_t p = 0; p < options.procs; ++p) {
    scheduler.add_program(sim::run_plan(plan[p]));
  }

  TraceGenResult result;
  result.header.procs = options.procs;
  result.header.locs = options.locs;
  result.header.machine = options.machine;
  result.header.seed = options.seed;

  TraceWriter writer(out);
  writer.write_header(result.header);
  scheduler.set_keep_history(false);  // stream, don't accumulate
  scheduler.set_op_sink([&](const history::Operation& op) {
    writer.write_op(to_trace_op(op));
    ++result.ops;
  });
  result.livelock = scheduler.run().livelock;
  writer.flush();
  return result;
}

TraceGenResult generate_bakery(const TraceGenOptions& options,
                               std::ostream& out) {
  if (options.procs < 2) {
    throw InvalidInput("bakery trace needs procs >= 2");
  }
  const bakery::MachineFactory factory = [&](std::size_t procs,
                                             std::size_t locs) {
    return make_machine_by_name(options.machine, procs, locs);
  };
  // The §5 configuration: single entry, no exit protocol (keeps the trace
  // declaratively checkable), adversarial delivery delay — the schedule
  // that exhibits the Bakery violation on rc-pc.
  sim::SchedulerOptions sched;
  sched.policy = sim::Policy::DelayDelivery;
  sched.seed = options.seed;
  sched.max_spin = 200;
  const bakery::MutexRunResult run = bakery::run_bakery(
      factory, options.procs, bakery::BakeryOptions{1, false}, sched);

  TraceGenResult result;
  result.header.procs = options.procs;
  result.header.locs =
      static_cast<std::uint32_t>(run.trace.num_locations());
  if (result.header.locs == 0) result.header.locs = 2 * options.procs + 1;
  result.header.machine = options.machine;
  result.header.seed = options.seed;
  result.livelock = run.livelock;

  TraceWriter writer(out);
  writer.write_header(result.header);
  for (const auto& op : run.trace.operations()) {
    writer.write_op(to_trace_op(op));
    ++result.ops;
  }
  writer.flush();
  return result;
}

}  // namespace

std::unique_ptr<sim::Machine> make_machine_by_name(const std::string& name,
                                                   std::size_t procs,
                                                   std::size_t locs) {
  if (name == "sc") return sim::make_sc_machine(procs, locs);
  if (name == "tso") return sim::make_tso_machine(procs, locs);
  if (name == "rc-sc") return sim::make_rc_sc_machine(procs, locs);
  if (name == "rc-pc") return sim::make_rc_pc_machine(procs, locs);
  throw InvalidInput("unknown machine \"" + name +
                     "\" (sc|tso|rc-sc|rc-pc)");
}

TraceGenResult generate_trace(const TraceGenOptions& options,
                              std::ostream& out) {
  if (options.scenario == "workload") return generate_workload(options, out);
  if (options.scenario == "bakery") return generate_bakery(options, out);
  throw InvalidInput("unknown trace scenario \"" + options.scenario +
                     "\" (workload|bakery)");
}

}  // namespace ssm::trace
