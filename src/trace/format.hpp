// Trace format v1: versioned NDJSON encoding of multi-million-operation
// execution histories (docs/TRACES.md).
//
// A trace is a header line followed by one line per operation:
//
//   {"ssm_trace":1,"procs":2,"locs":4,"machine":"sc","seed":42}
//   {"p":0,"k":"w","x":1,"v":4}
//   {"p":1,"k":"r","x":1,"v":4}
//   {"p":0,"k":"u","x":0,"v":7,"rv":0,"l":1}
//
// Op keys: "p" processor, "k" kind ("r" read, "w" write, "u" rmw), "x"
// location, "v" value (the stored value for writes/rmws, the observed
// value for reads), "rv" the rmw read-part value (required iff "k":"u"),
// "l":1 marks a labeled (synchronization) operation.  The emitter writes
// exactly this canonical key order; the parser accepts any key order
// (falling back from the canonical-order fast path to the generic JSON
// parser) but rejects unknown keys and missing required ones.
//
// Versioning: "ssm_trace" > 1 is rejected up front ("written by a newer
// build"), never half-read.  Every parse error carries the 1-based line
// number, so a corrupt multi-gigabyte trace names the offending line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace ssm::trace {

/// The version this build reads and writes.
inline constexpr std::uint32_t kTraceVersion = 1;

struct TraceHeader {
  std::uint32_t version = kTraceVersion;
  std::uint32_t procs = 0;
  std::uint32_t locs = 0;
  /// Optional provenance: the generating machine name and scheduler seed
  /// ("" / 0 for external traces).
  std::string machine;
  std::uint64_t seed = 0;
};

/// One operation as it appears on the wire.  Unlike history::Operation
/// there is no dense index or seq — those are assigned by whoever folds
/// the stream into a SystemHistory.
struct TraceOp {
  OpKind kind = OpKind::Read;
  OpLabel label = OpLabel::Ordinary;
  ProcId proc = 0;
  LocId loc = 0;
  /// Write/rmw: value stored.  Read: value observed.
  Value value = 0;
  /// Rmw only: value observed by the read part.
  Value rmw_read = 0;

  friend bool operator==(const TraceOp& a, const TraceOp& b) noexcept {
    return a.kind == b.kind && a.label == b.label && a.proc == b.proc &&
           a.loc == b.loc && a.value == b.value && a.rmw_read == b.rmw_read;
  }
};

/// Canonical single-line renderings (no trailing newline).
void append_header_line(std::string& out, const TraceHeader& h);
void append_op_line(std::string& out, const TraceOp& op);
[[nodiscard]] std::string header_line(const TraceHeader& h);
[[nodiscard]] std::string op_line(const TraceOp& op);

/// Parses one header line.  Throws InvalidInput ("trace line <line>: ...")
/// on malformed input or an unsupported future version.
[[nodiscard]] TraceHeader parse_header_line(std::string_view line,
                                            std::uint64_t line_no = 1);

/// Parses one op line (any key order; canonical order takes a fast path
/// that never allocates).  Throws InvalidInput with the line number.
[[nodiscard]] TraceOp parse_op_line(std::string_view line,
                                    std::uint64_t line_no);

/// Buffered writer: header first, then ops; bytes reach the ostream in
/// large flushes so million-op emissions are not syscall-bound.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out) : out_(out) { buf_.reserve(kFlush); }
  ~TraceWriter() { flush(); }
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write_header(const TraceHeader& h);
  void write_op(const TraceOp& op);
  void flush();

 private:
  static constexpr std::size_t kFlush = 1u << 16;
  std::ostream& out_;
  std::string buf_;
};

/// Line-oriented reader over an istream: read_header() once, then next()
/// until it returns false.  Blank lines are skipped; line numbers (1-based,
/// counting every physical line) decorate every error.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in) : in_(in) {}

  [[nodiscard]] TraceHeader read_header();
  /// Fills `op` with the next operation; false at a clean end of stream.
  [[nodiscard]] bool next(TraceOp& op);
  [[nodiscard]] std::uint64_t line_no() const noexcept { return line_no_; }

 private:
  bool next_line(std::string& line);

  std::istream& in_;
  std::uint64_t line_no_ = 0;
  std::string line_;
};

/// FNV-1a 64, the digest every trace surface uses for verdict streams
/// (same parameters as the service cache's checksum).
[[nodiscard]] constexpr std::uint64_t fnv1a64_init() noexcept {
  return 14695981039346656037ull;
}
[[nodiscard]] constexpr std::uint64_t fnv1a64_step(
    std::uint64_t h, std::string_view s) noexcept {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}
[[nodiscard]] std::string hex16(std::uint64_t v);

}  // namespace ssm::trace
