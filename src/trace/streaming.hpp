// Streaming trace checker: online, bounded-memory verification of
// multi-million-operation histories (docs/TRACES.md).
//
// The whole-history engine decides "∃ legal views of H" for litmus-scale
// H.  A production trace has millions of operations, so the stream is cut
// into disjoint WINDOWS of at most `window_ops` operations and each window
// is checked as a standalone history against the committed prefix:
//
//   * When a window closes, its operations RETIRE: the latest write per
//     location becomes the committed value (the next window's "initial"
//     value), and every overwritten value moves to a bounded per-location
//     ring of recently retired values.  Resident state is therefore
//     O(window_ops + locs * retired_ring) regardless of trace length —
//     the `trace.window_ops` gauge never exceeds the configured cap.
//
//   * Reads are REBASED against that commitment: a read of the committed
//     value becomes a read of the initial value 0 inside the window's
//     standalone history; a read of a value written exactly once
//     in-window (and by nothing retired) wires up normally; a read of a
//     retired (ring) value is legal under weak models but not
//     expressible in a window-local history, so the operation is dropped
//     and the window's OK degrades to INCONCLUSIVE; a read of a value
//     that has aged out of the ring entirely ("ancient") does the same —
//     this is the INCONCLUSIVE-on-window-overflow policy.  A read whose
//     source is AMBIGUOUS — its value is both written in-window and
//     retired (committed/ring), or written more than once in-window — is
//     dropped the same way: wiring it to either candidate source could
//     manufacture a violation out of a legal trace.  A read of a value
//     provably never written to its location (possible only while the
//     ring has evicted nothing for that location) is a malformed trace
//     and throws.  Dropping operations only removes constraints, so a
//     VIOLATION found on the remaining operations stays definite; only
//     OK verdicts are downgraded.
//
//   * Write values are RENUMBERED window-locally when they collide with
//     the whole-history engine's distinct-nonzero-value requirement
//     (duplicate values in one window, writes of 0): the offending write
//     instances get fresh deterministic values so the window stays
//     checkable, the retirement state keeps the original trace values,
//     and an exported litmus test records the reverse map in `origin`.
//
//   * Each window check runs three stages, cheapest first: (1) per-
//     location coherence decomposition — the model checks each single-
//     location projection (projection is admission-monotone: dropping
//     operations only removes constraints, so a forbidden projection is a
//     definite violation), sharded across the global ThreadPool; (2) an
//     arrival-order witness fast path — the window's candidate views are
//     the arrival order itself, handed to Model::verify_witness (for SC
//     traces under SC this certifies the window in linear time, no
//     search); (3) the full budgeted Model::check, whose budget
//     exhaustion surfaces as INCONCLUSIVE, never a wrong answer.
//
//   * A violating window is serialized as a replayable litmus test
//     (litmus::emit) carrying the expectation that `model` forbids it, so
//     every streaming violation is re-checkable offline by the whole-
//     history engine and the independent witness verifier.
//
// Verdicts stream as one JSON line per window (deterministic — no timing
// fields) plus a trailing summary carrying an FNV-1a digest of the
// verdict lines; two runs over the same trace produce identical digests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "checker/budget.hpp"
#include "history/system_history.hpp"
#include "models/model.hpp"
#include "trace/format.hpp"

namespace ssm::trace {

struct StreamOptions {
  /// Model the stream is checked against.
  std::string model = "SC";
  /// Window size cap in operations (the bounded-memory knob).
  std::size_t window_ops = 256;
  /// Retired values kept per location; reads of older values become
  /// "ancient" INCONCLUSIVEs instead of being resolvable.
  std::size_t retired_ring = 64;
  /// Budget for one window's full-history fallback check (per window, so
  /// a pathological window degrades to INCONCLUSIVE instead of stalling
  /// the stream).  0/0 = unlimited.
  checker::BudgetSpec window_budget{200'000, 0};
  /// Per-location coherence decomposition pre-pass (stage 1).
  bool per_location = true;
  /// Shard the per-location checks across the global ThreadPool.
  bool parallel = true;
};

struct WindowVerdict {
  enum class Status : std::uint8_t { Ok, Violation, Inconclusive };
  std::uint64_t window = 0;  ///< 0-based window index
  std::uint64_t first = 0;   ///< global position of the first op
  std::uint64_t last = 0;    ///< global position of the last op
  std::size_t ops = 0;       ///< ops in the window (before drops)
  Status status = Status::Ok;
  std::string note;    ///< why inconclusive / which projection violated
  std::string litmus;  ///< replayable litmus DSL when status == Violation
};

/// The deterministic single-line JSON rendering of one verdict (no
/// trailing newline) — the unit the stream digest hashes.
[[nodiscard]] std::string verdict_line(const WindowVerdict& v);

struct StreamSummary {
  std::uint64_t ops = 0;
  std::uint64_t windows = 0;
  std::uint64_t ok = 0;
  std::uint64_t violations = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t dropped_ops = 0;       ///< stale/ancient reads retired early
  std::uint64_t ring_evictions = 0;    ///< values aged out of the rings
  std::uint64_t digest = fnv1a64_init();  ///< FNV-1a over verdict lines

  [[nodiscard]] std::string to_json_line() const;
};

/// Online checker: feed() operations as they arrive; every completed
/// window invokes the verdict sink.  finish() flushes the final partial
/// window and returns the summary.  Not thread-safe (one stream, one
/// feeder); the internal per-location fan-out uses the global pool.
class StreamingChecker {
 public:
  using VerdictSink = std::function<void(const WindowVerdict&)>;

  /// Throws InvalidInput for an unknown model or a zero window size.
  StreamingChecker(const TraceHeader& header, StreamOptions options);
  ~StreamingChecker();
  StreamingChecker(const StreamingChecker&) = delete;
  StreamingChecker& operator=(const StreamingChecker&) = delete;

  void set_verdict_sink(VerdictSink sink) { sink_ = std::move(sink); }

  /// Ingests one operation (throws InvalidInput on out-of-range proc/loc
  /// or a read of a provably-never-written value).  May close a window
  /// and emit its verdict through the sink.
  void feed(const TraceOp& op);

  /// Closes the final partial window and returns the stream summary.
  [[nodiscard]] StreamSummary finish();

  [[nodiscard]] const StreamSummary& summary() const noexcept {
    return summary_;
  }

 private:
  void close_window();
  /// Decides the window verdict for the rebased standalone history.
  void check_window(const history::SystemHistory& hist, std::size_t dropped,
                    const std::string& drop_note,
                    const std::string& remap_note, WindowVerdict& out);
  [[nodiscard]] std::string window_litmus_name(std::uint64_t window) const;

  TraceHeader header_;
  StreamOptions options_;
  models::ModelPtr model_;
  /// Model demonstrably verifies certificates (see probe in the .cpp);
  /// gates the arrival-order fast path so a no-op verifier can never
  /// self-certify a window.
  bool fast_path_ = false;
  VerdictSink sink_;

  std::vector<TraceOp> window_;    ///< buffered ops of the open window
  std::uint64_t next_pos_ = 0;     ///< global position of the next op
  std::uint64_t window_first_ = 0;
  std::vector<Value> committed_;       ///< per-loc latest retired write
  std::vector<std::deque<Value>> ring_;  ///< per-loc recently retired values
  std::vector<std::uint64_t> evicted_;   ///< per-loc ring evictions
  StreamSummary summary_;
  bool finished_ = false;
};

}  // namespace ssm::trace
