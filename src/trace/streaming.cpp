#include "trace/streaming.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "checker/verdict.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "history/subhistory.hpp"
#include "litmus/emit.hpp"
#include "litmus/test.hpp"
#include "models/registry.hpp"
#include "order/coherence.hpp"
#include "relation/bitset.hpp"

namespace ssm::trace {

namespace json = common::json;
namespace metrics = common::metrics;

namespace {

/// Cached instrument references (docs/OBSERVABILITY.md: registration once
/// per call site, updates lock-free).
struct TraceMetrics {
  metrics::Counter& ops;
  metrics::Counter& windows;
  metrics::Counter& violations;
  metrics::Counter& inconclusive;
  metrics::Counter& dropped;
  metrics::Counter& evictions;
  metrics::Gauge& window_ops;
  metrics::Histogram& check_us;

  static TraceMetrics& get() {
    static TraceMetrics m{
        metrics::Registry::global().counter("trace.ops"),
        metrics::Registry::global().counter("trace.windows"),
        metrics::Registry::global().counter("trace.violations"),
        metrics::Registry::global().counter("trace.inconclusive"),
        metrics::Registry::global().counter("trace.dropped_ops"),
        metrics::Registry::global().counter("trace.retired_evictions"),
        metrics::Registry::global().gauge("trace.window_ops"),
        metrics::Registry::global().histogram("trace.window_check_us"),
    };
    return m;
  }
};

/// Model::verify_witness's base implementation accepts everything (models
/// without a verifier exist only outside the registry, but a stream must
/// not bet soundness on that).  Probe the model once with a certificate
/// that every correct verifier rejects — a view placing a read of value 1
/// before the only write of 1 — and enable the arrival-order fast path
/// only when the model demonstrably verifies.
bool probe_verifier(const models::Model& model) {
  history::SystemHistory h(history::SymbolTable::canonical(1, 1));
  history::Operation w;
  w.kind = OpKind::Write;
  w.value = 1;
  h.append(w);
  history::Operation r;
  r.kind = OpKind::Read;
  r.value = 1;
  h.append(r);
  checker::Verdict v = checker::Verdict::yes();
  v.views.assign(1, checker::View{1, 0});
  v.coherence = order::CoherenceOrder(2, {{0}});
  try {
    return model.verify_witness(h, v).has_value();
  } catch (const std::exception&) {
    return true;  // it inspects certificates; bad candidates just fail
  }
}

/// The arrival-order certificate: every processor views the full window
/// in arrival order, coherence is per-location write arrival order, the
/// labeled order is label arrival order.  For a trace recorded from a
/// machine whose memory order IS the arrival order (the SC machine), the
/// model's own verifier certifies this in (near-)linear time and the
/// exponential search never runs.
checker::Verdict arrival_witness(const history::SystemHistory& h) {
  checker::Verdict v = checker::Verdict::yes();
  checker::View all(h.size());
  for (OpIndex i = 0; i < h.size(); ++i) all[i] = i;
  v.views.assign(h.num_processors(), all);
  std::vector<std::vector<OpIndex>> per_loc(h.num_locations());
  checker::View labeled;
  for (const auto& op : h.operations()) {
    if (op.is_write()) per_loc[op.loc].push_back(op.index);
    if (op.is_labeled()) labeled.push_back(op.index);
  }
  v.coherence = order::CoherenceOrder(h.size(), std::move(per_loc));
  v.labeled_order = std::move(labeled);
  return v;
}

const char* status_str(WindowVerdict::Status s) {
  switch (s) {
    case WindowVerdict::Status::Ok:
      return "ok";
    case WindowVerdict::Status::Violation:
      return "violation";
    case WindowVerdict::Status::Inconclusive:
      return "inconclusive";
  }
  return "inconclusive";
}

}  // namespace

std::string verdict_line(const WindowVerdict& v) {
  std::string out = "{\"window\":";
  out += std::to_string(v.window);
  out += ",\"first\":";
  out += std::to_string(v.first);
  out += ",\"last\":";
  out += std::to_string(v.last);
  out += ",\"ops\":";
  out += std::to_string(v.ops);
  out += ",\"status\":\"";
  out += status_str(v.status);
  out += '"';
  if (!v.note.empty()) {
    out += ",\"note\":";
    json::append_quoted(out, v.note);
  }
  if (!v.litmus.empty()) {
    out += ",\"litmus\":";
    json::append_quoted(out, v.litmus);
  }
  out += '}';
  return out;
}

std::string StreamSummary::to_json_line() const {
  std::string out = "{\"ops\":";
  out += std::to_string(ops);
  out += ",\"windows\":";
  out += std::to_string(windows);
  out += ",\"ok\":";
  out += std::to_string(ok);
  out += ",\"violations\":";
  out += std::to_string(violations);
  out += ",\"inconclusive\":";
  out += std::to_string(inconclusive);
  out += ",\"dropped_ops\":";
  out += std::to_string(dropped_ops);
  out += ",\"ring_evictions\":";
  out += std::to_string(ring_evictions);
  out += ",\"digest\":\"";
  out += hex16(digest);
  out += "\"}";
  return out;
}

StreamingChecker::StreamingChecker(const TraceHeader& header,
                                   StreamOptions options)
    : header_(header), options_(std::move(options)) {
  if (options_.window_ops == 0) {
    throw InvalidInput("trace window must hold at least one op");
  }
  if (header_.procs == 0 || header_.locs == 0) {
    throw InvalidInput("trace header must declare procs and locs >= 1");
  }
  model_ = models::make_model(options_.model);
  fast_path_ = probe_verifier(*model_);
  committed_.assign(header_.locs, 0);
  ring_.assign(header_.locs, {});
  evicted_.assign(header_.locs, 0);
  TraceMetrics::get().window_ops.set(0);
}

StreamingChecker::~StreamingChecker() = default;

void StreamingChecker::feed(const TraceOp& op) {
  if (finished_) throw InvalidInput("trace stream already finished");
  if (op.proc >= header_.procs) {
    throw InvalidInput("trace op proc " + std::to_string(op.proc) +
                       " out of range (header declares " +
                       std::to_string(header_.procs) + " procs)");
  }
  if (op.loc >= header_.locs) {
    throw InvalidInput("trace op loc " + std::to_string(op.loc) +
                       " out of range (header declares " +
                       std::to_string(header_.locs) + " locs)");
  }
  window_.push_back(op);
  ++next_pos_;
  ++summary_.ops;
  auto& m = TraceMetrics::get();
  m.ops.add(1);
  m.window_ops.set(static_cast<std::int64_t>(window_.size()));
  if (window_.size() >= options_.window_ops) close_window();
}

StreamSummary StreamingChecker::finish() {
  if (!finished_) {
    if (!window_.empty()) close_window();
    finished_ = true;
  }
  return summary_;
}

std::string StreamingChecker::window_litmus_name(std::uint64_t window) const {
  return "trace_window_" + std::to_string(window);
}

void StreamingChecker::close_window() {
  const auto t0 = std::chrono::steady_clock::now();
  auto& m = TraceMetrics::get();

  WindowVerdict wv;
  wv.window = summary_.windows;
  wv.first = window_first_;
  wv.last = window_first_ + window_.size() - 1;
  wv.ops = window_.size();

  // Per-location in-window write values: ordered (for the retirement
  // commit) and counted (for read classification — a value written more
  // than once in one window makes reads of it ambiguous).
  std::vector<std::vector<Value>> loc_writes(header_.locs);
  std::vector<std::unordered_map<Value, std::size_t>> loc_count(header_.locs);
  for (const TraceOp& op : window_) {
    if (op.kind == OpKind::Write || op.kind == OpKind::ReadModifyWrite) {
      loc_writes[op.loc].push_back(op.value);
      ++loc_count[op.loc][op.value];
    }
  }

  // Classify every read against the committed prefix.  Outcomes: wire
  // (value written exactly once in-window and by nothing retired), rebase
  // (value == committed -> initial 0), drop (value retired to the ring or
  // aged out of it entirely, or its in-window source is ambiguous).  A
  // read is ambiguous — and must drop, never wire — when its value is
  // both written in-window AND retired (committed or ring): wiring it to
  // the in-window write when it actually observed the old state would
  // manufacture a violation out of a legal trace (e.g. committed x=5;
  // window: r x=5 then w x=5).  The same holds for a value written more
  // than once in-window (which write it observed is undecidable).  A
  // dropped rmw removes its store from the window, so reads of that store
  // drop too (the set grows monotonically and ops are scanned in arrival
  // order).  An unknown value while the location's ring has never evicted
  // is provably never written: malformed trace.
  enum class ReadFate : std::uint8_t { Wire, Rebase, Drop };
  std::vector<std::unordered_set<Value>> dropped_store(header_.locs);
  std::vector<const char*> why(window_.size(), nullptr);
  std::size_t dropped = 0;
  std::string drop_note;
  const auto classify = [&](LocId loc, Value v, std::uint64_t pos,
                            const char*& reason) -> ReadFate {
    const auto& ring = ring_[loc];
    const bool retired =
        v == committed_[loc] ||
        std::find(ring.begin(), ring.end(), v) != ring.end();
    const auto it = loc_count[loc].find(v);
    if (it != loc_count[loc].end()) {  // written somewhere in this window
      if (retired) {
        reason = "value both retired and re-written in-window (ambiguous)";
        return ReadFate::Drop;
      }
      if (it->second > 1) {
        reason = "value written more than once in-window (ambiguous)";
        return ReadFate::Drop;
      }
      if (dropped_store[loc].contains(v)) {
        reason = "its only in-window writer was dropped";
        return ReadFate::Drop;
      }
      return ReadFate::Wire;
    }
    if (v == committed_[loc]) return ReadFate::Rebase;
    if (retired) {
      reason = "value retired beyond the window horizon";
      return ReadFate::Drop;
    }
    if (evicted_[loc] != 0) {
      reason = "value may have aged out of the retired ring";
      return ReadFate::Drop;
    }
    throw InvalidInput(
        "trace op " + std::to_string(pos) + ": read of value " +
        std::to_string(v) + " at location " + std::to_string(loc) +
        " which was never written (malformed trace)");
  };

  std::vector<ReadFate> fate(window_.size(), ReadFate::Wire);
  // Pass 1: rmw read parts decide whole-rmw drops (store values ripple).
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const TraceOp& op = window_[i];
    if (op.kind != OpKind::ReadModifyWrite) continue;
    fate[i] = classify(op.loc, op.rmw_read, window_first_ + i, why[i]);
    if (fate[i] == ReadFate::Drop) dropped_store[op.loc].insert(op.value);
  }
  // Pass 2: plain reads (now aware of every dropped rmw store).
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const TraceOp& op = window_[i];
    if (op.kind != OpKind::Read) continue;
    fate[i] = classify(op.loc, op.value, window_first_ + i, why[i]);
  }

  // Window-local value renumbering.  The standalone window history must
  // satisfy SystemHistory::validate() — per-location distinct, nonzero
  // write values — but real traces reuse values freely (flag toggles,
  // zeroed slots).  Each offending write instance is renumbered to a
  // fresh window-local value (deterministically: counting up from above
  // every value the location uses this window), so such windows stay
  // checkable instead of degrading to INCONCLUSIVE.  Reads of a uniquely
  // written value wire to its renumbered value; reads of multiply
  // written values were already dropped above.  Retirement (below) keeps
  // the original trace values — renumbering is invisible outside the
  // window's standalone history and its litmus export, where the
  // reverse map is recorded in `origin`.
  std::vector<Value> next_fresh(header_.locs, 1);
  for (LocId loc = 0; loc < header_.locs; ++loc) {
    for (const Value v : loc_writes[loc]) {
      if (v >= next_fresh[loc]) next_fresh[loc] = v + 1;
    }
  }
  const auto fresh_value = [&](LocId loc) {
    Value f = next_fresh[loc];
    while (f == 0 || loc_count[loc].contains(f)) ++f;  // wrap guard
    next_fresh[loc] = f + 1;
    return f;
  };
  std::vector<Value> wvalue(window_.size(), 0);
  std::vector<std::unordered_map<Value, Value>> wired(header_.locs);
  std::string remap_note;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const TraceOp& op = window_[i];
    if (op.kind != OpKind::Write && op.kind != OpKind::ReadModifyWrite) {
      continue;
    }
    if (op.kind == OpKind::ReadModifyWrite && fate[i] == ReadFate::Drop) {
      continue;  // the whole rmw is out of the window history
    }
    Value v = op.value;
    if (v == 0 || loc_count[op.loc].at(v) > 1) {
      v = fresh_value(op.loc);
      if (!remap_note.empty()) remap_note += ", ";
      remap_note += "op " + std::to_string(window_first_ + i) + " x" +
                    std::to_string(op.loc) + " " +
                    std::to_string(op.value) + "->" + std::to_string(v);
    }
    wvalue[i] = v;
    if (loc_count[op.loc].at(op.value) == 1) wired[op.loc][op.value] = v;
  }

  // Build the window as a standalone history, rebased so the committed
  // prefix reads as the initial state.
  history::SystemHistory hist(
      history::SymbolTable::canonical(header_.procs, header_.locs));
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const TraceOp& op = window_[i];
    if (op.kind != OpKind::Write && fate[i] == ReadFate::Drop) {
      ++dropped;
      if (drop_note.empty()) {
        drop_note = "dropped " + std::string(op.kind == OpKind::Read
                                                 ? "read"
                                                 : "rmw") +
                    " at op " + std::to_string(window_first_ + i) +
                    (why[i] != nullptr ? ": " + std::string(why[i]) : "");
      }
      continue;
    }
    history::Operation h;
    h.kind = op.kind;
    h.label = op.label;
    h.proc = op.proc;
    h.loc = op.loc;
    if (op.kind == OpKind::Read) {
      h.value =
          fate[i] == ReadFate::Rebase ? 0 : wired[op.loc].at(op.value);
    } else {
      h.value = wvalue[i];
      if (op.kind == OpKind::ReadModifyWrite) {
        h.rmw_read =
            fate[i] == ReadFate::Rebase ? 0 : wired[op.loc].at(op.rmw_read);
      }
    }
    hist.append(h);
  }

  check_window(hist, dropped, drop_note, remap_note, wv);

  // Retire the window: the last write per location becomes the committed
  // value; the previous committed value (the initial 0 included) and all
  // overwritten in-window values move to the bounded ring.  Dropped rmw
  // stores retire too — they happened in the real trace.
  for (LocId loc = 0; loc < header_.locs; ++loc) {
    const auto& ws = loc_writes[loc];
    if (ws.empty()) continue;
    auto& ring = ring_[loc];
    ring.push_back(committed_[loc]);
    for (std::size_t i = 0; i + 1 < ws.size(); ++i) ring.push_back(ws[i]);
    committed_[loc] = ws.back();
    while (ring.size() > options_.retired_ring) {
      ring.pop_front();
      ++evicted_[loc];
      ++summary_.ring_evictions;
      m.evictions.add(1);
    }
  }

  ++summary_.windows;
  summary_.dropped_ops += dropped;
  m.windows.add(1);
  m.dropped.add(dropped);
  switch (wv.status) {
    case WindowVerdict::Status::Ok:
      ++summary_.ok;
      break;
    case WindowVerdict::Status::Violation:
      ++summary_.violations;
      m.violations.add(1);
      break;
    case WindowVerdict::Status::Inconclusive:
      ++summary_.inconclusive;
      m.inconclusive.add(1);
      break;
  }
  summary_.digest = fnv1a64_step(summary_.digest, verdict_line(wv));
  summary_.digest = fnv1a64_step(summary_.digest, "\n");

  window_.clear();
  window_first_ = next_pos_;
  m.window_ops.set(0);
  m.check_us.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));

  if (sink_) sink_(wv);
}

void StreamingChecker::check_window(const history::SystemHistory& hist,
                                    std::size_t dropped,
                                    const std::string& drop_note,
                                    const std::string& remap_note,
                                    WindowVerdict& out) {
  const auto inconclusive = [&](std::string note) {
    out.status = WindowVerdict::Status::Inconclusive;
    out.note = std::move(note);
  };
  const auto downgrade_ok = [&]() {
    // Dropped ops only ever remove constraints, so a VIOLATION stays
    // definite — but an OK over the remaining ops proves nothing about
    // the ops we could not express.
    if (dropped != 0) {
      inconclusive(drop_note + " (" + std::to_string(dropped) +
                   " ops dropped; OK downgraded)");
    } else {
      out.status = WindowVerdict::Status::Ok;
    }
  };

  if (hist.empty()) {
    downgrade_ok();
    return;
  }
  if (const auto err = hist.validate()) {
    inconclusive("window not independently checkable: " + *err);
    return;
  }

  // Stage 1 — arrival-order certificate, verified by the model itself.
  if (fast_path_) {
    try {
      if (!model_->verify_witness(hist, arrival_witness(hist))) {
        downgrade_ok();
        return;
      }
    } catch (const std::exception&) {
      // candidate malformed for this model's certificate shape: fall back
    }
  }

  // Stage 2 — per-location coherence decomposition.  The single-location
  // projection drops operations, which is admission-monotone (it only
  // removes constraints), so a model that rejects a projection definitely
  // rejects the window — and the replayable litmus shrinks to one
  // location.  Locations shard across the global pool.
  if (options_.per_location && hist.num_locations() > 1) {
    const std::size_t locs = hist.num_locations();
    std::vector<std::int8_t> verdicts(locs, 1);  // 1 ok, 0 no, -1 undecided
    std::vector<history::SubHistory> subs(locs);
    const auto check_loc = [&](std::size_t loc) {
      rel::DynBitset mask(hist.size());
      std::size_t n = 0;
      for (const auto& op : hist.operations()) {
        if (op.loc == loc) {
          mask.set(op.index);
          ++n;
        }
      }
      if (n < 2) return;  // single op: trivially admitted by every model
      subs[loc] = history::extract(hist, mask);
      checker::SearchBudget budget(options_.window_budget);
      checker::BudgetScope scope(&budget);
      try {
        const checker::Verdict v = model_->check(subs[loc].sub);
        verdicts[loc] =
            v.inconclusive ? std::int8_t{-1} : std::int8_t{v.allowed};
      } catch (const std::exception&) {
        verdicts[loc] = -1;
      }
    };
    if (options_.parallel) {
      common::ThreadPool::global().parallel_for(locs, check_loc);
    } else {
      for (std::size_t loc = 0; loc < locs; ++loc) check_loc(loc);
    }
    for (std::size_t loc = 0; loc < locs; ++loc) {
      if (verdicts[loc] != 0) continue;
      out.status = WindowVerdict::Status::Violation;
      out.note = "location " +
                 subs[loc].sub.symbols().location_name(
                     static_cast<LocId>(loc)) +
                 " projection inadmissible under " +
                 std::string(model_->name());
      litmus::LitmusTest t;
      t.name = window_litmus_name(out.window);
      t.origin = "trace window " + std::to_string(out.window) + " ops [" +
                 std::to_string(out.first) + "," + std::to_string(out.last) +
                 "], projection to one location";
      if (!remap_note.empty()) t.origin += "; renumbered: " + remap_note;
      t.hist = subs[loc].sub;
      t.expectations[std::string(model_->name())] = false;
      out.litmus = litmus::emit(t);
      return;
    }
  }

  // Stage 3 — the full budgeted whole-window check.
  checker::SearchBudget budget(options_.window_budget);
  checker::BudgetScope scope(&budget);
  checker::Verdict v;
  try {
    v = model_->check(hist);
  } catch (const std::exception& e) {
    inconclusive(std::string("window check failed: ") + e.what());
    return;
  }
  if (v.inconclusive) {
    inconclusive(v.note.empty() ? "window check budget exhausted" : v.note);
    return;
  }
  if (v.allowed) {
    downgrade_ok();
    return;
  }
  out.status = WindowVerdict::Status::Violation;
  out.note = v.note.empty()
                 ? "window inadmissible under " + std::string(model_->name())
                 : v.note;
  litmus::LitmusTest t;
  t.name = window_litmus_name(out.window);
  t.origin = "trace window " + std::to_string(out.window) + " ops [" +
             std::to_string(out.first) + "," + std::to_string(out.last) + "]";
  if (!remap_note.empty()) t.origin += "; renumbered: " + remap_note;
  t.hist = hist;
  t.expectations[std::string(model_->name())] = false;
  out.litmus = litmus::emit(t);
}

}  // namespace ssm::trace
