#include "trace/format.hpp"

#include <charconv>
#include <istream>
#include <limits>
#include <ostream>

#include "common/json.hpp"

namespace ssm::trace {

namespace json = common::json;

namespace {

[[noreturn]] void fail(std::uint64_t line_no, const std::string& what) {
  throw InvalidInput("trace line " + std::to_string(line_no) + ": " + what);
}

void append_i64(std::string& out, std::int64_t v) { out += std::to_string(v); }

/// Fast-path scanner for the exact canonical key order the emitter
/// produces.  Returns false (without touching `op`'s validity) on any
/// deviation; the caller falls back to the generic JSON parser.
bool fast_parse_op(std::string_view s, TraceOp& op) noexcept {
  std::size_t i = 0;
  const auto lit = [&](std::string_view t) noexcept {
    if (s.size() - i < t.size() || s.compare(i, t.size(), t) != 0) {
      return false;
    }
    i += t.size();
    return true;
  };
  const auto num = [&](std::int64_t& out) noexcept {
    const char* begin = s.data() + i;
    const char* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr == begin) return false;
    i += static_cast<std::size_t>(ptr - begin);
    return true;
  };
  std::int64_t p = 0;
  std::int64_t x = 0;
  std::int64_t v = 0;
  if (!lit("{\"p\":") || !num(p) || !lit(",\"k\":\"")) return false;
  if (i >= s.size()) return false;
  const char k = s[i++];
  if (k != 'r' && k != 'w' && k != 'u') return false;
  if (!lit("\",\"x\":") || !num(x) || !lit(",\"v\":") || !num(v)) return false;
  std::int64_t rv = 0;
  if (k == 'u' && (!lit(",\"rv\":") || !num(rv))) return false;
  bool labeled = false;
  if (i < s.size() && s[i] == ',') {
    if (!lit(",\"l\":1")) return false;
    labeled = true;
  }
  if (!lit("}") || i != s.size()) return false;
  if (p < 0 || p > std::numeric_limits<ProcId>::max()) return false;
  if (x < 0 || x > std::numeric_limits<LocId>::max()) return false;
  op.proc = static_cast<ProcId>(p);
  op.loc = static_cast<LocId>(x);
  op.kind = k == 'r' ? OpKind::Read
                     : (k == 'w' ? OpKind::Write : OpKind::ReadModifyWrite);
  op.value = v;
  op.rmw_read = rv;
  op.label = labeled ? OpLabel::Labeled : OpLabel::Ordinary;
  return true;
}

/// Number → Value (int64).  Exact through as_u64 for the non-negative
/// range (the emitter's values); negative literals take the double path.
Value num_value(const json::Value& v) {
  try {
    const std::uint64_t u = v.as_u64();
    if (u <= static_cast<std::uint64_t>(std::numeric_limits<Value>::max())) {
      return static_cast<Value>(u);
    }
  } catch (const InvalidInput&) {
  }
  return static_cast<Value>(v.as_double());
}

}  // namespace

void append_header_line(std::string& out, const TraceHeader& h) {
  out += "{\"ssm_trace\":";
  out += std::to_string(h.version);
  out += ",\"procs\":";
  out += std::to_string(h.procs);
  out += ",\"locs\":";
  out += std::to_string(h.locs);
  if (!h.machine.empty()) {
    out += ",\"machine\":";
    json::append_quoted(out, h.machine);
    out += ",\"seed\":";
    out += std::to_string(h.seed);
  }
  out += '}';
}

void append_op_line(std::string& out, const TraceOp& op) {
  out += "{\"p\":";
  out += std::to_string(op.proc);
  out += ",\"k\":\"";
  out += op.kind == OpKind::Read
             ? 'r'
             : (op.kind == OpKind::Write ? 'w' : 'u');
  out += "\",\"x\":";
  out += std::to_string(op.loc);
  out += ",\"v\":";
  append_i64(out, op.value);
  if (op.kind == OpKind::ReadModifyWrite) {
    out += ",\"rv\":";
    append_i64(out, op.rmw_read);
  }
  if (op.label == OpLabel::Labeled) out += ",\"l\":1";
  out += '}';
}

std::string header_line(const TraceHeader& h) {
  std::string out;
  append_header_line(out, h);
  return out;
}

std::string op_line(const TraceOp& op) {
  std::string out;
  append_op_line(out, op);
  return out;
}

TraceHeader parse_header_line(std::string_view line, std::uint64_t line_no) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const InvalidInput& e) {
    fail(line_no, std::string("header is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) fail(line_no, "header must be a JSON object");
  const json::Value* ver = doc.find("ssm_trace");
  if (ver == nullptr) {
    fail(line_no, "missing \"ssm_trace\" version field (not a trace file?)");
  }
  TraceHeader h;
  try {
    const std::uint64_t version = ver->as_u64();
    if (version == 0) fail(line_no, "bad version 0");
    if (version > kTraceVersion) {
      fail(line_no, "unsupported trace version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kTraceVersion) +
                        "; the trace was written by a newer build)");
    }
    h.version = static_cast<std::uint32_t>(version);
    h.procs = static_cast<std::uint32_t>(doc.at("procs").as_u64());
    h.locs = static_cast<std::uint32_t>(doc.at("locs").as_u64());
    if (h.procs == 0 || h.locs == 0) {
      fail(line_no, "procs and locs must be >= 1");
    }
    if (h.procs > std::numeric_limits<ProcId>::max() ||
        h.locs > std::numeric_limits<LocId>::max()) {
      fail(line_no, "procs/locs out of range");
    }
    for (const auto& [key, value] : doc.members()) {
      if (key == "ssm_trace" || key == "procs" || key == "locs") continue;
      if (key == "machine") {
        h.machine = value.as_string();
      } else if (key == "seed") {
        h.seed = value.as_u64();
      } else {
        fail(line_no, "unknown header field \"" + key + "\"");
      }
    }
  } catch (const InvalidInput& e) {
    const std::string_view what = e.what();
    if (what.rfind("trace line", 0) == 0) throw;
    fail(line_no, e.what());
  }
  return h;
}

TraceOp parse_op_line(std::string_view line, std::uint64_t line_no) {
  TraceOp op;
  if (fast_parse_op(line, op)) return op;
  // Generic path: any key order, same field set, full diagnostics.
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const InvalidInput& e) {
    fail(line_no, std::string("op is not valid JSON: ") + e.what());
  }
  if (!doc.is_object()) fail(line_no, "op must be a JSON object");
  bool have_p = false;
  bool have_k = false;
  bool have_x = false;
  bool have_v = false;
  bool have_rv = false;
  try {
    for (const auto& [key, value] : doc.members()) {
      if (key == "p") {
        const std::uint64_t p = value.as_u64();
        if (p > std::numeric_limits<ProcId>::max()) {
          fail(line_no, "\"p\" out of range");
        }
        op.proc = static_cast<ProcId>(p);
        have_p = true;
      } else if (key == "k") {
        const std::string& k = value.as_string();
        if (k == "r") {
          op.kind = OpKind::Read;
        } else if (k == "w") {
          op.kind = OpKind::Write;
        } else if (k == "u") {
          op.kind = OpKind::ReadModifyWrite;
        } else {
          fail(line_no, "unknown op kind \"" + k + "\" (r|w|u)");
        }
        have_k = true;
      } else if (key == "x") {
        const std::uint64_t x = value.as_u64();
        if (x > std::numeric_limits<LocId>::max()) {
          fail(line_no, "\"x\" out of range");
        }
        op.loc = static_cast<LocId>(x);
        have_x = true;
      } else if (key == "v") {
        op.value = num_value(value);
        have_v = true;
      } else if (key == "rv") {
        op.rmw_read = num_value(value);
        have_rv = true;
      } else if (key == "l") {
        op.label =
            value.as_u64() != 0 ? OpLabel::Labeled : OpLabel::Ordinary;
      } else {
        fail(line_no, "unknown op field \"" + key + "\"");
      }
    }
  } catch (const InvalidInput& e) {
    const std::string_view what = e.what();
    if (what.rfind("trace line", 0) == 0) throw;
    fail(line_no, e.what());
  }
  if (!have_p || !have_k || !have_x || !have_v) {
    fail(line_no, "op missing required field (need p, k, x, v)");
  }
  if ((op.kind == OpKind::ReadModifyWrite) != have_rv) {
    fail(line_no, have_rv ? "\"rv\" only valid for rmw ops (k:\"u\")"
                          : "rmw op missing \"rv\"");
  }
  return op;
}

void TraceWriter::write_header(const TraceHeader& h) {
  append_header_line(buf_, h);
  buf_ += '\n';
  if (buf_.size() >= kFlush) flush();
}

void TraceWriter::write_op(const TraceOp& op) {
  append_op_line(buf_, op);
  buf_ += '\n';
  if (buf_.size() >= kFlush) flush();
}

void TraceWriter::flush() {
  if (buf_.empty()) return;
  out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  buf_.clear();
}

bool TraceReader::next_line(std::string& line) {
  while (std::getline(in_, line)) {
    ++line_no_;
    if (!line.empty()) return true;  // blank lines are tolerated, skipped
  }
  return false;
}

TraceHeader TraceReader::read_header() {
  if (!next_line(line_)) {
    throw InvalidInput("trace line 1: empty input (expected a header line)");
  }
  return parse_header_line(line_, line_no_);
}

bool TraceReader::next(TraceOp& op) {
  if (!next_line(line_)) {
    if (in_.bad()) {
      throw InvalidInput("trace line " + std::to_string(line_no_ + 1) +
                         ": read error");
    }
    return false;
  }
  op = parse_op_line(line_, line_no_);
  return true;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace ssm::trace
