#include "bakery/dekker.hpp"

namespace ssm::bakery {

sim::Program dekker_process(DekkerLayout layout, std::uint32_t i,
                            DekkerOptions options) {
  const OpLabel sync =
      options.labeled_sync ? OpLabel::Labeled : OpLabel::Ordinary;
  const std::uint32_t other = 1 - i;
  const Value my_token = static_cast<Value>(i) + 1;
  const Value other_token = static_cast<Value>(other) + 1;
  for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
    co_await sim::write(layout.flag(i), 1, sync);
    while (true) {
      const Value other_flag = co_await sim::read(layout.flag(other), sync);
      if (other_flag != 1) break;
      const Value turn = co_await sim::read(layout.turn(), sync);
      // turn == 0 initially: process 0 has priority.
      const bool my_turn =
          turn == my_token || (turn == 0 && i == 0);
      if (!my_turn) {
        // Back off: lower the flag until the other process cedes the turn.
        co_await sim::write(layout.flag(i), 2, sync);
        while (true) {
          const Value t = co_await sim::read(layout.turn(), sync);
          if (t == my_token || (t == 0 && i == 0)) break;
        }
        co_await sim::write(layout.flag(i), 1, sync);
      }
    }
    co_await sim::enter_cs();
    co_await sim::write(layout.data(), my_token, OpLabel::Ordinary);
    co_await sim::exit_cs();
    if (options.exit_protocol) {
      co_await sim::write(layout.turn(), other_token, sync);
      co_await sim::write(layout.flag(i), 2, sync);
    }
  }
}

}  // namespace ssm::bakery
