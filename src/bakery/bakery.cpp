#include "bakery/bakery.hpp"

namespace ssm::bakery {

namespace {

/// Lexicographic ticket comparison (mine, i) < (other, j), paper Figure 6.
bool ticket_less(Value mine, std::uint32_t i, Value other, std::uint32_t j) {
  if (mine != other) return mine < other;
  return i < j;
}

}  // namespace

sim::Program bakery_process(BakeryLayout layout, std::uint32_t i,
                            BakeryOptions options) {
  constexpr OpLabel kSync = OpLabel::Labeled;
  for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
    // Doorway: pick a ticket larger than every ticket visible now.
    co_await sim::write(layout.choosing(i), 1, kSync);
    Value max_ticket = 0;
    for (std::uint32_t j = 0; j < layout.n; ++j) {
      if (j == i) continue;
      const Value t = co_await sim::read(layout.number(j), kSync);
      if (t > max_ticket) max_ticket = t;
    }
    const Value mine = max_ticket + 1;
    co_await sim::write(layout.number(i), mine, kSync);
    co_await sim::write(layout.choosing(i), 2, kSync);

    // Wait for every other process to either lack a ticket or hold a
    // larger one.
    for (std::uint32_t j = 0; j < layout.n; ++j) {
      if (j == i) continue;
      while (true) {
        const Value choosing = co_await sim::read(layout.choosing(j), kSync);
        if (choosing != 1) break;
      }
      while (true) {
        const Value other = co_await sim::read(layout.number(j), kSync);
        if (other == 0 || ticket_less(mine, i, other, j)) break;
      }
    }

    co_await sim::enter_cs();
    co_await sim::write(layout.data(), static_cast<Value>(i) + 1,
                        OpLabel::Ordinary);
    co_await sim::exit_cs();

    if (options.exit_protocol) {
      co_await sim::write(layout.number(i), 0, kSync);
    }
  }
}

}  // namespace ssm::bakery
