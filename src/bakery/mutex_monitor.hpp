// MutexMonitor: observes critical-section annotations from the scheduler
// and detects mutual-exclusion violations (two processes inside at once).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ssm::bakery {

class MutexMonitor {
 public:
  explicit MutexMonitor(std::size_t procs) : inside_(procs, false) {}

  void on_cs_event(ProcId p, bool entering) {
    if (entering) {
      inside_[p] = true;
      std::size_t count = 0;
      for (bool b : inside_) count += b ? 1 : 0;
      if (count > 1) {
        ++violations_;
        if (!first_violation_) {
          std::vector<ProcId> procs;
          for (std::size_t i = 0; i < inside_.size(); ++i) {
            if (inside_[i]) procs.push_back(static_cast<ProcId>(i));
          }
          first_violation_ = procs;
        }
      }
      ++entries_;
    } else {
      inside_[p] = false;
    }
  }

  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t entries() const noexcept { return entries_; }
  [[nodiscard]] const std::optional<std::vector<ProcId>>& first_violation()
      const noexcept {
    return first_violation_;
  }

 private:
  std::vector<bool> inside_;
  std::uint64_t violations_ = 0;
  std::uint64_t entries_ = 0;
  std::optional<std::vector<ProcId>> first_violation_;
};

}  // namespace ssm::bakery
