// Lamport's Bakery algorithm (paper §5, Figure 6), as a simulated program.
//
// Location layout for n processes over the shared address space:
//   choosing[i] -> loc i          (0 = initial false, 1 = true, 2 = false)
//   number[i]   -> loc n + i      (0 = no ticket, k >= 1 = ticket k)
//   data        -> loc 2n         (ordinary critical-section data)
// The boolean re-encoding (false written back as 2 rather than 0) keeps
// single-entry traces checkable by the declarative models, which require
// distinct written values per location; the algorithm only ever tests
// "choosing[j] == 1", so the encoding is behaviour-preserving.
//
// Synchronization variables (choosing, number) are accessed with *labeled*
// operations, exactly as the paper labels the algorithm for RC; the
// critical-section write to `data` is ordinary.
#pragma once

#include <cstdint>

#include "simulate/program.hpp"

namespace ssm::bakery {

struct BakeryLayout {
  std::uint32_t n = 2;
  [[nodiscard]] LocId choosing(std::uint32_t i) const {
    return static_cast<LocId>(i);
  }
  [[nodiscard]] LocId number(std::uint32_t i) const {
    return static_cast<LocId>(n + i);
  }
  [[nodiscard]] LocId data() const { return static_cast<LocId>(2 * n); }
  [[nodiscard]] std::size_t num_locations() const { return 2 * n + 1; }
};

struct BakeryOptions {
  std::uint32_t iterations = 1;
  /// When false, the exit-protocol write (number[i] := 0) is skipped —
  /// used for single-entry runs whose traces feed the declarative
  /// checkers (a second write of 0 would make writes-before ambiguous).
  bool exit_protocol = true;
};

/// The program run by process `i` of `layout.n`.
[[nodiscard]] sim::Program bakery_process(BakeryLayout layout,
                                          std::uint32_t i,
                                          BakeryOptions options);

}  // namespace ssm::bakery
