// Dekker's algorithm (extension): the oldest two-process read/write
// mutual-exclusion algorithm, and the third probe in our suite.  Like
// Bakery and Peterson it is correct under SC and breaks under store
// buffering — the entry protocol starts with the flag handshake
// `w(flag[i])1; r(flag[j])`, which is exactly the paper's Figure 1 shape.
//
// Layout: flag[0] -> loc 0, flag[1] -> loc 1, turn -> loc 2,
//         data -> loc 3.  flag encoding: 0 initial "down", 1 "up",
//         2 "down-again"; turn encoding: 1 = process 0, 2 = process 1
//         (initially 0, meaning process 0 may go).
#pragma once

#include "simulate/program.hpp"

namespace ssm::bakery {

struct DekkerLayout {
  [[nodiscard]] LocId flag(std::uint32_t i) const {
    return static_cast<LocId>(i);
  }
  [[nodiscard]] LocId turn() const { return 2; }
  [[nodiscard]] LocId data() const { return 3; }
  [[nodiscard]] std::size_t num_locations() const { return 4; }
};

struct DekkerOptions {
  std::uint32_t iterations = 1;
  bool exit_protocol = true;
  bool labeled_sync = true;
};

[[nodiscard]] sim::Program dekker_process(DekkerLayout layout,
                                          std::uint32_t i,
                                          DekkerOptions options);

}  // namespace ssm::bakery
