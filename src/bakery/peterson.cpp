#include "bakery/peterson.hpp"

namespace ssm::bakery {

sim::Program peterson_process(PetersonLayout layout, std::uint32_t i,
                              PetersonOptions options) {
  const OpLabel sync =
      options.labeled_sync ? OpLabel::Labeled : OpLabel::Ordinary;
  const std::uint32_t other = 1 - i;
  for (std::uint32_t iter = 0; iter < options.iterations; ++iter) {
    co_await sim::write(layout.flag(i), 1, sync);
    // Cede the turn to the other process.
    co_await sim::write(layout.turn(), static_cast<Value>(other) + 1, sync);
    while (true) {
      const Value other_flag = co_await sim::read(layout.flag(other), sync);
      if (other_flag != 1) break;
      const Value turn = co_await sim::read(layout.turn(), sync);
      if (turn == static_cast<Value>(i) + 1) break;
    }
    co_await sim::enter_cs();
    co_await sim::write(layout.data(), static_cast<Value>(i) + 1,
                        OpLabel::Ordinary);
    co_await sim::exit_cs();
    if (options.exit_protocol) {
      co_await sim::write(layout.flag(i), 2, sync);
    }
  }
}

}  // namespace ssm::bakery
