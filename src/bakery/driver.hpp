// Driver: runs a mutual-exclusion algorithm on a chosen memory machine
// under a chosen schedule and reports safety statistics plus (for
// single-entry runs) the recorded trace for declarative checking.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "bakery/bakery.hpp"
#include "bakery/dekker.hpp"
#include "bakery/mutex_monitor.hpp"
#include "bakery/peterson.hpp"
#include "simulate/scheduler.hpp"

namespace ssm::bakery {

using MachineFactory =
    std::function<std::unique_ptr<sim::Machine>(std::size_t procs,
                                                std::size_t locs)>;

struct MutexRunResult {
  std::uint64_t violations = 0;
  std::uint64_t cs_entries = 0;
  bool livelock = false;
  history::SystemHistory trace;
};

/// One Bakery run with `n` processes.
[[nodiscard]] MutexRunResult run_bakery(const MachineFactory& machine,
                                        std::uint32_t n,
                                        BakeryOptions options,
                                        sim::SchedulerOptions sched);

/// One Peterson run (always 2 processes).
[[nodiscard]] MutexRunResult run_peterson(const MachineFactory& machine,
                                          PetersonOptions options,
                                          sim::SchedulerOptions sched);

/// One Dekker run (always 2 processes).  Note: Dekker re-raises its flag
/// after backing off, so its traces repeat write values and are for
/// monitoring only (not declaratively checkable).
[[nodiscard]] MutexRunResult run_dekker(const MachineFactory& machine,
                                        DekkerOptions options,
                                        sim::SchedulerOptions sched);

/// Aggregate over `runs` random-schedule runs with seeds base..base+runs-1.
struct MutexSweepResult {
  std::uint64_t runs = 0;
  std::uint64_t violating_runs = 0;
  std::uint64_t total_violations = 0;
  std::uint64_t livelocks = 0;
};
[[nodiscard]] MutexSweepResult sweep_bakery(const MachineFactory& machine,
                                            std::uint32_t n,
                                            BakeryOptions options,
                                            sim::SchedulerOptions sched,
                                            std::uint64_t runs);
[[nodiscard]] MutexSweepResult sweep_peterson(const MachineFactory& machine,
                                              PetersonOptions options,
                                              sim::SchedulerOptions sched,
                                              std::uint64_t runs);
[[nodiscard]] MutexSweepResult sweep_dekker(const MachineFactory& machine,
                                            DekkerOptions options,
                                            sim::SchedulerOptions sched,
                                            std::uint64_t runs);

}  // namespace ssm::bakery
