#include "bakery/mutex_monitor.hpp"

// Header-only; translation unit anchors the target.
