// Peterson's two-process mutual exclusion algorithm (extension): a second
// read/write-only lock whose correctness also depends on the strength of
// the memory.  Peterson's algorithm needs sequentially consistent
// flag/turn accesses; on the TSO machine (store buffers) both processes
// can pass the gate — the classic store-buffering failure.
//
// Layout: flag[0] -> loc 0, flag[1] -> loc 1, turn -> loc 2,
//         data -> loc 3.  flag encoding: 0 initial false, 1 true,
//         2 false-again (same distinct-value discipline as Bakery).
//         turn encoding: 1 = process 0's turn token, 2 = process 1's.
#pragma once

#include "simulate/program.hpp"

namespace ssm::bakery {

struct PetersonLayout {
  [[nodiscard]] LocId flag(std::uint32_t i) const {
    return static_cast<LocId>(i);
  }
  [[nodiscard]] LocId turn() const { return 2; }
  [[nodiscard]] LocId data() const { return 3; }
  [[nodiscard]] std::size_t num_locations() const { return 4; }
};

struct PetersonOptions {
  std::uint32_t iterations = 1;
  bool exit_protocol = true;
  /// Label the flag/turn accesses (for the RC machines).
  bool labeled_sync = true;
};

[[nodiscard]] sim::Program peterson_process(PetersonLayout layout,
                                            std::uint32_t i,
                                            PetersonOptions options);

}  // namespace ssm::bakery
