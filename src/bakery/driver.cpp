#include "bakery/driver.hpp"

namespace ssm::bakery {
namespace {

MutexRunResult run_with(sim::Machine& machine, std::size_t procs,
                        const std::function<sim::Program(std::uint32_t)>& make,
                        sim::SchedulerOptions sched) {
  sim::Scheduler scheduler(machine, sched);
  MutexMonitor monitor(procs);
  scheduler.set_cs_observer(
      [&](ProcId p, bool entering) { monitor.on_cs_event(p, entering); });
  for (std::uint32_t i = 0; i < procs; ++i) {
    scheduler.add_program(make(i));
  }
  sim::RunResult run = scheduler.run();
  MutexRunResult out;
  out.violations = monitor.violations();
  out.cs_entries = monitor.entries();
  out.livelock = run.livelock;
  out.trace = std::move(run.trace);
  return out;
}

}  // namespace

MutexRunResult run_bakery(const MachineFactory& machine, std::uint32_t n,
                          BakeryOptions options,
                          sim::SchedulerOptions sched) {
  BakeryLayout layout{n};
  auto m = machine(n, layout.num_locations());
  return run_with(*m, n, [&](std::uint32_t i) {
    return bakery_process(layout, i, options);
  }, sched);
}

MutexRunResult run_peterson(const MachineFactory& machine,
                            PetersonOptions options,
                            sim::SchedulerOptions sched) {
  PetersonLayout layout;
  auto m = machine(2, layout.num_locations());
  return run_with(*m, 2, [&](std::uint32_t i) {
    return peterson_process(layout, i, options);
  }, sched);
}

MutexRunResult run_dekker(const MachineFactory& machine,
                          DekkerOptions options,
                          sim::SchedulerOptions sched) {
  DekkerLayout layout;
  auto m = machine(2, layout.num_locations());
  return run_with(*m, 2, [&](std::uint32_t i) {
    return dekker_process(layout, i, options);
  }, sched);
}

MutexSweepResult sweep_dekker(const MachineFactory& machine,
                              DekkerOptions options,
                              sim::SchedulerOptions sched,
                              std::uint64_t runs) {
  MutexSweepResult out;
  for (std::uint64_t r = 0; r < runs; ++r) {
    sim::SchedulerOptions s = sched;
    s.seed = sched.seed + r;
    const MutexRunResult one = run_dekker(machine, options, s);
    ++out.runs;
    out.total_violations += one.violations;
    if (one.violations > 0) ++out.violating_runs;
    if (one.livelock) ++out.livelocks;
  }
  return out;
}

MutexSweepResult sweep_bakery(const MachineFactory& machine, std::uint32_t n,
                              BakeryOptions options,
                              sim::SchedulerOptions sched,
                              std::uint64_t runs) {
  MutexSweepResult out;
  for (std::uint64_t r = 0; r < runs; ++r) {
    sim::SchedulerOptions s = sched;
    s.seed = sched.seed + r;
    const MutexRunResult one = run_bakery(machine, n, options, s);
    ++out.runs;
    out.total_violations += one.violations;
    if (one.violations > 0) ++out.violating_runs;
    if (one.livelock) ++out.livelocks;
  }
  return out;
}

MutexSweepResult sweep_peterson(const MachineFactory& machine,
                                PetersonOptions options,
                                sim::SchedulerOptions sched,
                                std::uint64_t runs) {
  MutexSweepResult out;
  for (std::uint64_t r = 0; r < runs; ++r) {
    sim::SchedulerOptions s = sched;
    s.seed = sched.seed + r;
    const MutexRunResult one = run_peterson(machine, options, s);
    ++out.runs;
    out.total_violations += one.violations;
    if (one.violations > 0) ++out.violating_runs;
    if (one.livelock) ++out.livelocks;
  }
  return out;
}

}  // namespace ssm::bakery
