#include "solve/sat.hpp"

#include <algorithm>

namespace ssm::solve {

using checker::SearchBudget;

Var SatSolver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  phase_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

void SatSolver::watch(Lit l, std::uint32_t clause_index) {
  watches_[l].push_back(clause_index);
}

bool SatSolver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  // Root-level simplification: drop false literals, discard satisfied
  // clauses, reject tautologies (l ∨ ¬l).
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i + 1] == negate(lits[i])) return true;
    if (i > 0 && lits[i] == negate(lits[i - 1])) return true;
    const int v = lit_value(lits[i]);
    if (v > 0) return true;  // already satisfied at the root
    if (v == 0) kept.push_back(lits[i]);
  }
  if (kept.empty()) {
    ok_ = false;
    return false;
  }
  if (kept.size() == 1) {
    enqueue(kept[0], kNoReason);
    // Propagate root units eagerly so later add_clause simplification
    // sees their consequences.
    if (propagate() != kNoReason) ok_ = false;
    return ok_;
  }
  const auto ci = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(Clause{std::move(kept)});
  watch(clauses_[ci].lits[0], ci);
  watch(clauses_[ci].lits[1], ci);
  return true;
}

void SatSolver::enqueue(Lit l, std::uint32_t reason) {
  const Var v = var_of(l);
  assign_[v] = sign_of(l) ? -1 : 1;
  level_[v] = static_cast<std::uint32_t>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

std::uint32_t SatSolver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    // Clauses watching ¬p lost a watched literal; repair or derive.
    auto& wl = watches_[negate(p)];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < wl.size(); ++wi) {
      const std::uint32_t ci = wl[wi];
      auto& c = clauses_[ci].lits;
      const Lit false_lit = negate(p);
      // Normalize: the false watcher sits at c[1].
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (lit_value(c[0]) > 0) {
        wl[keep++] = ci;  // satisfied by the other watcher
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (lit_value(c[k]) >= 0) {
          std::swap(c[1], c[k]);
          watch(c[1], ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch migrated; drop from this list
      wl[keep++] = ci;
      if (lit_value(c[0]) < 0) {
        // Conflict: restore the remaining watch entries and report.
        for (std::size_t rest = wi + 1; rest < wl.size(); ++rest) {
          wl[keep++] = wl[rest];
        }
        wl.resize(keep);
        qhead_ = trail_.size();
        return ci;
      }
      enqueue(c[0], ci);  // unit
    }
    wl.resize(keep);
  }
  return kNoReason;
}

std::uint32_t SatSolver::analyze(std::uint32_t confl) {
  learnt_.clear();
  learnt_.push_back(0);  // slot for the asserting literal
  std::uint32_t counter = 0;
  Lit p = 0;
  bool have_p = false;
  std::size_t index = trail_.size();
  const auto current = static_cast<std::uint32_t>(trail_lim_.size());
  for (;;) {
    const auto& c = clauses_[confl].lits;
    for (const Lit q : c) {
      if (have_p && q == p) continue;
      const Var v = var_of(q);
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      bump(v);
      if (level_[v] >= current) {
        ++counter;
      } else {
        learnt_.push_back(q);
      }
    }
    // Next literal to resolve on: walk the trail backwards to the most
    // recently assigned seen variable.
    while (seen_[var_of(trail_[index - 1])] == 0) --index;
    p = trail_[--index];
    have_p = true;
    seen_[var_of(p)] = 0;
    --counter;
    if (counter == 0) break;
    confl = reason_[var_of(p)];
  }
  learnt_[0] = negate(p);
  std::uint32_t back = 0;
  for (std::size_t i = 1; i < learnt_.size(); ++i) {
    back = std::max(back, level_[var_of(learnt_[i])]);
    seen_[var_of(learnt_[i])] = 0;
  }
  // Second-highest-level literal at position 1 (the other watcher must be
  // the first to unassign on backjump).
  if (learnt_.size() > 2) {
    std::size_t best = 1;
    for (std::size_t i = 2; i < learnt_.size(); ++i) {
      if (level_[var_of(learnt_[i])] > level_[var_of(learnt_[best])]) {
        best = i;
      }
    }
    std::swap(learnt_[1], learnt_[best]);
  }
  return back;
}

void SatSolver::backtrack_to(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  const std::uint32_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = var_of(trail_[i - 1]);
    phase_[v] = assign_[v];
    assign_[v] = 0;
    reason_[v] = kNoReason;
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  qhead_ = bound;
}

void SatSolver::bump(Var v) {
  activity_[v] += bump_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    bump_inc_ *= 1e-100;
  }
}

void SatSolver::decay() { bump_inc_ *= (1.0 / 0.95); }

bool SatSolver::pick_branch(Lit& out) {
  // Highest activity wins; ties break to the lowest variable index, which
  // keeps runs deterministic.  Linear scan: instances here are small.
  double best = -1.0;
  Var chosen = 0;
  bool found = false;
  for (Var v = 0; v < assign_.size(); ++v) {
    if (assign_[v] != 0) continue;
    if (!found || activity_[v] > best) {
      best = activity_[v];
      chosen = v;
      found = true;
    }
  }
  if (!found) return false;
  out = lit(chosen, phase_[chosen] < 0);
  return true;
}

SatResult SatSolver::solve(const checker::SearchControl& control) {
  if (!ok_) return SatResult::Unsat;
  if (propagate() != kNoReason) {
    ok_ = false;
    return SatResult::Unsat;
  }
  for (;;) {
    const std::uint32_t confl = propagate();
    if (confl != kNoReason) {
      ++stats_.conflicts;
      if (trail_lim_.empty()) return SatResult::Unsat;
      if (SearchBudget* b = control.budget();
          b != nullptr && !b->charge(1)) {
        return SatResult::Undecided;
      }
      const std::uint32_t back = analyze(confl);
      backtrack_to(back);
      if (learnt_.size() == 1) {
        enqueue(learnt_[0], kNoReason);
      } else {
        const auto ci = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back(Clause{learnt_});
        watch(learnt_[0], ci);
        watch(learnt_[1], ci);
        enqueue(learnt_[0], ci);
      }
      decay();
      continue;
    }
    if (control.cancelled()) return SatResult::Undecided;
    Lit next = 0;
    if (!pick_branch(next)) return SatResult::Sat;
    ++stats_.decisions;
    if (SearchBudget* b = control.budget(); b != nullptr && !b->charge(1)) {
      return SatResult::Undecided;
    }
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    enqueue(next, kNoReason);
  }
}

}  // namespace ssm::solve
