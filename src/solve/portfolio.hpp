// Backend selection and portfolio racing (docs/PORTFOLIO.md).
//
// The repo has two independent decision backends for the same 18 admission
// predicates: the enumerating search (src/models, the reference
// implementation) and the SAT encoding (solve/backend.hpp).  They charge
// budgets in different units — search nodes vs solver decisions/conflicts —
// so on many inputs one backend finishes comfortably inside a budget that
// exhausts the other.  Backend::Race exploits that: both backends run the
// same check concurrently, each under its OWN fresh SearchBudget built from
// the same BudgetSpec (same knobs, independent meters — this is what makes
// the raced VERDICT deterministic: which backend wins may vary with
// scheduling, but each backend's own verdict depends only on its private
// budget, and definite verdicts from the two backends always agree).
//
// First definite verdict wins.  The winner cancels the loser through the
// existing cooperative paths: it poisons the loser's budget
// (SearchBudget::poison — every subsequent charge/probe latches false and
// the search unwinds exactly like a timeout) and flips the shared cancel
// token (polled by the SAT solver at every decision).  An INCONCLUSIVE
// finisher cancels nothing — the other backend keeps running and may still
// retire the check.  Only when BOTH backends come back inconclusive does
// the race report INCONCLUSIVE.
//
// Metrics: checker.portfolio_search_wins / checker.portfolio_encode_wins
// count races won per backend; checker.portfolio_cancel_latency_ns records
// how long a cancelled loser took to actually unwind after the winner
// flipped the token (docs/OBSERVABILITY.md).
#pragma once

#include <optional>
#include <string_view>

#include "checker/budget.hpp"
#include "checker/verdict.hpp"
#include "history/system_history.hpp"

namespace ssm::checker {

enum class Backend : std::uint8_t {
  Search,  ///< the enumerating reference backend (src/models)
  Encode,  ///< the SAT-encoding backend (src/solve)
  Race,    ///< both concurrently; first definite verdict wins
};

[[nodiscard]] const char* to_string(Backend b) noexcept;
/// Parses "search" / "encode" / "race" (exact); nullopt otherwise.
[[nodiscard]] std::optional<Backend> backend_from_string(
    std::string_view s) noexcept;

class Portfolio {
 public:
  /// Decides `model_name` on `h` with the chosen backend.  Search and
  /// Encode run under one fresh SearchBudget of `spec` (none when `spec`
  /// is unlimited); Race gives each backend its own budget of `spec`.
  /// Throws InvalidInput for unknown model names.
  [[nodiscard]] static Verdict check(const history::SystemHistory& h,
                                     std::string_view model_name,
                                     Backend backend,
                                     const BudgetSpec& spec = {});
};

}  // namespace ssm::checker
