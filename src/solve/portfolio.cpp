#include "solve/portfolio.hpp"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/metrics.hpp"
#include "models/registry.hpp"
#include "solve/backend.hpp"

namespace ssm::checker {
namespace {

namespace metrics = common::metrics;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Verdict run_search(const history::SystemHistory& h,
                   std::string_view model_name, SearchBudget* budget) {
  const auto model = models::make_model(model_name);
  if (budget == nullptr) return model->check(h);
  const BudgetScope scope(budget);
  return model->check(h);
}

Verdict run_race(const history::SystemHistory& h, std::string_view model_name,
                 const BudgetSpec& spec) {
  static auto& search_wins = metrics::Registry::global().counter(
      "checker.portfolio_search_wins");
  static auto& encode_wins = metrics::Registry::global().counter(
      "checker.portfolio_encode_wins");
  static auto& cancel_latency = metrics::Registry::global().histogram(
      "checker.portfolio_cancel_latency_ns");

  // Resolve the model name before spawning anything so an unknown name
  // throws InvalidInput on the calling thread.
  (void)models::make_model(model_name);

  SearchBudget search_budget(spec);
  SearchBudget encode_budget(spec);
  std::atomic<bool> cancel{false};
  std::atomic<std::uint64_t> cancel_ns{0};
  // -1 = no winner yet, 0 = search, 1 = encode.  Only DEFINITE verdicts
  // claim the slot; an inconclusive finisher leaves the other running.
  std::atomic<int> winner{-1};

  const auto claim = [&](int who, SearchBudget& loser_budget) {
    int expected = -1;
    if (!winner.compare_exchange_strong(expected, who,
                                        std::memory_order_acq_rel)) {
      return;
    }
    cancel_ns.store(now_ns(), std::memory_order_relaxed);
    cancel.store(true, std::memory_order_relaxed);
    loser_budget.poison();
  };

  Verdict search_verdict;
  std::uint64_t search_end = 0;
  std::thread search_thread([&] {
    search_verdict = run_search(h, model_name, &search_budget);
    search_end = now_ns();
    if (!search_verdict.inconclusive) claim(0, encode_budget);
  });

  const SearchControl encode_control(&cancel, &encode_budget, &cancel_ns);
  Verdict encode_verdict = solve::encode_check(h, model_name, encode_control);
  const std::uint64_t encode_end = now_ns();
  if (!encode_verdict.inconclusive) claim(1, search_budget);

  search_thread.join();

  const int who = winner.load(std::memory_order_acquire);
  const std::uint64_t cancelled_at = cancel_ns.load(std::memory_order_relaxed);
  if (who == 0) {
    search_wins.add(1);
    if (cancelled_at != 0 && encode_end > cancelled_at) {
      cancel_latency.observe(encode_end - cancelled_at);
    }
    return search_verdict;
  }
  if (who == 1) {
    encode_wins.add(1);
    if (cancelled_at != 0 && search_end > cancelled_at) {
      cancel_latency.observe(search_end - cancelled_at);
    }
    return encode_verdict;
  }
  // Both backends inconclusive: the race could not retire the check.
  return search_verdict;
}

}  // namespace

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::Search:
      return "search";
    case Backend::Encode:
      return "encode";
    case Backend::Race:
      return "race";
  }
  return "?";
}

std::optional<Backend> backend_from_string(std::string_view s) noexcept {
  if (s == "search") return Backend::Search;
  if (s == "encode") return Backend::Encode;
  if (s == "race") return Backend::Race;
  return std::nullopt;
}

Verdict Portfolio::check(const history::SystemHistory& h,
                         std::string_view model_name, Backend backend,
                         const BudgetSpec& spec) {
  switch (backend) {
    case Backend::Search: {
      if (spec.unlimited()) return run_search(h, model_name, nullptr);
      SearchBudget budget(spec);
      return run_search(h, model_name, &budget);
    }
    case Backend::Encode: {
      if (spec.unlimited()) return solve::encode_check(h, model_name);
      SearchBudget budget(spec);
      const SearchControl control(nullptr, &budget);
      return solve::encode_check(h, model_name, control);
    }
    case Backend::Race:
      return run_race(h, model_name, spec);
  }
  throw InvalidInput("unknown backend");
}

}  // namespace ssm::checker
