// The encode decision backend: a second, independent implementation of
// every model's admission predicate (docs/PORTFOLIO.md).
//
// Where the search backend (src/models + checker/legality.cpp) *enumerates*
// — coherence orders, global write orders, labeled views, then a DFS per
// processor — encode_check translates the same predicate into one or a few
// propositional instances over boolean order variables and hands them to
// the in-tree CDCL solver (solve/sat.hpp).  Both backends decide the same
// predicate, so on any input where both reach a definite verdict they must
// agree; the fuzz oracle differential-tests exactly that every iteration,
// and checker::Portfolio races them per check.
//
// Verdict semantics match Model::check:
//   * SAT  → Verdict::yes() with the same witness shape the search backend
//     produces (views decoded from the assignment, plus the model's
//     mutual-consistency choices), so positive verdicts re-validate
//     through the independent checker/witness_verifier;
//   * UNSAT → Verdict::no().  An UNSAT proof is complete regardless of how
//     much budget remains, so — unlike an aborted enumeration — it is
//     never downgraded to INCONCLUSIVE;
//   * budget exhausted / cancelled mid-solve → Verdict::undecided.
#pragma once

#include <string_view>

#include "checker/legality.hpp"
#include "checker/verdict.hpp"
#include "history/system_history.hpp"

namespace ssm::solve {

/// True iff `model_name` is a model the encode backend can decide (all 18
/// registry models; unknown names return false).
[[nodiscard]] bool encode_supports(std::string_view model_name) noexcept;

/// Decides model `model_name` on `h` by SAT encoding.  Preconditions match
/// Model::check: `h` passed SystemHistory::validate().  `control` carries
/// the budget (charged per solver decision and conflict — different units
/// from search nodes, same knobs) and the cancel token; when it has no
/// budget, the calling thread's ambient budget is adopted, mirroring
/// find_legal_view.  Throws InvalidInput for unknown model names.
[[nodiscard]] checker::Verdict encode_check(
    const history::SystemHistory& h, std::string_view model_name,
    const checker::SearchControl& control = {});

}  // namespace ssm::solve
