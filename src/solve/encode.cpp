#include "solve/encode.hpp"

#include <algorithm>
#include <limits>

namespace ssm::solve {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

std::vector<std::size_t> build_index(std::size_t parent_size,
                                     const std::vector<OpIndex>& elems) {
  std::vector<std::size_t> index(parent_size, kNpos);
  for (std::size_t i = 0; i < elems.size(); ++i) index[elems[i]] = i;
  return index;
}
}  // namespace

OrderBlock::OrderBlock(SatSolver& s, std::vector<OpIndex> elems)
    : s_(&s), elems_(std::move(elems)) {
  std::size_t max_parent = 0;
  for (OpIndex e : elems_) max_parent = std::max<std::size_t>(max_parent, e);
  index_of_ = build_index(elems_.empty() ? 0 : max_parent + 1, elems_);
  const std::size_t n = elems_.size();
  pair_var_.resize(n < 2 ? 0 : n * (n - 1) / 2);
  for (std::size_t j = 1; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      pair_var_[pair_index(i, j)] = s.new_var();
    }
  }
  // Triangle clauses: with x = B(i,j), y = B(j,k), z = B(i,k), the two
  // cyclic orientations (i<j<k<i and its mirror) are the assignments
  // (x,y,¬z) and (¬x,¬y,z); forbidding both makes every assignment a
  // total strict order (antisymmetry holds by construction).
  for (std::size_t k = 2; k < n; ++k) {
    for (std::size_t j = 1; j < k; ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        const Lit x = lit(pair_var_[pair_index(i, j)]);
        const Lit y = lit(pair_var_[pair_index(j, k)]);
        const Lit z = lit(pair_var_[pair_index(i, k)]);
        s.add_clause({negate(x), negate(y), z});
        s.add_clause({x, y, negate(z)});
      }
    }
  }
}

std::size_t OrderBlock::pair_index(std::size_t i,
                                   std::size_t j) const noexcept {
  // Precondition: i < j.
  return j * (j - 1) / 2 + i;
}

bool OrderBlock::contains(OpIndex a) const noexcept {
  return a < index_of_.size() && index_of_[a] != kNpos;
}

Lit OrderBlock::before(OpIndex a, OpIndex b) const {
  const std::size_t i = index_of_[a];
  const std::size_t j = index_of_[b];
  return i < j ? lit(pair_var_[pair_index(i, j)])
               : negate(lit(pair_var_[pair_index(j, i)]));
}

void OrderBlock::require(OpIndex a, OpIndex b) {
  s_->add_unit(before(a, b));
}

void OrderBlock::require_edges(const Relation& r) {
  for (OpIndex a : elems_) {
    if (a >= r.size()) continue;
    r.successors(a).for_each([&](std::size_t b) {
      if (b != a && contains(static_cast<OpIndex>(b))) {
        require(a, static_cast<OpIndex>(b));
      }
    });
  }
}

View OrderBlock::decode(const SatSolver& s) const {
  // Count predecessors: in a total order the element with k predecessors
  // sits at position k, so no comparator-based sort is needed.
  const std::size_t n = elems_.size();
  View out(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      const std::size_t lo = std::min(i, j), hi = std::max(i, j);
      const bool i_first = s.value(pair_var_[pair_index(lo, hi)]) == (lo == i);
      if (i_first) ++pos;
    }
    out[pos] = elems_[j];
  }
  return out;
}

DirectedBlock::DirectedBlock(SatSolver& s, std::vector<OpIndex> elems)
    : s_(&s), elems_(std::move(elems)) {
  std::size_t max_parent = 0;
  for (OpIndex e : elems_) max_parent = std::max<std::size_t>(max_parent, e);
  index_of_ = build_index(elems_.empty() ? 0 : max_parent + 1, elems_);
  const std::size_t n = elems_.size();
  edge_var_.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) edge_var_[i * n + j] = s.new_var();
    }
  }
}

bool DirectedBlock::contains(OpIndex a) const noexcept {
  return a < index_of_.size() && index_of_[a] != kNpos;
}

Lit DirectedBlock::edge(OpIndex a, OpIndex b) const {
  const std::size_t n = elems_.size();
  return lit(edge_var_[index_of_[a] * n + index_of_[b]]);
}

void DirectedBlock::require(OpIndex a, OpIndex b) {
  s_->add_unit(edge(a, b));
}

void DirectedBlock::add_closure() {
  const std::size_t n = elems_.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (b == a) continue;
      for (std::size_t c = 0; c < n; ++c) {
        if (c == a || c == b) continue;
        s_->add_clause({negate(lit(edge_var_[a * n + b])),
                        negate(lit(edge_var_[b * n + c])),
                        lit(edge_var_[a * n + c])});
      }
    }
  }
}

void add_legality(SatSolver& s, const OrderBlock& block,
                  const SystemHistory& h, const DynBitset& universe,
                  const DynBitset& exempt) {
  universe.for_each([&](std::size_t ri) {
    const auto r = static_cast<OpIndex>(ri);
    const auto& op = h.op(r);
    if (!op.is_read()) return;
    const OpIndex w = h.writer_of(r);
    // Same-location writes of this universe, excluding the read itself
    // (an rmw's own store can never be "the last write before" its read).
    std::vector<OpIndex> writes;
    universe.for_each([&](std::size_t ei) {
      const auto e = static_cast<OpIndex>(ei);
      if (e != r && h.op(e).is_write() && h.op(e).loc == op.loc) {
        writes.push_back(e);
      }
    });
    const bool checked = !exempt.test(r);
    if (checked) {
      if (w == kNoOp) {
        // Initial value: no same-location write may precede the read.
        for (OpIndex e : writes) s.add_unit(block.before(r, e));
        return;
      }
      if (w == r || !block.contains(w)) {
        // The justifying write cannot appear before the read in this
        // view; no placement is legal.
        s.add_clause({});
        return;
      }
      s.add_unit(block.before(w, r));
      for (OpIndex e : writes) {
        if (e == w) continue;
        // No write strictly between w and r.
        s.add_clause({negate(block.before(w, e)),
                      negate(block.before(e, r))});
      }
      return;
    }
    if (op.kind != OpKind::ReadModifyWrite) return;  // fully exempt
    // Chained-rmw gate (checker/scope.hpp): an exempt rmw read-part is
    // still illegal when the last same-location write before it is an rmw
    // other than its own writer.  Forbid each such rmw e from being last:
    // either e is after r, or some other write sits strictly between.
    for (OpIndex e : writes) {
      if (e == w || h.op(e).kind != OpKind::ReadModifyWrite) continue;
      std::vector<Lit> clause{negate(block.before(e, r))};
      for (OpIndex e2 : writes) {
        if (e2 == e) continue;
        const Var aux = s.new_var();
        s.add_implication(lit(aux), block.before(e, e2));
        s.add_implication(lit(aux), block.before(e2, r));
        clause.push_back(lit(aux));
      }
      s.add_clause(std::move(clause));
    }
  });
}

}  // namespace ssm::solve
