#include "solve/backend.hpp"

#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "checker/budget.hpp"
#include "checker/scope.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "history/subhistory.hpp"
#include "models/edges.hpp"
#include "models/labeling.hpp"
#include "order/coherence.hpp"
#include "order/derived.hpp"
#include "order/semi_causal.hpp"
#include "solve/encode.hpp"

namespace ssm::solve {
namespace {

using checker::SearchBudget;
using checker::SearchControl;
using checker::Verdict;
using order::CoherenceOrder;

namespace metrics = common::metrics;

Verdict undecided_verdict() {
  return Verdict::undecided("SAT budget exhausted or cancelled");
}

std::vector<OpIndex> to_elems(const DynBitset& mask) {
  std::vector<OpIndex> out;
  mask.for_each(
      [&](std::size_t i) { out.push_back(static_cast<OpIndex>(i)); });
  return out;
}

std::vector<OpIndex> identity_elems(std::size_t n) {
  std::vector<OpIndex> out(n);
  std::iota(out.begin(), out.end(), OpIndex{0});
  return out;
}

/// src's chosen orientation of every pair is imposed on dst (pairs with an
/// endpoint missing from dst are skipped — the view-search semantics for
/// constraint edges outside the universe).  `filter`, when given, keeps
/// only pairs with both endpoints in the mask (CausalCohL's labeled-only
/// coherence obligation).
void imply_order(SatSolver& s, const OrderBlock& src, const OrderBlock& dst,
                 const DynBitset* filter = nullptr) {
  const auto& e = src.elems();
  for (std::size_t j = 1; j < e.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const OpIndex a = e[i], b = e[j];
      if (filter != nullptr && (!filter->test(a) || !filter->test(b))) {
        continue;
      }
      if (!dst.contains(a) || !dst.contains(b)) continue;
      s.add_implication(src.before(a, b), dst.before(a, b));
      s.add_implication(src.before(b, a), dst.before(b, a));
    }
  }
}

/// Every edge src asserts is imposed as an ordering obligation on dst.
void imply_directed(SatSolver& s, const DirectedBlock& src,
                    const OrderBlock& dst) {
  const auto& e = src.elems();
  for (const OpIndex a : e) {
    for (const OpIndex b : e) {
      if (a == b || !dst.contains(a) || !dst.contains(b)) continue;
      s.add_implication(src.edge(a, b), dst.before(a, b));
    }
  }
}

/// The coherence choice: one total order of writes per location, each a
/// linear extension of `base` restricted to that location's writes —
/// exactly the candidate space order::for_each_coherence_order walks.
struct CoherenceBlocks {
  const SystemHistory* h = nullptr;
  std::vector<OrderBlock> per_loc;

  [[nodiscard]] Lit before(OpIndex w1, OpIndex w2) const {
    return per_loc[h->op(w1).loc].before(w1, w2);
  }
  void imply_on(SatSolver& s, const OrderBlock& dst,
                const DynBitset* filter = nullptr) const {
    for (const auto& b : per_loc) imply_order(s, b, dst, filter);
  }
  [[nodiscard]] CoherenceOrder decode(const SatSolver& s) const {
    std::vector<std::vector<OpIndex>> seqs;
    seqs.reserve(per_loc.size());
    for (const auto& b : per_loc) seqs.push_back(b.decode(s));
    return CoherenceOrder(h->size(), std::move(seqs));
  }
};

CoherenceBlocks make_coherence_blocks(SatSolver& s, const SystemHistory& h,
                                      const Relation& base) {
  CoherenceBlocks c;
  c.h = &h;
  c.per_loc.reserve(h.num_locations());
  for (LocId loc = 0; loc < h.num_locations(); ++loc) {
    c.per_loc.emplace_back(s, h.writes_to(loc));
    c.per_loc.back().require_edges(base);
  }
  return c;
}

/// One δp = w view block per processor, with legality clauses installed.
struct ViewBlocks {
  std::vector<DynBitset> universes;
  std::vector<OrderBlock> blocks;
};

ViewBlocks make_view_blocks(
    SatSolver& s, const SystemHistory& h,
    const std::function<DynBitset(ProcId)>& exempt_for) {
  ViewBlocks v;
  v.universes.reserve(h.num_processors());
  v.blocks.reserve(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    DynBitset u = checker::own_plus_writes(h, p);
    v.blocks.emplace_back(s, to_elems(u));
    add_legality(s, v.blocks.back(), h, u, exempt_for(p));
    v.universes.push_back(std::move(u));
  }
  return v;
}

ViewBlocks make_view_blocks(SatSolver& s, const SystemHistory& h) {
  return make_view_blocks(s, h, [&](ProcId p) {
    return checker::remote_rmw_reads(h, p);
  });
}

Verdict yes_with_views(const ViewBlocks& v, const SatSolver& s) {
  Verdict out = Verdict::yes();
  out.views.reserve(v.blocks.size());
  for (const auto& b : v.blocks) out.views.push_back(b.decode(s));
  return out;
}

/// The semi-causality relation sem = (ppo ∪ rwb ∪ rrb(coh))+ as a layer of
/// edge variables over `hw` (the full history for PC; the labeled
/// subhistory for RCpc, with `to_parent` lifting indices).  rrb depends on
/// the coherence choice, so its edges are guarded by coherence literals;
/// the closure clauses then force every satisfying assignment to contain
/// the true closure (least model = exact sem, and supersets only
/// over-constrain — imposing MORE order on views/acyclicity layers — so
/// equivalence with the enumeration backend is preserved).
DirectedBlock build_sem_layer(SatSolver& s, const SystemHistory& hw,
                              const std::vector<OpIndex>& to_parent,
                              const Relation& ppo_w, const Relation& rwb_w,
                              const CoherenceBlocks& c) {
  std::vector<OpIndex> elems;
  elems.reserve(hw.size());
  for (std::size_t i = 0; i < hw.size(); ++i) elems.push_back(to_parent[i]);
  DirectedBlock e(s, elems);
  for (std::size_t a = 0; a < hw.size(); ++a) {
    for (std::size_t b = 0; b < hw.size(); ++b) {
      if (!ppo_w.test(a, b) && !rwb_w.test(a, b)) continue;
      if (a == b) {
        s.add_clause({});  // reflexive sem edge: cyclic for every choice
        continue;
      }
      e.require(to_parent[a], to_parent[b]);
    }
  }
  // rrb: o1 (read) → o2 (write) when some write o' to o1's location
  // supersedes o1's source in the chosen coherence order and o' →ppo o2.
  for (const auto& o1 : hw.operations()) {
    if (!o1.is_read()) continue;
    const OpIndex from = hw.writer_of(o1.index);
    for (const auto& oprime : hw.operations()) {
      if (!oprime.is_write() || oprime.loc != o1.loc) continue;
      const bool unconditional = from == kNoOp;
      if (!unconditional && from == oprime.index) continue;
      const Lit guard =
          unconditional ? 0
                        : c.before(to_parent[from], to_parent[oprime.index]);
      for (const auto& o2 : hw.operations()) {
        if (!o2.is_write() || !ppo_w.test(oprime.index, o2.index)) continue;
        if (o2.index == o1.index) {
          // Reflexive rrb edge: sem is cyclic under any coherence order
          // that activates it, so forbid the activating choice.
          if (unconditional) {
            s.add_clause({});
          } else {
            s.add_unit(negate(guard));
          }
          continue;
        }
        const Lit edge = e.edge(to_parent[o1.index], to_parent[o2.index]);
        if (unconditional) {
          s.add_unit(edge);
        } else {
          s.add_implication(guard, edge);
        }
      }
    }
  }
  e.add_closure();
  return e;
}

// ---------------------------------------------------------------------
// Per-model encodings.  Each mirrors the corresponding src/models cell;
// see that file's comments for the semantics being encoded.
// ---------------------------------------------------------------------

Verdict check_sc(const SystemHistory& h, const SearchControl& ctl) {
  const order::Orders ord(h);
  const auto universe = checker::all_ops(h);
  SatSolver s;
  OrderBlock b(s, to_elems(universe));
  b.require_edges(ord.po());
  add_legality(s, b, h, universe, DynBitset(h.size()));
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict v = Verdict::yes();
  v.views.assign(h.num_processors(), b.decode(s));
  return v;
}

Verdict check_cache(const SystemHistory& h, const SearchControl& ctl) {
  const order::Orders ord(h);
  std::vector<View> per_loc;
  per_loc.reserve(h.num_locations());
  for (LocId loc = 0; loc < h.num_locations(); ++loc) {
    const auto universe = checker::ops_on(h, loc);
    SatSolver s;
    OrderBlock b(s, to_elems(universe));
    b.require_edges(ord.po());
    add_legality(s, b, h, universe, DynBitset(h.size()));
    switch (s.solve(ctl)) {
      case SatResult::Unsat:
        return Verdict::no("location " + h.symbols().location_name(loc) +
                           " has no legal per-location order");
      case SatResult::Undecided:
        return undecided_verdict();
      case SatResult::Sat:
        break;
    }
    per_loc.push_back(b.decode(s));
  }
  Verdict v = Verdict::yes();
  v.views = std::move(per_loc);
  v.note = "views are per-location serializations";
  return v;
}

/// Shared by the models whose predicate is "one independent legal view per
/// processor extending a fixed relation" (PRAM, Causal, Slow, Local): the
/// instances share nothing, so each is its own small SAT problem and the
/// first UNSAT processor decides the whole check.
Verdict solve_separate_views(
    const SystemHistory& h, const SearchControl& ctl,
    const std::function<const Relation&(ProcId)>& constraints_for) {
  Verdict out = Verdict::yes();
  out.views.reserve(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const DynBitset u = checker::own_plus_writes(h, p);
    SatSolver s;
    OrderBlock b(s, to_elems(u));
    b.require_edges(constraints_for(p));
    add_legality(s, b, h, u, checker::remote_rmw_reads(h, p));
    switch (s.solve(ctl)) {
      case SatResult::Unsat:
        return Verdict::no();
      case SatResult::Undecided:
        return undecided_verdict();
      case SatResult::Sat:
        break;
    }
    out.views.push_back(b.decode(s));
  }
  return out;
}

Verdict check_pram(const SystemHistory& h, const SearchControl& ctl) {
  const order::Orders ord(h);
  return solve_separate_views(
      h, ctl, [&](ProcId) -> const Relation& { return ord.po(); });
}

Verdict check_causal(const SystemHistory& h, const SearchControl& ctl) {
  const order::Orders ord(h);
  const auto& co = ord.co();
  if (!co.is_acyclic()) return Verdict::no("causal order is cyclic");
  return solve_separate_views(
      h, ctl, [&](ProcId) -> const Relation& { return co; });
}

Verdict check_local(const SystemHistory& h, const SearchControl& ctl) {
  std::vector<Relation> per_proc;
  per_proc.reserve(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    per_proc.push_back(models::own_po_only(h, p));
  }
  return solve_separate_views(
      h, ctl, [&](ProcId p) -> const Relation& { return per_proc[p]; });
}

Verdict check_slow(const SystemHistory& h, const SearchControl& ctl) {
  std::vector<Relation> per_proc;
  per_proc.reserve(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    per_proc.push_back(models::slow_constraints(h, p));
  }
  return solve_separate_views(
      h, ctl, [&](ProcId p) -> const Relation& { return per_proc[p]; });
}

Verdict check_tso(const SystemHistory& h, const SearchControl& ctl,
                  bool forwarding) {
  const order::Orders ord(h);
  const Relation fwd_ppo =
      forwarding ? models::forwarding_ppo(h) : Relation();
  const Relation& ppo = forwarding ? fwd_ppo : ord.ppo();
  const DynBitset exempt =
      forwarding ? models::forwarded_reads(h) : DynBitset(h.size());
  SatSolver s;
  // The global write order: a linear extension of ppo over the writes,
  // embedded in every view.
  OrderBlock g(s, to_elems(checker::write_ops(h)));
  g.require_edges(ppo);
  ViewBlocks v = make_view_blocks(s, h, [&](ProcId) { return exempt; });
  for (auto& b : v.blocks) {
    b.require_edges(ppo);
    imply_order(s, g, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.labeled_order = g.decode(s);
  out.note = "labeled_order field holds the global write order";
  return out;
}

/// The Value axiom of axiomatic TSO as clauses over the memory order M:
/// the load's justifying store must be available (before the load in M,
/// or an own program-order-earlier store) and later in M than every other
/// available same-location store.  Writer identity is exact because write
/// values are distinct per location (SystemHistory::validate).
void add_value_axiom(SatSolver& s, const OrderBlock& m,
                     const SystemHistory& h) {
  for (const auto& load : h.operations()) {
    if (!load.is_read()) continue;
    const OpIndex w = h.writer_of(load.index);
    if (w == load.index) {
      s.add_clause({});  // an rmw can never supply its own read part
      continue;
    }
    const auto own_po_earlier = [&](const history::Operation& st) {
      return st.proc == load.proc && st.seq < load.seq;
    };
    if (w == kNoOp) {
      // Initial value: no store to the location may be available.
      for (const auto& st : h.operations()) {
        if (!st.is_write() || st.loc != load.loc ||
            st.index == load.index) {
          continue;
        }
        if (own_po_earlier(st)) {
          s.add_clause({});  // an own earlier store is always available
        } else {
          s.add_unit(m.before(load.index, st.index));
        }
      }
      continue;
    }
    if (!own_po_earlier(h.op(w))) {
      s.add_unit(m.before(w, load.index));  // availability of the source
    }
    for (const auto& st : h.operations()) {
      if (!st.is_write() || st.loc != load.loc || st.index == load.index ||
          st.index == w) {
        continue;
      }
      if (own_po_earlier(st)) {
        // Always available, so it must sit earlier in M than the source.
        s.add_unit(m.before(st.index, w));
      } else {
        // Available only when before the load in M; then st < w in M.
        s.add_clause({m.before(load.index, st.index),
                      m.before(st.index, w)});
      }
    }
  }
}

Verdict check_tso_axiomatic(const SystemHistory& h,
                            const SearchControl& ctl) {
  SatSolver s;
  OrderBlock m(s, identity_elems(h.size()));
  m.require_edges(models::po_minus_store_load(h));
  add_value_axiom(s, m, h);
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = Verdict::yes();
  out.labeled_order = m.decode(s);
  out.note = "labeled_order field holds the memory order M";
  return out;
}

Verdict check_goodman(const SystemHistory& h, const SearchControl& ctl) {
  const order::Orders ord(h);
  const auto& po = ord.po();
  SatSolver s;
  CoherenceBlocks c = make_coherence_blocks(s, h, po);
  ViewBlocks v = make_view_blocks(s, h);
  for (auto& b : v.blocks) {
    b.require_edges(po);
    c.imply_on(s, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.coherence = c.decode(s);
  return out;
}

Verdict check_pc(const SystemHistory& h, const SearchControl& ctl) {
  const order::Orders ord(h);
  const auto& ppo = ord.ppo();
  SatSolver s;
  CoherenceBlocks c = make_coherence_blocks(s, h, ppo);
  const DirectedBlock sem = build_sem_layer(s, h, identity_elems(h.size()),
                                            ppo, ord.rwb(), c);
  // sem ∪ coherence must be acyclic GLOBALLY (a cycle through two
  // processors' reads is invisible to every individual view, so the view
  // constraints alone do not replicate the model's acyclicity test).
  OrderBlock acyc(s, identity_elems(h.size()));
  c.imply_on(s, acyc);
  imply_directed(s, sem, acyc);
  ViewBlocks v = make_view_blocks(s, h);
  for (auto& b : v.blocks) {
    c.imply_on(s, b);
    imply_directed(s, sem, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.coherence = c.decode(s);
  return out;
}

Verdict check_causal_coherent(const SystemHistory& h,
                              const SearchControl& ctl, bool labeled_only) {
  if (labeled_only) {
    if (auto err = models::check_properly_labeled(h)) {
      return Verdict::no(*err);
    }
  }
  const order::Orders ord(h);
  const auto& co = ord.co();
  if (!co.is_acyclic()) return Verdict::no("causal order is cyclic");
  const DynBitset labeled = checker::labeled_ops(h);
  const DynBitset* filter = labeled_only ? &labeled : nullptr;
  SatSolver s;
  CoherenceBlocks c = make_coherence_blocks(s, h, co);
  // co ∪ chain must be acyclic globally.
  OrderBlock acyc(s, identity_elems(h.size()));
  acyc.require_edges(co);
  c.imply_on(s, acyc, filter);
  ViewBlocks v = make_view_blocks(s, h);
  for (auto& b : v.blocks) {
    b.require_edges(co);
    c.imply_on(s, b, filter);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.coherence = c.decode(s);
  return out;
}

/// WO and RCsc share a skeleton: coherence + a static fencing relation +
/// an SC (legal, coherence-consistent) order T of the labeled operations
/// embedded in every view + per-processor ppo.  They differ only in the
/// fencing relation (WO fences ordinary ops against sync ops in both
/// directions; RCsc uses the weaker publication brackets).
Verdict check_sync_sc(const SystemHistory& h, const SearchControl& ctl,
                      const Relation& fencing) {
  if (auto err = models::check_properly_labeled(h)) return Verdict::no(*err);
  const order::Orders ord(h);
  const auto& ppo = ord.ppo();
  const auto& po = ord.po();
  const DynBitset labeled = checker::labeled_ops(h);
  SatSolver s;
  CoherenceBlocks c = make_coherence_blocks(s, h, ppo);
  // (coherence ∪ fencing ∪ ppo) must be acyclic globally.
  OrderBlock acyc(s, identity_elems(h.size()));
  acyc.require_edges(fencing);
  acyc.require_edges(ppo);
  c.imply_on(s, acyc);
  // T: a legal view of the labeled operations extending po and coherence.
  OrderBlock t(s, to_elems(labeled));
  t.require_edges(po);
  c.imply_on(s, t);
  add_legality(s, t, h, labeled, DynBitset(h.size()));
  ViewBlocks v = make_view_blocks(s, h);
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    auto& b = v.blocks[p];
    b.require_edges(fencing);
    b.require_edges(ppo.restricted_to(models::own_mask(h, p)));
    c.imply_on(s, b);
    imply_order(s, t, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.coherence = c.decode(s);
  out.labeled_order = t.decode(s);
  return out;
}

Verdict check_hybrid(const SystemHistory& h, const SearchControl& ctl) {
  if (auto err = models::check_properly_labeled(h)) return Verdict::no(*err);
  const order::Orders ord(h);
  const auto& po = ord.po();
  const Relation hybrid = models::hybrid_edges(h);
  const DynBitset labeled = checker::labeled_ops(h);
  SatSolver s;
  OrderBlock t(s, to_elems(labeled));
  t.require_edges(po);
  add_legality(s, t, h, labeled, DynBitset(h.size()));
  ViewBlocks v = make_view_blocks(s, h);
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    auto& b = v.blocks[p];
    b.require_edges(hybrid);
    b.require_edges(po.restricted_to(models::own_mask(h, p)));
    imply_order(s, t, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.labeled_order = t.decode(s);
  return out;
}

Verdict check_rc_goodman(const SystemHistory& h, const SearchControl& ctl) {
  if (auto err = models::check_properly_labeled(h)) return Verdict::no(*err);
  const order::Orders ord(h);
  const auto& ppo = ord.ppo();
  const Relation brackets = models::bracket_edges(h);
  const Relation po_labeled =
      ord.po().restricted_to(checker::labeled_ops(h));
  SatSolver s;
  CoherenceBlocks c = make_coherence_blocks(s, h, ppo);
  // Both of the enumeration backend's candidate filters, as global
  // acyclicity layers: (coh ∪ brackets ∪ ppo) and the shared relation
  // (coh ∪ brackets ∪ po|labeled).  They are separate layers on purpose —
  // a single order extending both would wrongly require their UNION to be
  // acyclic.
  OrderBlock acyc1(s, identity_elems(h.size()));
  acyc1.require_edges(brackets);
  acyc1.require_edges(ppo);
  c.imply_on(s, acyc1);
  OrderBlock acyc2(s, identity_elems(h.size()));
  acyc2.require_edges(brackets);
  acyc2.require_edges(po_labeled);
  c.imply_on(s, acyc2);
  ViewBlocks v = make_view_blocks(s, h);
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    auto& b = v.blocks[p];
    b.require_edges(brackets);
    b.require_edges(po_labeled);
    b.require_edges(ppo.restricted_to(models::own_mask(h, p)));
    c.imply_on(s, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.coherence = c.decode(s);
  return out;
}

Verdict check_rc_pc(const SystemHistory& h, const SearchControl& ctl) {
  if (auto err = models::check_properly_labeled(h)) return Verdict::no(*err);
  const order::Orders ord(h);
  const auto& ppo = ord.ppo();
  const Relation brackets = models::bracket_edges(h);
  const DynBitset labeled = checker::labeled_ops(h);
  SatSolver s;
  CoherenceBlocks c = make_coherence_blocks(s, h, ppo);
  OrderBlock acyc1(s, identity_elems(h.size()));
  acyc1.require_edges(brackets);
  acyc1.require_edges(ppo);
  c.imply_on(s, acyc1);
  // Semi-causality of the labeled subhistory, with its rrb guarded by the
  // labeled restriction of the coherence choice, lifted to parent indices.
  const auto sub = history::extract(h, labeled);
  const Relation ppo_l = order::partial_program_order(sub.sub);
  const Relation rwb_l = order::remote_writes_before(sub.sub, ppo_l);
  const DirectedBlock sem =
      build_sem_layer(s, sub.sub, sub.to_parent, ppo_l, rwb_l, c);
  // The shared relation (coh ∪ brackets ∪ lift(sem_l)) must be acyclic.
  OrderBlock acyc2(s, identity_elems(h.size()));
  acyc2.require_edges(brackets);
  c.imply_on(s, acyc2);
  imply_directed(s, sem, acyc2);
  ViewBlocks v = make_view_blocks(s, h);
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    auto& b = v.blocks[p];
    b.require_edges(brackets);
    b.require_edges(ppo.restricted_to(models::own_mask(h, p)));
    c.imply_on(s, b);
    imply_directed(s, sem, b);
  }
  switch (s.solve(ctl)) {
    case SatResult::Unsat:
      return Verdict::no();
    case SatResult::Undecided:
      return undecided_verdict();
    case SatResult::Sat:
      break;
  }
  Verdict out = yes_with_views(v, s);
  out.coherence = c.decode(s);
  return out;
}

Verdict dispatch(const SystemHistory& h, std::string_view name,
                 const SearchControl& ctl) {
  if (name == "SC") return check_sc(h, ctl);
  if (name == "TSO") return check_tso(h, ctl, false);
  if (name == "TSOfwd") return check_tso(h, ctl, true);
  if (name == "TSOax") return check_tso_axiomatic(h, ctl);
  if (name == "PC") return check_pc(h, ctl);
  if (name == "PCg") return check_goodman(h, ctl);
  if (name == "WO") {
    return check_sync_sc(
        h, ctl, models::fence_edges(h) | models::bracket_edges(h));
  }
  if (name == "HC") return check_hybrid(h, ctl);
  if (name == "RCsc") return check_sync_sc(h, ctl, models::bracket_edges(h));
  if (name == "RCpc") return check_rc_pc(h, ctl);
  if (name == "RCg") return check_rc_goodman(h, ctl);
  if (name == "CausalCoh") return check_causal_coherent(h, ctl, false);
  if (name == "CausalCohL") return check_causal_coherent(h, ctl, true);
  if (name == "Causal") return check_causal(h, ctl);
  if (name == "Cache") return check_cache(h, ctl);
  if (name == "PRAM") return check_pram(h, ctl);
  if (name == "Slow") return check_slow(h, ctl);
  if (name == "Local") return check_local(h, ctl);
  throw InvalidInput("encode backend: unknown model '" + std::string(name) +
                     "'");
}

}  // namespace

bool encode_supports(std::string_view model_name) noexcept {
  static constexpr std::string_view kNames[] = {
      "SC",   "TSO",       "TSOfwd",     "TSOax",  "PC",    "PCg",
      "WO",   "HC",        "RCsc",       "RCpc",   "RCg",   "CausalCoh",
      "CausalCohL", "Causal", "Cache",   "PRAM",   "Slow",  "Local"};
  for (const auto n : kNames) {
    if (n == model_name) return true;
  }
  return false;
}

Verdict encode_check(const SystemHistory& h, std::string_view model_name,
                     const SearchControl& control) {
  static auto& checks =
      metrics::Registry::global().counter("checker.encode_checks");
  checks.add(1);
  SearchControl ctl = control;
  if (ctl.budget() == nullptr) {
    ctl = ctl.with_budget(checker::current_budget());
  }
  if (SearchBudget* b = ctl.budget();
      b != nullptr && !b->probe_deadline()) {
    return undecided_verdict();
  }
  if (ctl.cancelled()) return undecided_verdict();
  return dispatch(h, model_name, ctl);
}

}  // namespace ssm::solve
