// Building blocks for encoding admission predicates as SAT instances.
//
// The paper's framework asks, per model: do per-processor views S_{p+δp}
// exist that are legal, extend the model's constraint relation, and agree
// on the model's mutual-consistency choices?  solve/backend.cpp phrases
// that as clauses over boolean *order variables*; the pieces here are the
// shared vocabulary:
//
//   * OrderBlock — a total order over a set of operations, one variable
//     per unordered pair (antisymmetry is structural: before(b,a) is the
//     negation of before(a,b)) plus the two triangle clauses per triple
//     that forbid cyclic orientations.  One block per view, per coherence
//     location sequence, per global write order, per labeled sequence.
//   * DirectedBlock — one variable per *ordered* pair, for relations that
//     are not total orders: the semi-causality closure of PC/RCpc, whose
//     edges depend on the chosen coherence order.  Closure clauses make
//     every satisfying assignment a superset of the real transitive
//     closure; the least model is the exact closure, so encodings that
//     only *impose* these edges downstream stay equivalence-preserving
//     (supersets can only over-constrain, never admit).
//   * add_legality — the read-maps-to-most-recent-write clauses for one
//     view.  SystemHistory::validate() guarantees distinct write values
//     per location, so "the last write before read r has r's value" is
//     equivalent to "writer_of(r) is the last write before r", which is
//     a writer-identity condition expressible with before() literals
//     alone.  The exempt-read and chained-rmw rules mirror the DFS
//     legality gate in checker/legality.cpp exactly.
//
// docs/PORTFOLIO.md documents the clause schema per model family.
#pragma once

#include <vector>

#include "history/system_history.hpp"
#include "relation/relation.hpp"
#include "solve/sat.hpp"

namespace ssm::solve {

using checker::View;
using history::SystemHistory;
using rel::DynBitset;
using rel::Relation;

/// A total strict order over `elems`, as pair variables in `s`.
class OrderBlock {
 public:
  /// Creates the pair variables and the triangle (transitivity) clauses.
  OrderBlock(SatSolver& s, std::vector<OpIndex> elems);

  [[nodiscard]] const std::vector<OpIndex>& elems() const noexcept {
    return elems_;
  }
  [[nodiscard]] bool contains(OpIndex a) const noexcept;

  /// The literal "a precedes b in this order".  Precondition: both
  /// contained, a != b.
  [[nodiscard]] Lit before(OpIndex a, OpIndex b) const;

  /// Requires a to precede b (unit clause).
  void require(OpIndex a, OpIndex b);

  /// Requires every edge of `r` whose endpoints are both in this block
  /// (edges touching outside operations are ignored, mirroring the view
  /// search's constraint-restriction semantics).
  void require_edges(const Relation& r);

  /// The order as a sequence, after solve() == Sat.
  [[nodiscard]] View decode(const SatSolver& s) const;

 private:
  [[nodiscard]] std::size_t pair_index(std::size_t i,
                                       std::size_t j) const noexcept;

  SatSolver* s_;
  std::vector<OpIndex> elems_;
  std::vector<std::size_t> index_of_;  ///< parent index -> block index
  std::vector<Var> pair_var_;          ///< triangular, block index pairs i<j
};

/// One variable per ordered pair of `elems`: an arbitrary directed
/// relation, with optional transitive-closure clauses.
class DirectedBlock {
 public:
  DirectedBlock(SatSolver& s, std::vector<OpIndex> elems);

  [[nodiscard]] const std::vector<OpIndex>& elems() const noexcept {
    return elems_;
  }
  [[nodiscard]] bool contains(OpIndex a) const noexcept;
  /// The literal "edge a -> b holds".  Precondition: both contained, a != b.
  [[nodiscard]] Lit edge(OpIndex a, OpIndex b) const;
  void require(OpIndex a, OpIndex b);

  /// edge(a,b) ∧ edge(b,c) → edge(a,c) for every ordered triple; with
  /// these, any satisfying assignment is transitively closed (and hence a
  /// superset of the closure of whatever edges were required).
  void add_closure();

 private:
  SatSolver* s_;
  std::vector<OpIndex> elems_;
  std::vector<std::size_t> index_of_;
  std::vector<Var> edge_var_;  ///< block index pair (i, j), row-major
};

/// Adds the legality clauses for a view of `universe` ordered by `block`
/// (block's element set must equal `universe`):
///   * a checked read r (non-exempt) with writer w:  before(w, r) and no
///     other same-location write of the universe between them; a read of
///     the initial value precedes every same-location write;
///   * an exempt ReadModifyWrite read-part: only the chained-rmw gate —
///     no rmw write other than its own writer may be the LAST
///     same-location write before it (encoded with one auxiliary
///     "strictly between" variable per excluding write);
///   * other exempt reads: unconstrained.
/// The instance becomes unsatisfiable outright when a checked read's
/// writer is outside the universe (no placement can justify the value).
void add_legality(SatSolver& s, const OrderBlock& block,
                  const SystemHistory& h, const DynBitset& universe,
                  const DynBitset& exempt);

}  // namespace ssm::solve
