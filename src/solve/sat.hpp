// A small in-tree CDCL SAT solver: the engine of the encode decision
// backend (docs/PORTFOLIO.md).
//
// The encode backend (solve/backend.cpp) translates each model's admission
// predicate — "do legal views / coherence orders / a memory order exist?" —
// into clauses over boolean order variables, and this solver decides them.
// It is a deliberately compact conflict-driven solver: two-watched-literal
// propagation, first-UIP clause learning with backjumping, and an
// activity-driven (VSIDS-style) decision heuristic with saved phases.  No
// restarts and no learnt-clause deletion: at litmus scale instances are
// thousands of variables at most, and a restart-free solver is trivially
// deterministic — the same instance always explores the same tree, which
// the portfolio's verdict-determinism guarantee (tests/solve) leans on.
//
// Budgeting mirrors the view search: one unit is charged against the
// SearchControl's budget per decision and per conflict, so --max-nodes and
// --timeout-ms bound the encode backend with the same knobs (the units
// differ from DFS nodes — that asymmetry is exactly why one backend often
// finishes inside a budget that exhausts the other; see docs/PORTFOLIO.md).
// The control's cancel token is polled at every decision, which is the
// portfolio's loser-cancellation path.
#pragma once

#include <cstdint>
#include <vector>

#include "checker/legality.hpp"

namespace ssm::solve {

/// A literal: variable << 1 | sign (sign 1 = negated).
using Var = std::uint32_t;
using Lit = std::uint32_t;

[[nodiscard]] constexpr Lit lit(Var v, bool negated = false) noexcept {
  return (v << 1) | static_cast<Lit>(negated);
}
[[nodiscard]] constexpr Lit negate(Lit l) noexcept { return l ^ 1U; }
[[nodiscard]] constexpr Var var_of(Lit l) noexcept { return l >> 1; }
[[nodiscard]] constexpr bool sign_of(Lit l) noexcept {
  return (l & 1U) != 0;
}

enum class SatResult : std::uint8_t {
  Sat,        ///< satisfying assignment found (read via value())
  Unsat,      ///< proved unsatisfiable
  Undecided,  ///< budget exhausted or cancelled before a proof
};

class SatSolver {
 public:
  SatSolver() = default;
  SatSolver(const SatSolver&) = delete;
  SatSolver& operator=(const SatSolver&) = delete;

  [[nodiscard]] Var new_var();
  [[nodiscard]] std::size_t num_vars() const noexcept {
    return assign_.size();
  }

  /// Adds a clause (empty = immediate contradiction).  Literals false at
  /// the root level are dropped; clauses with a root-true literal are
  /// discarded as satisfied.  Returns false once the instance is known
  /// unsatisfiable (further adds are ignored; solve() reports Unsat).
  bool add_clause(std::vector<Lit> lits);

  /// Convenience forms.
  bool add_unit(Lit a) { return add_clause({a}); }
  /// a -> b as a clause.
  bool add_implication(Lit a, Lit b) { return add_clause({negate(a), b}); }

  /// Decides the instance.  `control` supplies the budget charged per
  /// decision and per conflict, and the cancel token polled per decision;
  /// a default-constructed control solves without limits.
  [[nodiscard]] SatResult solve(const checker::SearchControl& control = {});

  /// The satisfying assignment after solve() == Sat.
  [[nodiscard]] bool value(Var v) const noexcept {
    return assign_[v] == 1;
  }

  struct Stats {
    std::uint64_t decisions = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t propagations = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
  };

  static constexpr std::uint32_t kNoReason = 0xFFFFFFFFU;

  [[nodiscard]] int lit_value(Lit l) const noexcept {
    const int v = assign_[var_of(l)];
    return sign_of(l) ? -v : v;
  }
  void enqueue(Lit l, std::uint32_t reason);
  /// Propagates to fixpoint; returns the conflicting clause index or
  /// kNoReason.
  [[nodiscard]] std::uint32_t propagate();
  /// First-UIP conflict analysis; fills `learnt_` (asserting literal
  /// first) and returns the backjump level.
  [[nodiscard]] std::uint32_t analyze(std::uint32_t confl);
  void backtrack_to(std::uint32_t level);
  void bump(Var v);
  void decay();
  [[nodiscard]] bool pick_branch(Lit& out);
  void watch(Lit l, std::uint32_t clause_index);

  std::vector<std::int8_t> assign_;  ///< per var: 0 undef, +1 true, -1 false
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> reason_;
  std::vector<double> activity_;
  std::vector<std::int8_t> phase_;  ///< saved polarity per var
  std::vector<Clause> clauses_;
  std::vector<std::vector<std::uint32_t>> watches_;  ///< per literal
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<Lit> learnt_;
  std::vector<char> seen_;
  double bump_inc_ = 1.0;
  bool ok_ = true;
  Stats stats_;
};

}  // namespace ssm::solve
