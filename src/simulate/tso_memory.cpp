#include "simulate/tso_memory.hpp"

namespace ssm::sim {

std::unique_ptr<Machine> make_tso_machine(std::size_t procs,
                                          std::size_t locs) {
  return std::make_unique<TsoMemory>(procs, locs);
}

}  // namespace ssm::sim
