#include "simulate/coherent_memory.hpp"

namespace ssm::sim {

CoherentMemory::CoherentMemory(std::size_t procs, std::size_t locs,
                               Propagation propagation)
    : Machine(procs, locs),
      propagation_(propagation),
      replica_(procs, std::vector<Value>(locs, kInitialValue)),
      applied_ver_(procs, std::vector<std::uint64_t>(locs, 0)),
      source_(procs, std::vector<Source>(locs)),
      version_(locs, 0),
      out_seq_(procs, 0),
      watermark_(procs, std::vector<std::uint64_t>(procs, 0)),
      early_(procs, std::vector<std::set<std::uint64_t>>(procs)),
      dep_vec_(procs, std::vector<std::uint64_t>(procs, 0)),
      channel_(procs * procs) {}

Value CoherentMemory::read(ProcId p, LocId loc, OpLabel label) {
  if (label == OpLabel::Labeled) {
    // Acquire: later operations of p depend on the write that supplied
    // this value having arrived wherever they go.
    const Source src = source_[p][loc];
    if (src.seq != 0) {
      auto& dep = dep_vec_[p][src.sender];
      if (src.seq > dep) dep = src.seq;
    }
  }
  return replica_[p][loc];
}

void CoherentMemory::write(ProcId p, LocId loc, Value v, OpLabel label) {
  Update u;
  u.loc = loc;
  u.value = v;
  u.version = ++version_[loc];
  u.seq = ++out_seq_[p];
  u.dep = dep_vec_[p];
  const bool fifo = propagation_ == Propagation::PerSenderFifo ||
                    label == OpLabel::Labeled;
  if (fifo && u.seq > 1 && u.dep[p] < u.seq - 1) {
    // FIFO discipline (or a release): wait for all of p's earlier updates.
    u.dep[p] = u.seq - 1;
  }
  // Local application is immediate (a processor always sees its own
  // writes); self arrival tracking keeps self-deps trivially satisfied.
  record_arrival(p, p, u.seq);
  apply(p, p, u);
  for (std::size_t q = 0; q < procs_; ++q) {
    if (q != p) channel_[chan(p, q)].push_back(u);
  }
}

Value CoherentMemory::rmw(ProcId p, LocId loc, Value v, OpLabel label) {
  drain();
  const Value old = replica_[p][loc];
  write(p, loc, v, label);
  drain();
  return old;
}

void CoherentMemory::apply(ProcId at, ProcId sender, const Update& u) {
  if (u.version > applied_ver_[at][u.loc]) {
    applied_ver_[at][u.loc] = u.version;
    replica_[at][u.loc] = u.value;
    source_[at][u.loc] = Source{sender, u.seq};
  }
}

void CoherentMemory::record_arrival(std::size_t receiver, ProcId sender,
                                    std::uint64_t seq) {
  auto& mark = watermark_[receiver][sender];
  auto& early = early_[receiver][sender];
  if (seq == mark + 1) {
    ++mark;
    // Close any gap the new watermark unblocks.
    auto it = early.begin();
    while (it != early.end() && *it == mark + 1) {
      ++mark;
      it = early.erase(it);
    }
  } else if (seq > mark) {
    early.insert(seq);
  }
}

bool CoherentMemory::deliverable(std::size_t receiver,
                                 const Update& u) const {
  for (std::size_t s = 0; s < procs_; ++s) {
    if (u.dep[s] > watermark_[receiver][s]) return false;
  }
  return true;
}

std::size_t CoherentMemory::num_internal_events() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < procs_; ++s) {
    for (std::size_t r = 0; r < procs_; ++r) {
      const auto& ch = channel_[chan(static_cast<ProcId>(s), r)];
      for (const Update& u : ch) {
        if (deliverable(r, u)) ++n;
      }
    }
  }
  return n;
}

void CoherentMemory::deliver_at(ProcId sender, std::size_t receiver,
                                std::size_t idx) {
  auto& ch = channel_[chan(sender, receiver)];
  const Update u = ch[idx];
  ch.erase(ch.begin() + static_cast<std::ptrdiff_t>(idx));
  record_arrival(receiver, sender, u.seq);
  apply(static_cast<ProcId>(receiver), sender, u);
}

void CoherentMemory::fire_internal_event(std::size_t k) {
  for (std::size_t s = 0; s < procs_; ++s) {
    for (std::size_t r = 0; r < procs_; ++r) {
      const auto& ch = channel_[chan(static_cast<ProcId>(s), r)];
      for (std::size_t i = 0; i < ch.size(); ++i) {
        if (!deliverable(r, ch[i])) continue;
        if (k-- == 0) {
          deliver_at(static_cast<ProcId>(s), r, i);
          return;
        }
      }
    }
  }
}

bool CoherentMemory::deliver_any_to(std::size_t receiver) {
  for (std::size_t s = 0; s < procs_; ++s) {
    const auto& ch = channel_[chan(static_cast<ProcId>(s), receiver)];
    for (std::size_t i = 0; i < ch.size(); ++i) {
      if (deliverable(receiver, ch[i])) {
        deliver_at(static_cast<ProcId>(s), receiver, i);
        return true;
      }
    }
  }
  return false;
}

void CoherentMemory::flush_from(ProcId p) {
  // Deliver everything pending from p; blocked updates are unblocked by
  // delivering prerequisite updates from other senders to the same
  // receiver (dependencies form a DAG, so this terminates).
  for (std::size_t r = 0; r < procs_; ++r) {
    if (r == p) continue;
    auto& ch = channel_[chan(p, r)];
    while (!ch.empty()) {
      bool progressed = false;
      for (std::size_t i = 0; i < ch.size(); ++i) {
        if (deliverable(r, ch[i])) {
          deliver_at(p, r, i);
          progressed = true;
          break;
        }
      }
      if (!progressed && !deliver_any_to(r)) {
        // Should be impossible (acyclic dependencies); bail defensively
        // rather than spin.
        return;
      }
    }
  }
}

std::unique_ptr<Machine> make_coherent_machine(std::size_t procs,
                                               std::size_t locs) {
  return std::make_unique<CoherentMemory>(procs, locs,
                                          CoherentMemory::Propagation::
                                              PerSenderFifo);
}

}  // namespace ssm::sim
