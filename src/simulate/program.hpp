// Coroutine-based processor programs.
//
// A simulated processor is a C++20 coroutine that issues memory requests
// with co_await and is resumed by the Scheduler with the value the memory
// machine produced.  This lets algorithms with loops and data-dependent
// control flow (the Bakery algorithm, spin locks, …) be written naturally
// while the scheduler retains full control over interleaving:
//
//   Program writer(LocId x) {
//     co_await sim::write(x, 1);
//     Value v = co_await sim::read(x);
//     ...
//   }
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "common/types.hpp"

namespace ssm::sim {

/// What a program is currently asking the scheduler to do.
enum class ReqType : std::uint8_t {
  None,     ///< not started / just resumed
  Read,     ///< read loc, resume with value
  Write,    ///< write value to loc
  Rmw,      ///< atomically read loc (resume value) and store value
  EnterCs,  ///< annotation: entering a critical section (not a memory op)
  ExitCs,   ///< annotation: leaving a critical section
};

struct MemRequest {
  ReqType type = ReqType::None;
  LocId loc = 0;
  Value value = 0;
  OpLabel label = OpLabel::Ordinary;
};

class Program {
 public:
  struct promise_type {
    MemRequest pending{};
    Value resume_value = 0;
    std::exception_ptr error;

    Program get_return_object() {
      return Program(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Program() = default;
  explicit Program(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Program(Program&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Program& operator=(Program&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  ~Program() { destroy(); }

  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

  /// The request the program is suspended on (valid when !done()).
  [[nodiscard]] const MemRequest& pending() const {
    return handle_.promise().pending;
  }

  /// Resumes the program, delivering `v` as the result of its pending
  /// request, and runs it to the next request (or completion).  Rethrows
  /// any exception the program body raised.
  void resume_with(Value v) {
    handle_.promise().resume_value = v;
    handle_.promise().pending.type = ReqType::None;
    handle_.resume();
    rethrow();
  }

  /// Runs the program to its first request (or completion).
  void start() {
    handle_.resume();
    rethrow();
  }

 private:
  void rethrow() {
    if (handle_ && handle_.done() && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

struct MemAwait {
  MemRequest req;
  Program::promise_type* promise = nullptr;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Program::promise_type> h) {
    promise = &h.promise();
    promise->pending = req;
  }
  Value await_resume() const { return promise->resume_value; }
};

}  // namespace detail

/// co_await read(x) -> Value
[[nodiscard]] inline detail::MemAwait read(LocId loc,
                                           OpLabel label = OpLabel::Ordinary) {
  return {{ReqType::Read, loc, 0, label}, nullptr};
}

/// co_await write(x, v)
[[nodiscard]] inline detail::MemAwait write(
    LocId loc, Value v, OpLabel label = OpLabel::Ordinary) {
  return {{ReqType::Write, loc, v, label}, nullptr};
}

/// co_await rmw(x, v) -> previous Value (atomic swap)
[[nodiscard]] inline detail::MemAwait rmw(LocId loc, Value v,
                                          OpLabel label = OpLabel::Ordinary) {
  return {{ReqType::Rmw, loc, v, label}, nullptr};
}

/// co_await enter_cs() / exit_cs(): critical-section annotations consumed
/// by the mutual-exclusion monitor; not memory operations.
[[nodiscard]] inline detail::MemAwait enter_cs() {
  return {{ReqType::EnterCs, 0, 0, OpLabel::Ordinary}, nullptr};
}
[[nodiscard]] inline detail::MemAwait exit_cs() {
  return {{ReqType::ExitCs, 0, 0, OpLabel::Ordinary}, nullptr};
}

}  // namespace ssm::sim
