#include "simulate/workload.hpp"

namespace ssm::sim {

Plan make_plan(const WorkloadSpec& spec, Rng& rng) {
  Plan plan(spec.procs);
  std::vector<Value> next_value(spec.locs, 0);
  for (std::uint32_t p = 0; p < spec.procs; ++p) {
    plan[p].reserve(spec.ops_per_proc);
    for (std::uint32_t k = 0; k < spec.ops_per_proc; ++k) {
      PlannedOp op;
      op.loc = static_cast<LocId>(rng.below(spec.locs));
      const bool is_sync = op.loc < spec.sync_locs;
      op.label = is_sync ? OpLabel::Labeled : OpLabel::Ordinary;
      op.is_write = rng.below(100) < spec.write_percent;
      if (is_sync && op.is_write && op.loc % spec.procs != p) {
        op.is_write = false;  // sync locations are single-writer
      }
      if (op.is_write) {
        op.value = ++next_value[op.loc];
      }
      plan[p].push_back(op);
    }
  }
  return plan;
}

Program run_plan(std::vector<PlannedOp> plan) {
  for (const PlannedOp& op : plan) {
    if (op.is_rmw) {
      (void)co_await rmw(op.loc, op.value, op.label);
    } else if (op.is_write) {
      co_await write(op.loc, op.value, op.label);
    } else {
      (void)co_await read(op.loc, op.label);
    }
  }
}

}  // namespace ssm::sim
