#include "simulate/program.hpp"

// Program is header-only (coroutine machinery must be visible at await
// sites); this translation unit anchors the target.
