// Random straight-line workloads for machine-vs-model soundness testing.
//
// A plan assigns each processor a fixed sequence of reads/writes with
// globally distinct write values per location, so the recorded trace
// always passes SystemHistory::validate() and can be fed to the
// declarative checkers.  Locations below `sync_locs` are accessed only
// with labeled operations and only written by their owner processor
// (mirroring how synchronization variables are used by properly-labeled
// programs); the rest are ordinary.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "simulate/program.hpp"

namespace ssm::sim {

struct WorkloadSpec {
  std::uint32_t procs = 2;
  std::uint32_t locs = 2;
  std::uint32_t ops_per_proc = 4;
  /// Percent of operations that are writes.
  std::uint32_t write_percent = 50;
  /// Locations [0, sync_locs) are labeled-only; location i is written only
  /// by processor i % procs.
  std::uint32_t sync_locs = 0;
};

struct PlannedOp {
  bool is_write = false;
  LocId loc = 0;
  Value value = 0;  // writes: value stored (also the rmw store value)
  OpLabel label = OpLabel::Ordinary;
  /// Atomic swap instead of a plain write (is_write must be true).
  bool is_rmw = false;
};

using Plan = std::vector<std::vector<PlannedOp>>;  // [proc][step]

[[nodiscard]] Plan make_plan(const WorkloadSpec& spec, Rng& rng);

/// A coroutine that executes one processor's planned sequence.
[[nodiscard]] Program run_plan(std::vector<PlannedOp> plan);

}  // namespace ssm::sim
