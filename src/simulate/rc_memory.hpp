// RcMemory: the DASH-style release-consistent machine, in the two labeled
// flavours of paper §3.4.
//
// Ordinary operations run on a CoherentMemory-style replica fabric
// (independent propagation per location, per-sender FIFO, coherence via a
// per-location sequencer).  Labeled operations differ by variant:
//
//   * RC_sc (labeled ops sequentially consistent): labeled reads and
//     writes act on a single shared synchronization store, immediately and
//     atomically — so the labeled subhistory is an SC interleaving by
//     construction.
//   * RC_pc (labeled ops processor consistent): labeled operations travel
//     on the same replica fabric as ordinary ones (per-sender FIFO +
//     coherence), so another processor may observe a labeled write late —
//     exactly the freedom the paper exploits to break the Bakery
//     algorithm.
//
// Release semantics: before a labeled *write* is performed, all of the
// issuing processor's in-flight ordinary updates are delivered everywhere
// ("ordinary operations complete before the following release").  Acquire
// semantics follow from releases having flushed: once a processor reads a
// released flag value, the data writes that preceded the release are
// already applied at every replica.
#pragma once

#include <memory>
#include <vector>

#include "simulate/coherent_memory.hpp"

namespace ssm::sim {

class RcMemory final : public Machine {
 public:
  enum class Variant { Sc, Pc };

  RcMemory(std::size_t procs, std::size_t locs, Variant variant)
      : Machine(procs, locs),
        variant_(variant),
        // Independent propagation: ordinary updates overtake each other
        // freely (the paper's §3.4 "propagated independently"); releases
        // depend on the sender's prior updates, acquires install
        // dependencies — the bracket conditions, operationally.
        fabric_(procs, locs, CoherentMemory::Propagation::Independent),
        sync_store_(locs, kInitialValue) {}

  std::string_view name() const noexcept override {
    return variant_ == Variant::Sc ? "rc-sc-machine" : "rc-pc-machine";
  }

  Value read(ProcId p, LocId loc, OpLabel label) override {
    if (label == OpLabel::Labeled && variant_ == Variant::Sc) {
      return sync_store_[loc];
    }
    return fabric_.read(p, loc, label);
  }

  void write(ProcId p, LocId loc, Value v, OpLabel label) override {
    if (label == OpLabel::Labeled && variant_ == Variant::Sc) {
      // Release: the sync store is globally visible at once, so the
      // ordinary data it publishes must be delivered everywhere first.
      fabric_.flush_from(p);
      sync_store_[loc] = v;
      return;
    }
    // PC variant: releases travel on the same per-sender FIFO as the data
    // they publish, so every receiver applies the data first — no eager
    // flush, which is precisely the laziness the paper's §5 Bakery
    // violation exploits (labeled writes may stay invisible arbitrarily
    // long).
    fabric_.write(p, loc, v, label);
  }

  Value rmw(ProcId p, LocId loc, Value v, OpLabel label) override {
    if (label == OpLabel::Labeled && variant_ == Variant::Sc) {
      fabric_.flush_from(p);
      const Value old = sync_store_[loc];
      sync_store_[loc] = v;
      return old;
    }
    return fabric_.rmw(p, loc, v, label);
  }

  /// Ordinary operations are replica-local under both variants.  Labeled
  /// operations: the SC variant pays a global round trip (and a release
  /// additionally drains pending updates); the PC variant keeps even
  /// labeled operations local — the performance advantage the DASH paper
  /// claims for RC_pc, and exactly what the Bakery algorithm pays for.
  OpCost classify(ProcId p, OpKind kind, LocId loc,
                  OpLabel label) const override {
    if (label != OpLabel::Labeled) {
      return fabric_.classify(p, kind, loc, OpLabel::Ordinary);
    }
    if (variant_ == Variant::Sc) {
      return is_write_like(kind) ? OpCost::GlobalFlush : OpCost::Global;
    }
    return fabric_.classify(p, kind, loc, label);
  }

  std::size_t num_internal_events() const override {
    return fabric_.num_internal_events();
  }
  void fire_internal_event(std::size_t k) override {
    fabric_.fire_internal_event(k);
  }

 private:
  Variant variant_;
  CoherentMemory fabric_;
  std::vector<Value> sync_store_;
};

[[nodiscard]] std::unique_ptr<Machine> make_rc_sc_machine(std::size_t procs,
                                                          std::size_t locs);
[[nodiscard]] std::unique_ptr<Machine> make_rc_pc_machine(std::size_t procs,
                                                          std::size_t locs);

}  // namespace ssm::sim
