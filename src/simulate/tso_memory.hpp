// TsoMemory: the paper's §3.2 operational TSO — per-processor FIFO store
// buffers in front of a single-ported shared memory.
//
//   * write: append (loc, value) to the issuing processor's buffer;
//   * read: newest matching buffer entry if any (store-to-load
//     forwarding), else the shared memory;
//   * internal event i: drain the head of buffer i into shared memory;
//   * rmw: drain own buffer, then read-modify-write the shared memory
//     atomically (SPARC swap semantics).
//
// Note: because the machine forwards from the buffer, it can produce the
// `sb-fwd` litmus trace that the paper's *declarative* TSO forbids (the
// divergence documented in EXPERIMENTS.md); its traces are validated
// against make_tso_fwd().
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "simulate/machine.hpp"

namespace ssm::sim {

class TsoMemory final : public Machine {
 public:
  TsoMemory(std::size_t procs, std::size_t locs)
      : Machine(procs, locs),
        mem_(locs, kInitialValue),
        buffers_(procs) {}

  std::string_view name() const noexcept override { return "tso-machine"; }

  Value read(ProcId p, LocId loc, OpLabel) override {
    const auto& buf = buffers_[p];
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->first == loc) return it->second;
    }
    return mem_[loc];
  }

  void write(ProcId p, LocId loc, Value v, OpLabel) override {
    buffers_[p].emplace_back(loc, v);
  }

  Value rmw(ProcId p, LocId loc, Value v, OpLabel) override {
    while (!buffers_[p].empty()) drain_one(p);
    const Value old = mem_[loc];
    mem_[loc] = v;
    return old;
  }

  /// Writes retire into the local buffer (Local); reads are Local on a
  /// buffer hit, one shared-memory access otherwise; rmw drains the buffer
  /// and accesses memory atomically.
  OpCost classify(ProcId p, OpKind kind, LocId loc, OpLabel) const override {
    switch (kind) {
      case OpKind::Write:
        return OpCost::Local;
      case OpKind::Read: {
        const auto& buf = buffers_[p];
        for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
          if (it->first == loc) return OpCost::Local;
        }
        return OpCost::Memory;
      }
      case OpKind::ReadModifyWrite:
        return OpCost::GlobalFlush;
    }
    return OpCost::Memory;
  }

  std::size_t num_internal_events() const override {
    std::size_t n = 0;
    for (const auto& buf : buffers_) {
      if (!buf.empty()) ++n;
    }
    return n;
  }

  void fire_internal_event(std::size_t k) override {
    for (std::size_t p = 0; p < buffers_.size(); ++p) {
      if (buffers_[p].empty()) continue;
      if (k-- == 0) {
        drain_one(static_cast<ProcId>(p));
        return;
      }
    }
  }

 private:
  void drain_one(ProcId p) {
    const auto [loc, v] = buffers_[p].front();
    buffers_[p].pop_front();
    mem_[loc] = v;
  }

  std::vector<Value> mem_;
  std::vector<std::deque<std::pair<LocId, Value>>> buffers_;
};

[[nodiscard]] std::unique_ptr<Machine> make_tso_machine(std::size_t procs,
                                                        std::size_t locs);

}  // namespace ssm::sim
