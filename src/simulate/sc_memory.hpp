// ScMemory: the baseline machine — a single shared store with immediate,
// atomic reads and writes.  Every trace it can produce is sequentially
// consistent by construction (the scheduler's interleaving *is* the
// witness view).
#pragma once

#include <memory>
#include <vector>

#include "simulate/machine.hpp"

namespace ssm::sim {

class ScMemory final : public Machine {
 public:
  ScMemory(std::size_t procs, std::size_t locs)
      : Machine(procs, locs), mem_(locs, kInitialValue) {}

  std::string_view name() const noexcept override { return "sc-machine"; }

  Value read(ProcId, LocId loc, OpLabel) override { return mem_[loc]; }
  void write(ProcId, LocId loc, Value v, OpLabel) override { mem_[loc] = v; }
  Value rmw(ProcId, LocId loc, Value v, OpLabel) override {
    const Value old = mem_[loc];
    mem_[loc] = v;
    return old;
  }

  /// Sequential consistency: every access is a globally-ordered round
  /// trip before the processor may continue.
  OpCost classify(ProcId, OpKind, LocId, OpLabel) const override {
    return OpCost::Global;
  }

 private:
  std::vector<Value> mem_;
};

[[nodiscard]] std::unique_ptr<Machine> make_sc_machine(std::size_t procs,
                                                       std::size_t locs);

}  // namespace ssm::sim
