#include "simulate/pram_memory.hpp"

namespace ssm::sim {

std::unique_ptr<Machine> make_pram_machine(std::size_t procs,
                                           std::size_t locs) {
  return std::make_unique<PramMemory>(procs, locs);
}

}  // namespace ssm::sim
