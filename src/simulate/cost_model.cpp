#include "simulate/cost_model.hpp"

#include "simulate/scheduler.hpp"

namespace ssm::sim {

CostReport measure_workload(const CostFactory& factory, const Plan& plan,
                            std::size_t locs, const CostParams& params,
                            std::uint64_t seed) {
  std::size_t next = 0;
  return measure_programs(
      factory,
      [&](std::uint32_t) { return run_plan(plan[next++]); },
      static_cast<std::uint32_t>(plan.size()), locs, params, seed);
}

CostReport measure_programs(const CostFactory& factory,
                            const ProgramFactory& make_program,
                            std::uint32_t procs, std::size_t locs,
                            const CostParams& params, std::uint64_t seed,
                            std::uint64_t max_ops) {
  auto machine = factory(procs, locs);
  CostReport report;
  // Drive the programs directly (round-robin with seeded jitter) so we can
  // query classify() before each operation executes.
  std::vector<Program> programs;
  programs.reserve(procs);
  for (std::uint32_t i = 0; i < procs; ++i) {
    programs.push_back(make_program(i));
    programs.back().start();
  }
  Rng rng(seed);
  std::size_t remaining = programs.size();
  while (remaining > 0 && report.ops < max_ops) {
    // Pick a runnable program uniformly.
    std::size_t pick = rng.below(programs.size());
    while (programs[pick].done()) pick = (pick + 1) % programs.size();
    Program& prog = programs[pick];
    const ProcId p = static_cast<ProcId>(pick);
    const MemRequest req = prog.pending();
    const OpKind kind = req.type == ReqType::Write  ? OpKind::Write
                        : req.type == ReqType::Rmw ? OpKind::ReadModifyWrite
                                                    : OpKind::Read;
    if (req.type == ReqType::Read || req.type == ReqType::Write ||
        req.type == ReqType::Rmw) {
      const OpCost cls = machine->classify(p, kind, req.loc, req.label);
      const std::size_t pending = machine->num_internal_events();
      report.cycles += params.cycles(cls, pending);
      ++report.ops;
      switch (cls) {
        case OpCost::Local:
          ++report.local_ops;
          break;
        case OpCost::Memory:
          ++report.memory_ops;
          break;
        default:
          ++report.global_ops;
          break;
      }
    }
    switch (req.type) {
      case ReqType::Read:
        prog.resume_with(machine->read(p, req.loc, req.label));
        break;
      case ReqType::Write:
        machine->write(p, req.loc, req.value, req.label);
        prog.resume_with(0);
        break;
      case ReqType::Rmw:
        prog.resume_with(machine->rmw(p, req.loc, req.value, req.label));
        break;
      default:
        prog.resume_with(0);
        break;
    }
    // Background propagation: drain a random fraction of internal events
    // (they overlap with computation, so they are free for the issuer).
    while (machine->num_internal_events() > 0 && rng.chance(1, 2)) {
      machine->fire_internal_event(
          static_cast<std::size_t>(rng.below(machine->num_internal_events())));
    }
    if (prog.done()) --remaining;
  }
  machine->drain();
  return report;
}

}  // namespace ssm::sim
