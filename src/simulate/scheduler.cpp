#include "simulate/scheduler.hpp"

namespace ssm::sim {

void Scheduler::step_program(std::size_t i, TraceRecorder& trace) {
  Program& prog = programs_[i];
  const ProcId p = static_cast<ProcId>(i);
  const MemRequest req = prog.pending();
  switch (req.type) {
    case ReqType::Read: {
      const Value v = machine_.read(p, req.loc, req.label);
      trace.record_read(p, req.loc, v, req.label);
      prog.resume_with(v);
      break;
    }
    case ReqType::Write: {
      machine_.write(p, req.loc, req.value, req.label);
      trace.record_write(p, req.loc, req.value, req.label);
      prog.resume_with(0);
      break;
    }
    case ReqType::Rmw: {
      const Value old = machine_.rmw(p, req.loc, req.value, req.label);
      trace.record_rmw(p, req.loc, old, req.value, req.label);
      prog.resume_with(old);
      break;
    }
    case ReqType::EnterCs:
      if (cs_observer_) cs_observer_(p, true);
      prog.resume_with(0);
      break;
    case ReqType::ExitCs:
      if (cs_observer_) cs_observer_(p, false);
      prog.resume_with(0);
      break;
    case ReqType::None:
      prog.resume_with(0);
      break;
  }
}

RunResult Scheduler::run() {
  RunResult result;
  TraceRecorder trace(machine_.num_processors(), machine_.num_locations());
  if (op_sink_) trace.set_sink(op_sink_);
  trace.set_keep_history(keep_history_);
  for (auto& prog : programs_) prog.start();

  std::uint32_t spin_budget = options_.max_spin;
  while (result.steps < options_.max_steps) {
    ++result.steps;
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < programs_.size(); ++i) {
      if (!programs_[i].done()) runnable.push_back(i);
    }
    const std::size_t internal = machine_.num_internal_events();
    if (runnable.empty() && internal == 0) {
      result.trace = trace.take();
      return result;  // all done, machine quiescent
    }

    bool fire_internal = false;
    switch (options_.policy) {
      case Policy::Random: {
        const std::uint64_t prog_weight = runnable.size();
        const std::uint64_t int_weight =
            internal > 0 ? options_.internal_weight : 0;
        if (prog_weight == 0) {
          fire_internal = true;
        } else if (int_weight > 0) {
          fire_internal = rng_.below(prog_weight + int_weight) >= prog_weight;
        }
        break;
      }
      case Policy::DelayDelivery:
        if (runnable.empty()) {
          fire_internal = true;
        } else if (internal > 0 && options_.max_spin != 0 &&
                   spin_budget == 0) {
          fire_internal = true;  // forced fairness delivery
        }
        break;
      case Policy::EagerDelivery:
        fire_internal = internal > 0;
        break;
    }

    if (fire_internal && internal > 0) {
      const std::size_t k =
          options_.policy == Policy::Random
              ? static_cast<std::size_t>(rng_.below(internal))
              : 0;
      machine_.fire_internal_event(k);
      ++result.internal_events;
      spin_budget = options_.max_spin;
      if (options_.policy == Policy::EagerDelivery) {
        machine_.drain();
      }
    } else if (!runnable.empty()) {
      const std::size_t pick =
          options_.policy == Policy::Random
              ? runnable[rng_.below(runnable.size())]
              : runnable[result.steps % runnable.size()];
      step_program(pick, trace);
      if (spin_budget > 0) --spin_budget;
    }
  }
  result.livelock = true;
  result.trace = trace.take();
  return result;
}

}  // namespace ssm::sim
