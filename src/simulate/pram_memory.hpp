// PramMemory: the paper's §3.5 operational PRAM — every processor holds a
// complete replica; writes apply locally at once and are broadcast over
// reliable per-sender FIFO channels; receivers apply updates
// asynchronously.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "simulate/machine.hpp"

namespace ssm::sim {

class PramMemory final : public Machine {
 public:
  PramMemory(std::size_t procs, std::size_t locs)
      : Machine(procs, locs),
        replica_(procs, std::vector<Value>(locs, kInitialValue)),
        channel_(procs * procs) {}

  std::string_view name() const noexcept override { return "pram-machine"; }

  Value read(ProcId p, LocId loc, OpLabel) override {
    return replica_[p][loc];
  }

  void write(ProcId p, LocId loc, Value v, OpLabel) override {
    replica_[p][loc] = v;
    for (std::size_t q = 0; q < procs_; ++q) {
      if (q != p) channel_[chan(p, q)].emplace_back(loc, v);
    }
  }

  /// PRAM has no global atomicity to offer; rmw quiesces every channel
  /// (delivering all in-flight updates) and then performs the swap against
  /// all replicas at once, modelling a synchronization instruction that
  /// bypasses the pipelines.
  Value rmw(ProcId p, LocId loc, Value v, OpLabel) override {
    drain();
    const Value old = replica_[p][loc];
    for (auto& rep : replica_) rep[loc] = v;
    return old;
  }

  /// Everything is replica-local; only the out-of-band rmw pays a global
  /// quiesce.
  OpCost classify(ProcId, OpKind kind, LocId, OpLabel) const override {
    return kind == OpKind::ReadModifyWrite ? OpCost::GlobalFlush
                                           : OpCost::Local;
  }

  std::size_t num_internal_events() const override {
    std::size_t n = 0;
    for (const auto& ch : channel_) {
      if (!ch.empty()) ++n;
    }
    return n;
  }

  void fire_internal_event(std::size_t k) override {
    for (std::size_t c = 0; c < channel_.size(); ++c) {
      if (channel_[c].empty()) continue;
      if (k-- == 0) {
        const auto [loc, v] = channel_[c].front();
        channel_[c].pop_front();
        replica_[c % procs_][loc] = v;  // receiver = column index
        return;
      }
    }
  }

 private:
  [[nodiscard]] std::size_t chan(ProcId sender, std::size_t receiver) const {
    return static_cast<std::size_t>(sender) * procs_ + receiver;
  }

  std::vector<std::vector<Value>> replica_;
  /// channel_[sender*procs + receiver]: FIFO of (loc, value) updates.
  std::vector<std::deque<std::pair<LocId, Value>>> channel_;
};

[[nodiscard]] std::unique_ptr<Machine> make_pram_machine(std::size_t procs,
                                                         std::size_t locs);

}  // namespace ssm::sim
