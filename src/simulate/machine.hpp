// Machine: the operational memory interface the scheduler drives.
//
// Each machine realizes one of the paper's operational descriptions
// (store buffers + single-ported memory for TSO, replicas + FIFO broadcast
// for PRAM, …).  Besides the synchronous read/write/rmw entry points,
// machines expose their *internal nondeterminism* — pending buffer drains
// and message deliveries — as a countable set of events the scheduler
// fires in any order it likes.  Adversarial schedules (e.g. delaying all
// deliveries while the Bakery processes race to the critical section) are
// just event-selection policies.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace ssm::sim {

/// How expensive an operation is for the issuing processor — the latency
/// class the consistency model forces it to pay before continuing.  Used
/// by the cost model (cost_model.hpp) to quantify the paper's motivation:
/// weaker consistency lets more operations complete locally.
enum class OpCost : std::uint8_t {
  Local,        ///< satisfied from a local buffer/replica; no waiting
  Memory,       ///< one access to the (single-ported) shared memory
  Global,       ///< a globally-ordered access (round trip + serialization)
  GlobalFlush,  ///< global access that must first drain pending updates
};

class Machine {
 public:
  explicit Machine(std::size_t procs, std::size_t locs)
      : procs_(procs), locs_(locs) {}
  virtual ~Machine() = default;
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] std::size_t num_processors() const noexcept { return procs_; }
  [[nodiscard]] std::size_t num_locations() const noexcept { return locs_; }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  virtual Value read(ProcId p, LocId loc, OpLabel label) = 0;
  virtual void write(ProcId p, LocId loc, Value v, OpLabel label) = 0;

  /// Atomic read-modify-write (swap): returns the previous value.  On
  /// machines with delayed propagation this quiesces the location first,
  /// making the operation globally atomic (hardware synchronization
  /// primitive semantics); see each machine's notes.
  virtual Value rmw(ProcId p, LocId loc, Value v, OpLabel label) = 0;

  /// Latency class the issuing processor pays for this operation under
  /// this machine's consistency discipline, *given the machine's current
  /// state* (e.g. a TSO read is Local on a buffer hit, Memory otherwise).
  /// Query BEFORE executing the operation.
  [[nodiscard]] virtual OpCost classify(ProcId p, OpKind kind, LocId loc,
                                        OpLabel label) const {
    (void)p;
    (void)kind;
    (void)loc;
    (void)label;
    return OpCost::Local;
  }

  /// Number of internal events currently enabled (buffer drains, message
  /// deliveries).  0 for machines with no internal state (SC).
  [[nodiscard]] virtual std::size_t num_internal_events() const { return 0; }

  /// Fires enabled internal event `k` (0 <= k < num_internal_events()).
  virtual void fire_internal_event(std::size_t k) { (void)k; }

  /// Fires internal events until quiescent (used at the end of runs and by
  /// flush-style fences).
  void drain() {
    while (num_internal_events() > 0) fire_internal_event(0);
  }

 protected:
  std::size_t procs_;
  std::size_t locs_;
};

}  // namespace ssm::sim
