#include "simulate/rc_memory.hpp"

namespace ssm::sim {

std::unique_ptr<Machine> make_rc_sc_machine(std::size_t procs,
                                            std::size_t locs) {
  return std::make_unique<RcMemory>(procs, locs, RcMemory::Variant::Sc);
}

std::unique_ptr<Machine> make_rc_pc_machine(std::size_t procs,
                                            std::size_t locs) {
  return std::make_unique<RcMemory>(procs, locs, RcMemory::Variant::Pc);
}

}  // namespace ssm::sim
