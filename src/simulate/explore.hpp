// Exhaustive schedule exploration: enumerate EVERY trace a machine can
// produce on a fixed straight-line workload, by depth-first search over
// all scheduler decisions (which program steps, which buffer drains /
// message deliveries, in every order).
//
// This turns the simulators into bounded model checkers: combined with the
// declarative checkers it gives *complete* operational-vs-declarative
// validation on small programs —
//   soundness:     every reachable trace is admitted by the machine's
//                  declarative model;
//   completeness:  specific weak outcomes (fig. 1's double-stale reads on
//                  the TSO machine, fig. 3's divergence on PRAM, §5's
//                  Bakery double entry on RC_pc) are actually reachable.
//
// Implementation: paths are replayed from scratch for each extension (the
// coroutine/machine state is not copyable), which is O(length) per step —
// perfectly fine at litmus scale.  Distinct traces are deduplicated by
// their canonical rendering.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "history/system_history.hpp"
#include "simulate/machine.hpp"
#include "simulate/workload.hpp"

namespace ssm::sim {

using ExploreFactory =
    std::function<std::unique_ptr<Machine>(std::size_t procs,
                                           std::size_t locs)>;

struct ExploreOptions {
  /// Stop after visiting this many complete schedules (0 = unlimited).
  std::uint64_t max_schedules = 1'000'000;
  /// Abort paths longer than this many steps (guards against drains that
  /// never quiesce; generously above any straight-line workload's needs).
  std::uint32_t max_depth = 256;
};

struct ExploreResult {
  /// Distinct complete traces, rendered with history::format_history.
  std::set<std::string> traces;
  std::uint64_t schedules = 0;
  bool truncated = false;  // hit max_schedules
};

/// Explores every schedule of `plan` (one straight-line op sequence per
/// processor) on machines built by `factory`.
[[nodiscard]] ExploreResult explore_traces(const ExploreFactory& factory,
                                           const Plan& plan,
                                           std::size_t locs,
                                           ExploreOptions options = {});

/// Convenience: explore and return the traces parsed back into histories
/// (useful for feeding the declarative checkers).
[[nodiscard]] std::vector<history::SystemHistory> explore_histories(
    const ExploreFactory& factory, const Plan& plan, std::size_t locs,
    ExploreOptions options = {});

}  // namespace ssm::sim
