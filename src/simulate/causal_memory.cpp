#include "simulate/causal_memory.hpp"

namespace ssm::sim {

std::unique_ptr<Machine> make_causal_machine(std::size_t procs,
                                             std::size_t locs) {
  return std::make_unique<CausalMemory>(procs, locs);
}

}  // namespace ssm::sim
