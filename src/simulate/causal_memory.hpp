// CausalMemory: replicas + vector-clock-tagged causal broadcast, the
// standard implementation of the paper's §3.5 causal memory [Ahamad et
// al. 91].  A write increments the writer's vector-clock entry and is
// broadcast with the clock; a receiver may apply an update only when it is
// *causally ready*:
//
//   msg.vc[sender] == local_vc[sender] + 1   (next from that sender), and
//   msg.vc[k]      <= local_vc[k]  for k != sender (deps delivered).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "simulate/machine.hpp"

namespace ssm::sim {

class CausalMemory final : public Machine {
 public:
  CausalMemory(std::size_t procs, std::size_t locs)
      : Machine(procs, locs),
        replica_(procs, std::vector<Value>(locs, kInitialValue)),
        clock_(procs, std::vector<std::uint32_t>(procs, 0)),
        inbox_(procs) {}

  std::string_view name() const noexcept override {
    return "causal-machine";
  }

  Value read(ProcId p, LocId loc, OpLabel) override {
    return replica_[p][loc];
  }

  void write(ProcId p, LocId loc, Value v, OpLabel) override {
    ++clock_[p][p];
    replica_[p][loc] = v;
    Update u{p, loc, v, clock_[p]};
    for (std::size_t q = 0; q < procs_; ++q) {
      if (q != p) inbox_[q].push_back(u);
    }
  }

  /// Quiesce-then-swap, as in PramMemory (a causal system needs an
  /// out-of-band primitive for global atomicity).
  Value rmw(ProcId p, LocId loc, Value v, OpLabel label) override {
    drain();
    const Value old = replica_[p][loc];
    write(p, loc, v, label);
    drain();
    return old;
  }

  /// Replica-local, like PRAM; rmw quiesces.
  OpCost classify(ProcId, OpKind kind, LocId, OpLabel) const override {
    return kind == OpKind::ReadModifyWrite ? OpCost::GlobalFlush
                                           : OpCost::Local;
  }

  std::size_t num_internal_events() const override {
    std::size_t n = 0;
    for (std::size_t q = 0; q < procs_; ++q) {
      for (const auto& u : inbox_[q]) {
        if (ready(static_cast<ProcId>(q), u)) ++n;
      }
    }
    return n;
  }

  void fire_internal_event(std::size_t k) override {
    for (std::size_t q = 0; q < procs_; ++q) {
      for (std::size_t i = 0; i < inbox_[q].size(); ++i) {
        const Update& u = inbox_[q][i];
        if (!ready(static_cast<ProcId>(q), u)) continue;
        if (k-- == 0) {
          replica_[q][u.loc] = u.value;
          clock_[q][u.sender] = u.vc[u.sender];
          inbox_[q].erase(inbox_[q].begin() +
                          static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
    }
  }

 private:
  struct Update {
    ProcId sender;
    LocId loc;
    Value value;
    std::vector<std::uint32_t> vc;
  };

  [[nodiscard]] bool ready(ProcId receiver, const Update& u) const {
    const auto& local = clock_[receiver];
    if (u.vc[u.sender] != local[u.sender] + 1) return false;
    for (std::size_t k = 0; k < procs_; ++k) {
      if (k != u.sender && u.vc[k] > local[k]) return false;
    }
    return true;
  }

  std::vector<std::vector<Value>> replica_;
  std::vector<std::vector<std::uint32_t>> clock_;
  std::vector<std::deque<Update>> inbox_;
};

[[nodiscard]] std::unique_ptr<Machine> make_causal_machine(std::size_t procs,
                                                           std::size_t locs);

}  // namespace ssm::sim
