// TraceRecorder: accumulates the operations a scheduled run performs into
// a SystemHistory so machine behaviour can be checked against the
// declarative models (operational ⊆ declarative soundness experiments).
#pragma once

#include "history/system_history.hpp"

namespace ssm::sim {

class TraceRecorder {
 public:
  TraceRecorder(std::size_t procs, std::size_t locs);

  void record_read(ProcId p, LocId loc, Value observed, OpLabel label);
  void record_write(ProcId p, LocId loc, Value stored, OpLabel label);
  void record_rmw(ProcId p, LocId loc, Value observed, Value stored,
                  OpLabel label);

  /// The recorded history so far.  Note: histories with repeated write
  /// values fail SystemHistory::validate() and cannot be fed to the
  /// declarative checkers; workloads meant for checking must write
  /// distinct values (the random-program generator and the single-entry
  /// Bakery driver guarantee this).
  [[nodiscard]] const history::SystemHistory& history() const noexcept {
    return hist_;
  }
  [[nodiscard]] history::SystemHistory take() { return std::move(hist_); }

 private:
  history::SystemHistory hist_;
};

}  // namespace ssm::sim
