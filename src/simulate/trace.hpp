// TraceRecorder: accumulates the operations a scheduled run performs into
// a SystemHistory so machine behaviour can be checked against the
// declarative models (operational ⊆ declarative soundness experiments).
#pragma once

#include <functional>
#include <vector>

#include "history/system_history.hpp"

namespace ssm::sim {

class TraceRecorder {
 public:
  /// Streaming observer: invoked once per recorded operation, in record
  /// order, with seq (and, when the history is kept, index) filled in.
  using OpSink = std::function<void(const history::Operation&)>;

  TraceRecorder(std::size_t procs, std::size_t locs);

  /// Installs a per-operation sink (trace export).
  void set_sink(OpSink sink) { sink_ = std::move(sink); }

  /// When disabled, operations are forwarded to the sink only — nothing
  /// accumulates, so multi-million-op runs use O(1) recorder memory.
  /// history()/take() then return an empty history.
  void set_keep_history(bool keep) { keep_ = keep; }

  void record_read(ProcId p, LocId loc, Value observed, OpLabel label);
  void record_write(ProcId p, LocId loc, Value stored, OpLabel label);
  void record_rmw(ProcId p, LocId loc, Value observed, Value stored,
                  OpLabel label);

  /// The recorded history so far.  Note: histories with repeated write
  /// values fail SystemHistory::validate() and cannot be fed to the
  /// declarative checkers; workloads meant for checking must write
  /// distinct values (the random-program generator and the single-entry
  /// Bakery driver guarantee this).
  [[nodiscard]] const history::SystemHistory& history() const noexcept {
    return hist_;
  }
  [[nodiscard]] history::SystemHistory take() { return std::move(hist_); }

 private:
  void record(history::Operation op);

  history::SystemHistory hist_;
  OpSink sink_;
  bool keep_ = true;
  /// Per-processor program-order positions, maintained here when the
  /// history (which normally assigns seq) is not kept.
  std::vector<std::uint32_t> seq_;
};

}  // namespace ssm::sim
