// CoherentMemory: replicated memory with a global per-location write
// sequencer and dependency-constrained update propagation.  Two delivery
// disciplines share the implementation:
//
//   * PerSenderFifo (the Goodman-PC machine): every update depends on the
//     sender's previous update, so each receiver applies a sender's
//     updates in program order (PRAM pipelines) — plus coherence from the
//     sequencer (stale versions are discarded).
//   * Independent (the release-consistency fabric): ordinary updates
//     carry only their acquire-induced dependencies and may overtake each
//     other freely across locations — the paper's "propagated
//     independently ... may arrive in different order at different
//     caches" (§3.4).  A labeled (release) update depends on ALL of the
//     sender's earlier updates, so a receiver applies the release only
//     after the data it publishes has arrived (bracket condition 2), and
//     acquire dependencies (bracket condition 1) ride on subsequent
//     updates as before.
//
// Delivery bookkeeping: per (receiver, sender) we keep a contiguous
// arrival watermark (out-of-order arrivals parked in a set until the gap
// closes), and an update is deliverable when every dependency is at or
// below the corresponding watermark.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "simulate/machine.hpp"

namespace ssm::sim {

class CoherentMemory final : public Machine {
 public:
  enum class Propagation { PerSenderFifo, Independent };

  CoherentMemory(std::size_t procs, std::size_t locs,
                 Propagation propagation = Propagation::PerSenderFifo);

  std::string_view name() const noexcept override {
    return propagation_ == Propagation::PerSenderFifo
               ? "coherent-machine"
               : "coherent-machine(independent)";
  }

  Value read(ProcId p, LocId loc, OpLabel label) override;
  void write(ProcId p, LocId loc, Value v, OpLabel label) override;

  /// Globally atomic swap: quiesce, then write through the sequencer and
  /// deliver everywhere at once.
  Value rmw(ProcId p, LocId loc, Value v, OpLabel label) override;

  /// Reads and writes are replica-local (the sequencer stamp is metadata,
  /// not a round trip for the issuer); rmw quiesces.  Labeled writes pay
  /// Memory for the per-location sequencer serialization.
  OpCost classify(ProcId, OpKind kind, LocId, OpLabel label) const override {
    if (kind == OpKind::ReadModifyWrite) return OpCost::GlobalFlush;
    if (kind == OpKind::Write && label == OpLabel::Labeled) {
      return OpCost::Memory;
    }
    return OpCost::Local;
  }

  std::size_t num_internal_events() const override;
  void fire_internal_event(std::size_t k) override;

  /// Delivers every in-flight update from processor `p` (release fence
  /// support for the RC_sc machine), together with any updates from other
  /// senders they depend on.
  void flush_from(ProcId p);

 private:
  struct Update {
    LocId loc;
    Value value;
    std::uint64_t version;  // per-location coherence stamp
    std::uint64_t seq;      // per-sender sequence number
    std::vector<std::uint64_t> dep;  // per-sender dependencies
  };

  struct Source {
    ProcId sender = 0;
    std::uint64_t seq = 0;  // 0 = initial value (no source write)
  };

  void apply(ProcId at, ProcId sender, const Update& u);
  void record_arrival(std::size_t receiver, ProcId sender,
                      std::uint64_t seq);
  [[nodiscard]] bool deliverable(std::size_t receiver,
                                 const Update& u) const;
  /// Delivers one deliverable update to `receiver` (any sender, any queue
  /// position); returns false when none is deliverable.
  bool deliver_any_to(std::size_t receiver);
  /// Removes and applies channel element `idx` of (sender -> receiver).
  void deliver_at(ProcId sender, std::size_t receiver, std::size_t idx);

  [[nodiscard]] std::size_t chan(ProcId sender, std::size_t receiver) const {
    return static_cast<std::size_t>(sender) * procs_ + receiver;
  }

  Propagation propagation_;
  std::vector<std::vector<Value>> replica_;
  std::vector<std::vector<std::uint64_t>> applied_ver_;
  std::vector<std::vector<Source>> source_;  // [proc][loc] current writer
  std::vector<std::uint64_t> version_;       // per-location next stamp
  std::vector<std::uint64_t> out_seq_;       // per-sender sequence counter
  /// watermark_[r][s]: all of sender s's updates with seq <= watermark
  /// have arrived at r (applied or discarded as stale).
  std::vector<std::vector<std::uint64_t>> watermark_;
  /// Out-of-order arrivals waiting for their gap to close.
  std::vector<std::vector<std::set<std::uint64_t>>> early_;
  /// dep_vec_[p][s]: acquire dependencies accumulated by processor p.
  std::vector<std::vector<std::uint64_t>> dep_vec_;
  std::vector<std::deque<Update>> channel_;
};

[[nodiscard]] std::unique_ptr<Machine> make_coherent_machine(
    std::size_t procs, std::size_t locs);

}  // namespace ssm::sim
