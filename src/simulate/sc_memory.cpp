#include "simulate/sc_memory.hpp"

namespace ssm::sim {

std::unique_ptr<Machine> make_sc_machine(std::size_t procs,
                                         std::size_t locs) {
  return std::make_unique<ScMemory>(procs, locs);
}

}  // namespace ssm::sim
