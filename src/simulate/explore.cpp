#include "simulate/explore.hpp"

#include "history/print.hpp"
#include "simulate/trace.hpp"

namespace ssm::sim {
namespace {

/// One concrete execution being replayed: machine + program coroutines +
/// trace recorder, advanced one externally-chosen step at a time.
class Replayer {
 public:
  Replayer(const ExploreFactory& factory, const Plan& plan,
           std::size_t locs)
      : machine_(factory(plan.size(), locs)),
        trace_(plan.size(), locs) {
    programs_.reserve(plan.size());
    for (const auto& row : plan) {
      programs_.push_back(run_plan(row));
      programs_.back().start();
    }
  }

  /// Choice encoding: [0, P) = resume program i; P + k = fire internal
  /// event k.
  [[nodiscard]] std::vector<std::uint32_t> choices() const {
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < programs_.size(); ++i) {
      if (!programs_[i].done()) {
        out.push_back(static_cast<std::uint32_t>(i));
      }
    }
    const std::size_t internal = machine_->num_internal_events();
    for (std::size_t k = 0; k < internal; ++k) {
      out.push_back(static_cast<std::uint32_t>(programs_.size() + k));
    }
    return out;
  }

  void take(std::uint32_t choice) {
    if (choice < programs_.size()) {
      Program& prog = programs_[choice];
      const ProcId p = static_cast<ProcId>(choice);
      const MemRequest req = prog.pending();
      switch (req.type) {
        case ReqType::Read: {
          const Value v = machine_->read(p, req.loc, req.label);
          trace_.record_read(p, req.loc, v, req.label);
          prog.resume_with(v);
          break;
        }
        case ReqType::Write:
          machine_->write(p, req.loc, req.value, req.label);
          trace_.record_write(p, req.loc, req.value, req.label);
          prog.resume_with(0);
          break;
        case ReqType::Rmw: {
          const Value old = machine_->rmw(p, req.loc, req.value, req.label);
          trace_.record_rmw(p, req.loc, old, req.value, req.label);
          prog.resume_with(old);
          break;
        }
        default:
          prog.resume_with(0);
          break;
      }
    } else {
      machine_->fire_internal_event(choice -
                                    static_cast<std::uint32_t>(
                                        programs_.size()));
    }
  }

  [[nodiscard]] const history::SystemHistory& trace() const {
    return trace_.history();
  }

 private:
  std::unique_ptr<Machine> machine_;
  std::vector<Program> programs_;
  TraceRecorder trace_;
};

class Exploration {
 public:
  Exploration(const ExploreFactory& factory, const Plan& plan,
              std::size_t locs, ExploreOptions options,
              std::vector<history::SystemHistory>* histories)
      : factory_(factory),
        plan_(plan),
        locs_(locs),
        options_(options),
        histories_(histories) {}

  ExploreResult run() {
    std::vector<std::uint32_t> prefix;
    dfs(prefix);
    return std::move(result_);
  }

 private:
  void dfs(std::vector<std::uint32_t>& prefix) {
    if (result_.truncated) return;
    if (prefix.size() > options_.max_depth) {
      result_.truncated = true;
      return;
    }
    Replayer replay(factory_, plan_, locs_);
    for (std::uint32_t c : prefix) replay.take(c);
    const auto cs = replay.choices();
    if (cs.empty()) {
      ++result_.schedules;
      std::string key = history::format_history(replay.trace());
      if (result_.traces.insert(std::move(key)).second &&
          histories_ != nullptr) {
        histories_->push_back(replay.trace());
      }
      if (options_.max_schedules != 0 &&
          result_.schedules >= options_.max_schedules) {
        result_.truncated = true;
      }
      return;
    }
    for (std::uint32_t c : cs) {
      prefix.push_back(c);
      dfs(prefix);
      prefix.pop_back();
      if (result_.truncated) return;
    }
  }

  const ExploreFactory& factory_;
  const Plan& plan_;
  std::size_t locs_;
  ExploreOptions options_;
  std::vector<history::SystemHistory>* histories_;
  ExploreResult result_;
};

}  // namespace

ExploreResult explore_traces(const ExploreFactory& factory, const Plan& plan,
                             std::size_t locs, ExploreOptions options) {
  Exploration e(factory, plan, locs, options, nullptr);
  return e.run();
}

std::vector<history::SystemHistory> explore_histories(
    const ExploreFactory& factory, const Plan& plan, std::size_t locs,
    ExploreOptions options) {
  std::vector<history::SystemHistory> out;
  Exploration e(factory, plan, locs, options, &out);
  (void)e.run();
  return out;
}

}  // namespace ssm::sim
