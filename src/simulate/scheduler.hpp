// Scheduler: drives a set of program coroutines against a Machine,
// choosing at every step between resuming a program and firing one of the
// machine's internal events.
//
// Policies:
//   Random       — uniform choice among enabled steps (seeded, replayable).
//   DelayDelivery— adversarial: always prefer program steps; fire internal
//                  events only when every program is finished or `max_spin`
//                  consecutive program steps have elapsed without an
//                  internal event (keeps spin loops live).  This is the
//                  schedule that exhibits the paper's §5 Bakery violation
//                  on RC_pc: cross-processor writes stay undelivered while
//                  both processes race through the doorway.
//   EagerDelivery— fire all internal events after every program step
//                  (yields the most SC-like behaviour a machine can show).
#pragma once

#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "simulate/machine.hpp"
#include "simulate/program.hpp"
#include "simulate/trace.hpp"

namespace ssm::sim {

enum class Policy {
  Random,
  DelayDelivery,
  EagerDelivery,
};

struct SchedulerOptions {
  Policy policy = Policy::Random;
  std::uint64_t seed = 1;
  /// Random policy: relative weight of internal events vs program steps.
  std::uint32_t internal_weight = 1;
  /// DelayDelivery: force one delivery after this many consecutive program
  /// steps with at least one program spinning (0 = never force).
  std::uint32_t max_spin = 64;
  /// Hard cap on total steps (defends against livelock under adversarial
  /// schedules); the run aborts with Result::livelock = true when hit.
  std::uint64_t max_steps = 1'000'000;
};

/// Observer for critical-section annotations: called with (proc, entering).
using CsObserver = std::function<void(ProcId, bool)>;

struct RunResult {
  history::SystemHistory trace;
  bool livelock = false;
  std::uint64_t steps = 0;
  std::uint64_t internal_events = 0;
};

class Scheduler {
 public:
  Scheduler(Machine& machine, SchedulerOptions options)
      : machine_(machine), options_(options), rng_(options.seed) {}

  /// Adds a processor program; processor ids are assigned in call order
  /// and must match the LocId/ProcId layout the programs assume.
  void add_program(Program p) { programs_.push_back(std::move(p)); }

  void set_cs_observer(CsObserver obs) { cs_observer_ = std::move(obs); }

  /// Streams every recorded operation to `sink` as the run executes
  /// (trace export; see src/trace).
  void set_op_sink(TraceRecorder::OpSink sink) { op_sink_ = std::move(sink); }

  /// When disabled, the run's TraceRecorder forwards to the sink without
  /// accumulating a SystemHistory (RunResult::trace comes back empty), so
  /// multi-million-op runs stay bounded-memory.
  void set_keep_history(bool keep) { keep_history_ = keep; }

  /// Runs all programs to completion (or livelock), returns the recorded
  /// trace.  The machine is drained at the end so every run reaches
  /// quiescence.
  [[nodiscard]] RunResult run();

 private:
  /// Executes program `i`'s pending request; returns true if the program
  /// made progress (annotations count as progress).
  void step_program(std::size_t i, TraceRecorder& trace);

  Machine& machine_;
  SchedulerOptions options_;
  Rng rng_;
  std::vector<Program> programs_;
  CsObserver cs_observer_;
  TraceRecorder::OpSink op_sink_;
  bool keep_history_ = true;
};

}  // namespace ssm::sim
