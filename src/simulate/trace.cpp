#include "simulate/trace.hpp"

namespace ssm::sim {

TraceRecorder::TraceRecorder(std::size_t procs, std::size_t locs)
    : hist_(history::SymbolTable::canonical(procs, locs)) {}

void TraceRecorder::record_read(ProcId p, LocId loc, Value observed,
                                OpLabel label) {
  history::Operation op;
  op.kind = OpKind::Read;
  op.label = label;
  op.proc = p;
  op.loc = loc;
  op.value = observed;
  hist_.append(op);
}

void TraceRecorder::record_write(ProcId p, LocId loc, Value stored,
                                 OpLabel label) {
  history::Operation op;
  op.kind = OpKind::Write;
  op.label = label;
  op.proc = p;
  op.loc = loc;
  op.value = stored;
  hist_.append(op);
}

void TraceRecorder::record_rmw(ProcId p, LocId loc, Value observed,
                               Value stored, OpLabel label) {
  history::Operation op;
  op.kind = OpKind::ReadModifyWrite;
  op.label = label;
  op.proc = p;
  op.loc = loc;
  op.value = stored;
  op.rmw_read = observed;
  hist_.append(op);
}

}  // namespace ssm::sim
