#include "simulate/trace.hpp"

namespace ssm::sim {

TraceRecorder::TraceRecorder(std::size_t procs, std::size_t locs)
    : hist_(history::SymbolTable::canonical(procs, locs)), seq_(procs, 0) {}

void TraceRecorder::record(history::Operation op) {
  if (keep_) {
    const OpIndex i = hist_.append(op);
    if (sink_) sink_(hist_.op(i));
    return;
  }
  op.seq = seq_[op.proc]++;
  if (sink_) sink_(op);
}

void TraceRecorder::record_read(ProcId p, LocId loc, Value observed,
                                OpLabel label) {
  history::Operation op;
  op.kind = OpKind::Read;
  op.label = label;
  op.proc = p;
  op.loc = loc;
  op.value = observed;
  record(op);
}

void TraceRecorder::record_write(ProcId p, LocId loc, Value stored,
                                 OpLabel label) {
  history::Operation op;
  op.kind = OpKind::Write;
  op.label = label;
  op.proc = p;
  op.loc = loc;
  op.value = stored;
  record(op);
}

void TraceRecorder::record_rmw(ProcId p, LocId loc, Value observed,
                               Value stored, OpLabel label) {
  history::Operation op;
  op.kind = OpKind::ReadModifyWrite;
  op.label = label;
  op.proc = p;
  op.loc = loc;
  op.value = stored;
  op.rmw_read = observed;
  record(op);
}

}  // namespace ssm::sim
