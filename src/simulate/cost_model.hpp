// Cost model: a synthetic quantification of the paper's motivation —
// "the strong consistency guarantees provided by traditional memories can
// have a significant impact on the performance of applications [and]
// limit the scalability of shared memory systems" (§1).
//
// Each operation's latency class (Machine::classify) is priced with a
// parameterized interconnect model, and a workload is replayed to yield
// cycles-per-operation per machine.  The *shape* to reproduce: as the
// interconnect latency grows, SC's cost grows linearly with it while the
// weaker machines stay near the local-access cost — with RC_sc between
// (only its synchronization accesses pay), and RC_pc cheaper still.
// Absolute numbers are synthetic by construction; see DESIGN.md's
// substitution table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "simulate/machine.hpp"
#include "simulate/workload.hpp"

namespace ssm::sim {

struct CostParams {
  /// Local buffer / replica access.
  std::uint64_t local = 1;
  /// One access to the shared (single-ported) memory.
  std::uint64_t memory = 20;
  /// A globally-ordered access: interconnect round trip + serialization.
  std::uint64_t interconnect = 100;
  /// Extra cycles per pending internal event drained by a flush.
  std::uint64_t per_flush_entry = 5;

  [[nodiscard]] std::uint64_t cycles(OpCost c,
                                     std::size_t pending) const noexcept {
    switch (c) {
      case OpCost::Local:
        return local;
      case OpCost::Memory:
        return memory;
      case OpCost::Global:
        return interconnect;
      case OpCost::GlobalFlush:
        return interconnect + per_flush_entry * pending;
    }
    return local;
  }
};

struct CostReport {
  std::uint64_t ops = 0;
  std::uint64_t cycles = 0;
  std::uint64_t local_ops = 0;
  std::uint64_t memory_ops = 0;
  std::uint64_t global_ops = 0;
  [[nodiscard]] double cycles_per_op() const {
    return ops == 0 ? 0.0 : static_cast<double>(cycles) /
                                static_cast<double>(ops);
  }
};

using CostFactory =
    std::function<std::unique_ptr<Machine>(std::size_t, std::size_t)>;

/// Replays `plan` on the machine under a fair random schedule, pricing
/// every program operation with `params`.  Internal propagation overlaps
/// with computation (the point of weak memories), so it contributes no
/// issue-latency — only flushes bill for pending work.
[[nodiscard]] CostReport measure_workload(const CostFactory& factory,
                                          const Plan& plan, std::size_t locs,
                                          const CostParams& params,
                                          std::uint64_t seed = 1);

/// Same, but for arbitrary coroutine programs (spin loops allowed): the
/// programs produced by `make_program(i)` for i in [0, procs) run against
/// one machine built by `factory`.  Guarded by `max_ops` against
/// livelock.  Used to price real algorithms (Bakery) rather than
/// straight-line workloads.
using ProgramFactory = std::function<Program(std::uint32_t)>;
[[nodiscard]] CostReport measure_programs(const CostFactory& factory,
                                          const ProgramFactory& make_program,
                                          std::uint32_t procs,
                                          std::size_t locs,
                                          const CostParams& params,
                                          std::uint64_t seed = 1,
                                          std::uint64_t max_ops = 1'000'000);

}  // namespace ssm::sim
