#include "checker/legality.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>

#include "checker/memo.hpp"
#include "common/arena.hpp"
#include "common/metrics.hpp"

namespace ssm::checker {
namespace {

namespace metrics = common::metrics;

thread_local SearchStats g_stats;
thread_local bool g_memoize = true;
thread_local void (*g_slow_legality_hook)() = nullptr;

std::atomic<std::uint64_t> g_agg_nodes{0};
std::atomic<std::uint64_t> g_agg_memo_hits{0};
std::atomic<std::uint64_t> g_agg_memo_misses{0};
std::atomic<std::uint64_t> g_agg_searches{0};
std::atomic<std::uint64_t> g_agg_cancelled{0};
std::atomic<std::uint64_t> g_agg_exhausted{0};

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-worker scratch owning every buffer a ViewSearch needs (the memo
/// itself now lives in checker/memo.hpp).  The litmus workload runs tens
/// of thousands of tiny searches (one per processor per coherence/
/// write-order candidate), so per-search heap traffic dominated
/// construction; recycling the buffers turns it into a handful of
/// memsets.  A small per-arena stack of workspaces handles re-entrancy (a
/// visitor that starts a nested search gets the next workspace down).
struct SearchWorkspace {
  DynBitset scheduled;
  DynBitset ready;
  std::vector<Value> last_value;
  std::vector<char> last_was_rmw;
  std::vector<std::uint32_t> pending_reads;
  std::vector<std::uint64_t> key_scratch;
  std::vector<std::uint64_t> preds;
  std::vector<std::uint32_t> succ_off;
  std::vector<OpIndex> succ;
  std::vector<std::uint32_t> cursor;
  std::vector<std::vector<OpIndex>> frontier_stack;
  View order;
  FailedStateTable failed{0};
};

/// The workspace stack lives in the scheduler lane's WorkerArena rather
/// than a thread_local: a worker that survives across batches keeps its
/// buffers, and caller threads that claim different lanes over time use
/// each lane's resident pool instead of growing one per OS thread.
/// Acquire/release pairs are strictly nested (the lease pins the pool it
/// came from), which makes mid-stack lane switches safe.
struct WorkspacePool {
  std::vector<std::unique_ptr<SearchWorkspace>> pool;
  std::size_t depth = 0;
};

struct WorkspaceLease {
  WorkspacePool* pool;
  SearchWorkspace* ws;
};

WorkspaceLease acquire_workspace() {
  auto& wp = common::this_worker_arena().slot<WorkspacePool>();
  if (wp.depth == wp.pool.size()) {
    wp.pool.push_back(std::make_unique<SearchWorkspace>());
  }
  return WorkspaceLease{&wp, wp.pool[wp.depth++].get()};
}

void release_workspace(const WorkspaceLease& lease) noexcept {
  --lease.pool->depth;
}

/// DFS over downward-closed subsets of the constraint order.  Templated on
/// the visitor so the hot first-witness path (find_legal_view's tiny
/// lambda) inlines instead of bouncing through std::function.
template <typename Visitor>
class ViewSearch {
 public:
  ViewSearch(const SystemHistory& h, const DynBitset& universe,
             const Relation& constraints, const DynBitset& exempt,
             Visitor& visit, const SearchControl& control)
      : h_(h),
        universe_(universe),
        exempt_(exempt),
        visit_(visit),
        control_(control),
        lease_(acquire_workspace()),
        ws_(*lease_.ws),
        scheduled_(ws_.scheduled),
        ready_(ws_.ready),
        target_(universe.count()),
        last_value_(ws_.last_value),
        last_was_rmw_(ws_.last_was_rmw),
        pending_reads_(ws_.pending_reads),
        mask_words_((h.size() + 63) / 64),
        key_scratch_(ws_.key_scratch),
        preds_(ws_.preds),
        succ_off_(ws_.succ_off),
        succ_(ws_.succ),
        frontier_stack_(ws_.frontier_stack),
        order_(ws_.order),
        failed_(ws_.failed) {
    scheduled_.assign(h.size());
    ready_.assign(h.size());
    last_value_.assign(h.num_locations(), kInitialValue);
    last_was_rmw_.assign(h.num_locations(), 0);
    pending_reads_.assign(h.num_locations(), 0);
    key_scratch_.resize(mask_words_ + h.num_locations());
    failed_.reset(mask_words_ + h.num_locations());
    // Precompute the universe-restricted graph once: per-operation
    // predecessor masks (the "all predecessors scheduled" test becomes
    // mask_words_ word-wide AND/compare ops) and a CSR successor list (the
    // frontier update touches only real out-edges).
    preds_.assign(h.size() * mask_words_, 0);
    succ_off_.assign(h.size() + 1, 0);
    universe_.for_each([&](std::size_t i) {
      const auto& op = h_.op(i);
      if (op.is_read() && !exempt_.test(i)) ++pending_reads_[op.loc];
      constraints.successors(i).for_each([&](std::size_t j) {
        if (!universe_.test(j)) return;
        ++succ_off_[i + 1];
        preds_[j * mask_words_ + (i >> 6)] |= std::uint64_t{1} << (i & 63);
      });
    });
    for (std::size_t i = 0; i < h.size(); ++i) {
      succ_off_[i + 1] += succ_off_[i];
    }
    succ_.resize(succ_off_[h.size()]);
    {
      auto& cursor = ws_.cursor;
      cursor.assign(succ_off_.begin(), succ_off_.end() - 1);
      universe_.for_each([&](std::size_t i) {
        constraints.successors(i).for_each([&](std::size_t j) {
          if (universe_.test(j)) succ_[cursor[i]++] = static_cast<OpIndex>(j);
        });
      });
    }
    // Initially ready: universe members with no (universe) predecessor.
    universe_.for_each([&](std::size_t i) {
      const std::uint64_t* p = preds_.data() + i * mask_words_;
      bool none = true;
      for (std::size_t w = 0; w < mask_words_; ++w) {
        if (p[w] != 0) {
          none = false;
          break;
        }
      }
      if (none) ready_.set(i);
    });
    // Never shrinks: deeper stacks' inner vectors keep their capacity for
    // the next deep search on this thread.
    if (frontier_stack_.size() < target_ + 1) {
      frontier_stack_.resize(target_ + 1);
    }
    order_.clear();
    order_.reserve(target_);
  }

  ~ViewSearch() { release_workspace(lease_); }
  ViewSearch(const ViewSearch&) = delete;
  ViewSearch& operator=(const ViewSearch&) = delete;

  /// Returns true if the visitor or the stop token requested early stop.
  bool run() {
    // Search entry probes the deadline unconditionally: per-node charging
    // amortizes its clock reads over kClockStride nodes, so a run of small
    // searches would otherwise never notice a deadline that passed during
    // slow per-node legality work between them.
    if (SearchBudget* b = control_.budget();
        b != nullptr && !b->probe_deadline()) {
      exhausted_ = true;
      stopped_ = true;
    } else {
      dfs();
    }
    // Publish this search's tallies to the thread-local snapshot only now
    // that it is complete.  The counts themselves accumulate in members: a
    // visitor may start a nested search (possibly executed inline on this
    // very thread by the work-stealing scheduler), and a mid-search wipe of
    // g_stats would silently drop every node counted so far — making the
    // aggregate depend on which lane the nested work landed on.
    g_stats = {};
    g_stats.nodes = nodes_;
    g_stats.memo_hits = memo_hits_;
    g_stats.memo_misses = memo_misses_;
    g_stats.searches = 1;
    if (control_.cancelled()) g_stats.cancelled = 1;
    g_stats.exhausted = exhausted_ ? 1 : 0;
    g_agg_nodes.fetch_add(g_stats.nodes, std::memory_order_relaxed);
    g_agg_memo_hits.fetch_add(g_stats.memo_hits, std::memory_order_relaxed);
    g_agg_memo_misses.fetch_add(g_stats.memo_misses,
                                std::memory_order_relaxed);
    g_agg_searches.fetch_add(1, std::memory_order_relaxed);
    g_agg_cancelled.fetch_add(g_stats.cancelled, std::memory_order_relaxed);
    g_agg_exhausted.fetch_add(g_stats.exhausted, std::memory_order_relaxed);
    record_metrics();
    return stopped_;
  }

 private:
  /// Folds this search's totals into the process-wide metrics registry.
  /// One batched update per search: the hot dfs loop touches only plain
  /// thread-local counters, and the instrument references are resolved
  /// once per process (registry addresses are stable for its lifetime).
  void record_metrics() {
    static auto& nodes = metrics::Registry::global().counter("checker.nodes");
    static auto& hits =
        metrics::Registry::global().counter("checker.memo_hits");
    static auto& misses =
        metrics::Registry::global().counter("checker.memo_misses");
    static auto& searches =
        metrics::Registry::global().counter("checker.searches");
    static auto& cancelled =
        metrics::Registry::global().counter("checker.cancelled");
    static auto& exhausted =
        metrics::Registry::global().counter("checker.exhausted");
    static auto& frontier =
        metrics::Registry::global().histogram("checker.frontier_width");
    static auto& latency = metrics::Registry::global().histogram(
        "checker.cancel_latency_ns");
    static auto& probes =
        metrics::Registry::global().counter("memo.lockfree_probes");
    nodes.add(g_stats.nodes);
    hits.add(g_stats.memo_hits);
    misses.add(g_stats.memo_misses);
    // Every memo probe (hit or miss) is a lock-free acquire-load walk.
    probes.add(g_stats.memo_hits + g_stats.memo_misses);
    searches.add(1);
    frontier.observe(max_frontier_);
    if (g_stats.cancelled != 0) {
      cancelled.add(1);
      const std::uint64_t flipped = control_.cancel_time_ns();
      if (flipped != 0) {
        const std::uint64_t now = steady_now_ns();
        latency.observe(now > flipped ? now - flipped : 0);
      }
    }
    if (g_stats.exhausted != 0) exhausted.add(1);
  }

  /// Packs the current (scheduled mask, per-location last value) state into
  /// the scratch buffer — the exact memo key, no information lost.
  [[nodiscard]] const std::uint64_t* pack_state() noexcept {
    std::uint64_t* k = key_scratch_.data();
    const auto& words = scheduled_.words();
    std::copy(words.begin(), words.end(), k);
    for (std::size_t l = 0; l < last_value_.size(); ++l) {
      k[mask_words_ + l] = static_cast<std::uint64_t>(last_value_[l]);
    }
    return k;
  }

  /// Returns true iff at least one complete legal view was found in this
  /// subtree (used to decide whether the entry state is a dead end).
  bool dfs() {
    ++nodes_;
    if (control_.cancelled()) {
      stopped_ = true;
      return false;
    }
    // Budget gate: one node, one unit.  Exhaustion latches in the shared
    // SearchBudget, so every sibling search of the same admission check
    // unwinds on its next node too.
    if (SearchBudget* b = control_.budget();
        b != nullptr && !b->charge(1)) {
      exhausted_ = true;
      stopped_ = true;
      return false;
    }
    if (g_slow_legality_hook != nullptr) g_slow_legality_hook();
    if (order_.size() == target_) {
      if (!visit_(order_)) stopped_ = true;
      return true;
    }
    if (g_memoize) {
      if (failed_.contains(pack_state())) {
        ++memo_hits_;
        return false;
      }
      ++memo_misses_;
    }
    bool found = false;
    // The ready frontier (unscheduled ops whose predecessors are all
    // scheduled) is maintained incrementally as a bitset; snapshot it once
    // per node in ascending index order.  The snapshot is safe because the
    // schedule/undo pair below restores the entry state exactly before the
    // next candidate, so the live frontier at each iteration equals the
    // entry frontier.  Per-depth scratch avoids allocation.
    auto& frontier = frontier_stack_[order_.size()];
    frontier.clear();
    ready_.for_each(
        [&](std::size_t i) { frontier.push_back(static_cast<OpIndex>(i)); });
    if (frontier.size() > max_frontier_) max_frontier_ = frontier.size();
    // Candidate ordering heuristic: expand frontier writes to locations
    // with pending (unscheduled, value-checked) reads first — they are the
    // moves that can discharge a read obligation, so witnesses surface
    // earlier and dead ends are entered with fewer options left.  Both
    // passes see the identical restored state, so each ready candidate is
    // expanded in exactly one pass and the order is deterministic.
    for (int pass = 0; pass < 2 && !stopped_; ++pass) {
      for (OpIndex i : frontier) {
        if (stopped_) break;
        const auto& op = h_.op(i);
        const bool hot = op.is_write() && pending_reads_[op.loc] > 0;
        if ((pass == 0) != hot) continue;
        // Legality gate: a read-like operation must observe the current
        // value of its location at this point in the view (unless exempt,
        // e.g. satisfied by store-buffer forwarding).  An exempt rmw
        // read-part loses its exemption when the previous write to the
        // location is itself an rmw: rmws are global synchronizations, so
        // consecutive same-location rmws chain in every view (this is what
        // makes test-and-set a mutex even on the weakest models).
        const bool checked_read = op.is_read() && !exempt_.test(i);
        const bool chained_rmw = !checked_read && op.is_read() &&
                                 op.kind == OpKind::ReadModifyWrite &&
                                 last_was_rmw_[op.loc] != 0;
        if ((checked_read || chained_rmw) &&
            last_value_[op.loc] != op.read_value()) {
          continue;
        }
        // Schedule: flip the bits, then promote any successor whose
        // predecessor mask is now fully covered by the scheduled mask.
        scheduled_.set(i);
        ready_.reset(i);
        order_.push_back(i);
        const Value saved = last_value_[op.loc];
        // last_was_rmw_ needs no slot in the memo key: write values are
        // distinct per location, so last_value_ already determines which
        // write (and hence which kind) produced it.
        const char saved_rmw = last_was_rmw_[op.loc];
        if (op.is_write()) {
          last_value_[op.loc] = op.value;
          last_was_rmw_[op.loc] = op.kind == OpKind::ReadModifyWrite ? 1 : 0;
        }
        if (checked_read) --pending_reads_[op.loc];
        const auto& sched_words = scheduled_.words();
        for (std::uint32_t s = succ_off_[i]; s < succ_off_[i + 1]; ++s) {
          const OpIndex j = succ_[s];
          if (scheduled_.test(j)) continue;
          const std::uint64_t* p = preds_.data() + j * mask_words_;
          bool covered = true;
          for (std::size_t w = 0; w < mask_words_; ++w) {
            if ((p[w] & ~sched_words[w]) != 0) {
              covered = false;
              break;
            }
          }
          if (covered) ready_.set(j);
        }
        if (dfs()) found = true;
        // Undo.  Every successor has i as a predecessor, so none can be
        // ready once i is unscheduled; i itself was ready at this node.
        for (std::uint32_t s = succ_off_[i]; s < succ_off_[i + 1]; ++s) {
          ready_.reset(succ_[s]);
        }
        if (checked_read) ++pending_reads_[op.loc];
        last_value_[op.loc] = saved;
        last_was_rmw_[op.loc] = saved_rmw;
        order_.pop_back();
        scheduled_.reset(i);
        ready_.set(i);
      }
    }
    // A stopped search (visitor satisfied or cancelled) abandoned part of
    // this subtree, so "no view found" is not a proven dead end — skip the
    // memo insert in that case.
    if (g_memoize && !found && !stopped_) failed_.insert(pack_state());
    return found;
  }

  const SystemHistory& h_;
  const DynBitset& universe_;
  const DynBitset& exempt_;
  Visitor& visit_;
  SearchControl control_;
  /// All mutable buffers live in the recycled per-worker-arena workspace;
  /// the references below just keep the hot-path member names short.
  WorkspaceLease lease_;
  SearchWorkspace& ws_;
  DynBitset& scheduled_;
  /// Unscheduled universe ops whose predecessor masks are covered by
  /// scheduled_ — the DFS frontier, maintained incrementally.
  DynBitset& ready_;
  std::size_t target_;
  std::vector<Value>& last_value_;
  std::vector<char>& last_was_rmw_;
  std::vector<std::uint32_t>& pending_reads_;
  std::size_t mask_words_;
  std::vector<std::uint64_t>& key_scratch_;
  /// h.size() rows × mask_words_ words: row i = universe predecessors of i.
  std::vector<std::uint64_t>& preds_;
  /// CSR successor lists restricted to the universe.
  std::vector<std::uint32_t>& succ_off_;
  std::vector<OpIndex>& succ_;
  /// Per-depth frontier snapshots (reused across visits to each depth).
  std::vector<std::vector<OpIndex>>& frontier_stack_;
  View& order_;
  FailedStateTable& failed_;
  bool stopped_ = false;
  bool exhausted_ = false;
  std::uint64_t max_frontier_ = 0;
  /// Per-search tallies.  Members, not the thread-local g_stats: nested
  /// searches started by the visitor may run on this same thread and must
  /// not clobber the enclosing search's counts (see run()).
  std::uint64_t nodes_ = 0;
  std::uint64_t memo_hits_ = 0;
  std::uint64_t memo_misses_ = 0;
};

/// Adopts the calling thread's ambient budget when the caller supplied no
/// explicit one (see SearchControl docs in legality.hpp).
SearchControl with_ambient_budget(const SearchControl& control) {
  if (control.budget() != nullptr) return control;
  return control.with_budget(current_budget());
}

}  // namespace

std::optional<View> find_legal_view(const SystemHistory& h,
                                    const DynBitset& universe,
                                    const Relation& constraints) {
  return find_legal_view(h, universe, constraints, DynBitset(h.size()));
}

std::optional<View> find_legal_view(const SystemHistory& h,
                                    const DynBitset& universe,
                                    const Relation& constraints,
                                    const DynBitset& exempt,
                                    const SearchControl& control) {
  std::optional<View> result;
  // Devirtualized first-witness path: a concrete lambda, not std::function.
  auto visitor = [&result](const View& v) {
    result = v;
    return false;  // first witness wins
  };
  ViewSearch<decltype(visitor)> search(h, universe, constraints, exempt,
                                       visitor, with_ambient_budget(control));
  search.run();
  return result;
}

bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints,
                         const std::function<bool(const View&)>& visit) {
  return for_each_legal_view(h, universe, constraints, DynBitset(h.size()),
                             visit);
}

bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints, const DynBitset& exempt,
                         const std::function<bool(const View&)>& visit,
                         const SearchControl& control) {
  ViewSearch<const std::function<bool(const View&)>> search(
      h, universe, constraints, exempt, visit, with_ambient_budget(control));
  return search.run();
}

std::optional<std::string> verify_view(const SystemHistory& h,
                                       const DynBitset& universe,
                                       const Relation& constraints,
                                       const View& view) {
  return verify_view(h, universe, constraints, view, DynBitset(h.size()));
}

std::optional<std::string> verify_view(const SystemHistory& h,
                                       const DynBitset& universe,
                                       const Relation& constraints,
                                       const View& view,
                                       const DynBitset& exempt) {
  if (view.size() != universe.count()) {
    return "view size " + std::to_string(view.size()) +
           " != universe size " + std::to_string(universe.count());
  }
  DynBitset seen(h.size());
  for (OpIndex i : view) {
    if (!universe.test(i)) {
      return "operation " + std::to_string(i) + " not in universe";
    }
    if (seen.test(i)) {
      return "operation " + std::to_string(i) + " duplicated";
    }
    seen.set(i);
  }
  // Constraint respect: no edge may point backwards in the view.
  std::vector<std::size_t> pos(h.size(), 0);
  for (std::size_t k = 0; k < view.size(); ++k) pos[view[k]] = k;
  for (OpIndex a : view) {
    bool bad = false;
    OpIndex bad_b = 0;
    constraints.successors(a).for_each([&](std::size_t b) {
      if (universe.test(b) && pos[b] < pos[a]) {
        bad = true;
        bad_b = static_cast<OpIndex>(b);
      }
    });
    if (bad) {
      return "constraint edge " + std::to_string(a) + " -> " +
             std::to_string(bad_b) + " violated";
    }
  }
  // Legality.  Mirrors the search gate, including the rmw chain rule: an
  // exempt rmw read-part is still checked when the previous write to its
  // location was an rmw.
  std::vector<Value> last(h.num_locations(), kInitialValue);
  std::vector<char> last_rmw(h.num_locations(), 0);
  for (OpIndex i : view) {
    const auto& op = h.op(i);
    const bool checked =
        op.is_read() &&
        (!exempt.test(i) ||
         (op.kind == OpKind::ReadModifyWrite && last_rmw[op.loc] != 0));
    if (checked && last[op.loc] != op.read_value()) {
      return "read " + history::to_string(op) + " observes " +
             std::to_string(op.read_value()) + " but location holds " +
             std::to_string(last[op.loc]);
    }
    if (op.is_write()) {
      last[op.loc] = op.value;
      last_rmw[op.loc] = op.kind == OpKind::ReadModifyWrite ? 1 : 0;
    }
  }
  return std::nullopt;
}

SearchStats last_search_stats() noexcept { return g_stats; }

SearchStats aggregate_search_stats() noexcept {
  SearchStats s;
  s.nodes = g_agg_nodes.load(std::memory_order_relaxed);
  s.memo_hits = g_agg_memo_hits.load(std::memory_order_relaxed);
  s.memo_misses = g_agg_memo_misses.load(std::memory_order_relaxed);
  s.searches = g_agg_searches.load(std::memory_order_relaxed);
  s.cancelled = g_agg_cancelled.load(std::memory_order_relaxed);
  s.exhausted = g_agg_exhausted.load(std::memory_order_relaxed);
  return s;
}

void reset_aggregate_search_stats() noexcept {
  g_agg_nodes.store(0, std::memory_order_relaxed);
  g_agg_memo_hits.store(0, std::memory_order_relaxed);
  g_agg_memo_misses.store(0, std::memory_order_relaxed);
  g_agg_searches.store(0, std::memory_order_relaxed);
  g_agg_cancelled.store(0, std::memory_order_relaxed);
  g_agg_exhausted.store(0, std::memory_order_relaxed);
}

void set_memoization_enabled(bool enabled) noexcept { g_memoize = enabled; }

void set_slow_legality_hook_for_testing(void (*hook)()) noexcept {
  g_slow_legality_hook = hook;
}

}  // namespace ssm::checker
