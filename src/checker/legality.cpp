#include "checker/legality.hpp"

#include <unordered_set>

namespace ssm::checker {
namespace {

thread_local SearchStats g_stats;
thread_local bool g_memoize = true;

/// DFS over downward-closed subsets of the constraint order.
class ViewSearch {
 public:
  ViewSearch(const SystemHistory& h, const DynBitset& universe,
             const Relation& constraints, const DynBitset& exempt,
             const std::function<bool(const View&)>& visit)
      : h_(h),
        universe_(universe),
        constraints_(constraints),
        exempt_(exempt),
        visit_(visit),
        scheduled_(h.size()),
        indeg_(constraints.indegrees(universe)),
        target_(universe.count()),
        last_value_(h.num_locations(), kInitialValue) {
    members_.reserve(target_);
    universe_.for_each([&](std::size_t i) {
      members_.push_back(static_cast<OpIndex>(i));
    });
    order_.reserve(target_);
    g_stats = {};
  }

  /// Returns true if the caller requested early stop.
  bool run() {
    dfs();
    return stopped_;
  }

 private:
  /// Memo key: hash of (scheduled mask, per-location last value).  Two
  /// prefixes with the same scheduled set and the same memory state have
  /// identical completion sets, so a failed state never needs re-expansion.
  [[nodiscard]] std::uint64_t state_key() const noexcept {
    std::uint64_t k = scheduled_.hash();
    for (Value v : last_value_) {
      k ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL +
           (k << 6) + (k >> 2);
    }
    return k;
  }

  /// Returns true iff at least one complete legal view was found in this
  /// subtree (used to decide whether the entry state is a dead end).
  bool dfs() {
    ++g_stats.nodes;
    if (order_.size() == target_) {
      if (!visit_(order_)) stopped_ = true;
      return true;
    }
    const std::uint64_t key = g_memoize ? state_key() : 0;
    if (g_memoize && failed_.contains(key)) {
      ++g_stats.memo_hits;
      return false;
    }
    bool found = false;
    for (OpIndex i : members_) {
      if (stopped_) break;
      if (scheduled_.test(i) || indeg_[i] != 0) continue;
      const auto& op = h_.op(i);
      // Legality gate: a read-like operation must observe the current value
      // of its location at this point in the view (unless exempt, e.g.
      // satisfied by store-buffer forwarding).
      if (op.is_read() && !exempt_.test(i) &&
          last_value_[op.loc] != op.read_value()) {
        continue;
      }
      // Schedule.
      scheduled_.set(i);
      order_.push_back(i);
      const Value saved = last_value_[op.loc];
      if (op.is_write()) last_value_[op.loc] = op.value;
      constraints_.successors(i).for_each([&](std::size_t j) {
        if (universe_.test(j)) --indeg_[j];
      });
      if (dfs()) found = true;
      // Undo.
      constraints_.successors(i).for_each([&](std::size_t j) {
        if (universe_.test(j)) ++indeg_[j];
      });
      last_value_[op.loc] = saved;
      order_.pop_back();
      scheduled_.reset(i);
    }
    if (g_memoize && !found && !stopped_) failed_.insert(key);
    return found;
  }

  const SystemHistory& h_;
  const DynBitset& universe_;
  const Relation& constraints_;
  DynBitset exempt_;
  const std::function<bool(const View&)>& visit_;
  DynBitset scheduled_;
  std::vector<std::uint32_t> indeg_;
  std::size_t target_;
  std::vector<Value> last_value_;
  std::vector<OpIndex> members_;
  View order_;
  std::unordered_set<std::uint64_t> failed_;
  bool stopped_ = false;
};

}  // namespace

std::optional<View> find_legal_view(const SystemHistory& h,
                                    const DynBitset& universe,
                                    const Relation& constraints) {
  return find_legal_view(h, universe, constraints, DynBitset(h.size()));
}

std::optional<View> find_legal_view(const SystemHistory& h,
                                    const DynBitset& universe,
                                    const Relation& constraints,
                                    const DynBitset& exempt) {
  std::optional<View> result;
  for_each_legal_view(h, universe, constraints, exempt, [&](const View& v) {
    result = v;
    return false;  // first witness wins
  });
  return result;
}

bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints,
                         const std::function<bool(const View&)>& visit) {
  return for_each_legal_view(h, universe, constraints, DynBitset(h.size()),
                             visit);
}

bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints, const DynBitset& exempt,
                         const std::function<bool(const View&)>& visit) {
  ViewSearch search(h, universe, constraints, exempt, visit);
  return search.run();
}

std::optional<std::string> verify_view(const SystemHistory& h,
                                       const DynBitset& universe,
                                       const Relation& constraints,
                                       const View& view) {
  return verify_view(h, universe, constraints, view, DynBitset(h.size()));
}

std::optional<std::string> verify_view(const SystemHistory& h,
                                       const DynBitset& universe,
                                       const Relation& constraints,
                                       const View& view,
                                       const DynBitset& exempt) {
  if (view.size() != universe.count()) {
    return "view size " + std::to_string(view.size()) +
           " != universe size " + std::to_string(universe.count());
  }
  DynBitset seen(h.size());
  for (OpIndex i : view) {
    if (!universe.test(i)) {
      return "operation " + std::to_string(i) + " not in universe";
    }
    if (seen.test(i)) {
      return "operation " + std::to_string(i) + " duplicated";
    }
    seen.set(i);
  }
  // Constraint respect: no edge may point backwards in the view.
  std::vector<std::size_t> pos(h.size(), 0);
  for (std::size_t k = 0; k < view.size(); ++k) pos[view[k]] = k;
  for (OpIndex a : view) {
    bool bad = false;
    OpIndex bad_b = 0;
    constraints.successors(a).for_each([&](std::size_t b) {
      if (universe.test(b) && pos[b] < pos[a]) {
        bad = true;
        bad_b = static_cast<OpIndex>(b);
      }
    });
    if (bad) {
      return "constraint edge " + std::to_string(a) + " -> " +
             std::to_string(bad_b) + " violated";
    }
  }
  // Legality.
  std::vector<Value> last(h.num_locations(), kInitialValue);
  for (OpIndex i : view) {
    const auto& op = h.op(i);
    if (op.is_read() && !exempt.test(i) && last[op.loc] != op.read_value()) {
      return "read " + history::to_string(op) + " observes " +
             std::to_string(op.read_value()) + " but location holds " +
             std::to_string(last[op.loc]);
    }
    if (op.is_write()) last[op.loc] = op.value;
  }
  return std::nullopt;
}

SearchStats last_search_stats() noexcept { return g_stats; }

void set_memoization_enabled(bool enabled) noexcept { g_memoize = enabled; }

}  // namespace ssm::checker
