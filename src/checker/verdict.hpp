// Verdict: the outcome of asking "does memory model M admit history H?",
// together with machine-checkable evidence when the answer is yes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "checker/legality.hpp"
#include "order/coherence.hpp"

namespace ssm::checker {

struct Verdict {
  /// True iff the history is admitted by the model.  Meaningless when
  /// `inconclusive` is set.
  bool allowed = false;

  /// True when the check ran out of its SearchBudget before reaching a
  /// definitive answer (docs/OBSERVABILITY.md).  Never set on a positive
  /// verdict: a found witness proves admission regardless of how much
  /// budget remains, so only failed searches are downgraded.
  bool inconclusive = false;

  /// Witness per-processor views (index = ProcId).  For single-view models
  /// (SC) every entry is the same sequence.  Empty when !allowed.
  std::vector<View> views;

  /// The coherence order used by the witness, for models with a coherence
  /// mutual-consistency requirement (PC, Goodman-PC, RC, …).
  std::optional<order::CoherenceOrder> coherence;

  /// For RC_sc: the witness global sequence of labeled operations.
  std::optional<View> labeled_order;

  /// Free-form diagnostic (e.g. why the input was rejected).
  std::string note;

  static Verdict yes() {
    Verdict v;
    v.allowed = true;
    return v;
  }
  static Verdict no(std::string why = {}) {
    Verdict v;
    v.allowed = false;
    v.note = std::move(why);
    return v;
  }
  static Verdict undecided(std::string why = {}) {
    Verdict v;
    v.inconclusive = true;
    v.note = std::move(why);
    return v;
  }
};

/// Downgrades a negative verdict to Verdict::undecided when the calling
/// thread's ambient SearchBudget is exhausted (a "no" produced by an
/// aborted search proves nothing).  Positive verdicts pass through
/// untouched — their witness is genuine evidence.  Models wrap their final
/// return in this so budget exhaustion surfaces uniformly as INCONCLUSIVE.
[[nodiscard]] Verdict resolve_with_budget(Verdict v);

/// Pretty-print witness views, one per processor (paper style).
[[nodiscard]] std::string format_verdict(const SystemHistory& h,
                                         const Verdict& v);

}  // namespace ssm::checker
