// Search budgets: graceful degradation for the exponential legal-view
// search (docs/OBSERVABILITY.md).
//
// A SearchBudget caps the total nodes expanded and/or the wall time of one
// admission check.  All searches belonging to the check — including the
// sibling searches fanned out across the thread pool by
// models::solve_per_processor — charge the same shared budget, so the cap
// is global to the check, not per search.  Exhaustion latches: every
// subsequent search under the budget unwinds immediately, and the model
// reports a first-class INCONCLUSIVE verdict (Verdict::undecided) instead
// of a spurious yes/no or an unbounded hang.
//
// Budgets are ambient per thread: the driver (litmus::run_cell, the CLI)
// installs one with a BudgetScope around Model::check; checker and model
// code picks it up via current_budget().  solve_per_processor forwards the
// caller's ambient budget into its worker lambdas explicitly, since
// thread-locals do not cross the pool boundary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace ssm::checker {

/// Limits for one admission check; zero means "unlimited" for that axis.
struct BudgetSpec {
  std::uint64_t max_nodes = 0;
  std::uint64_t timeout_ms = 0;

  [[nodiscard]] constexpr bool unlimited() const noexcept {
    return max_nodes == 0 && timeout_ms == 0;
  }
};

/// Shared, thread-safe budget for one check.  charge() is the only hot
/// call: one relaxed fetch_add per node.  When a deadline is set the
/// steady_clock probe is amortized — the clock is read only when the
/// running total crosses a kClockStride-node boundary, so per-node cost
/// stays a single relaxed RMW.  Node limits still trip exactly (charging
/// is per node, so --max-nodes 1 works).
class SearchBudget {
 public:
  static constexpr std::uint64_t kClockStride = 64;

  explicit SearchBudget(const BudgetSpec& spec)
      : spec_(spec),
        deadline_(spec.timeout_ms == 0
                      ? std::chrono::steady_clock::time_point::max()
                      : std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(spec.timeout_ms)) {}

  /// Charges `n` nodes of work.  Returns false — latching exhaustion —
  /// once either limit trips (or a sibling already tripped it).
  bool charge(std::uint64_t n) noexcept {
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    const std::uint64_t used =
        used_.fetch_add(n, std::memory_order_relaxed) + n;
    if (spec_.max_nodes != 0 && used > spec_.max_nodes) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (spec_.timeout_ms != 0 &&
        (used / kClockStride) != ((used - n) / kClockStride) &&
        std::chrono::steady_clock::now() >= deadline_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Probes the wall-clock deadline unconditionally — no stride
  /// amortization.  charge() only reads the clock when the running total
  /// crosses a kClockStride boundary, so a check whose searches each
  /// expand fewer than kClockStride nodes between long per-node stalls
  /// would never trip --timeout-ms from charging alone; search entry
  /// (ViewSearch::run) and the exhaustion-latch checks (budget_exhausted)
  /// call this instead.  Returns false — latching — once the deadline has
  /// passed (or anything else already tripped the budget).
  bool probe_deadline() noexcept {
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    if (spec_.timeout_ms != 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Trips the exhaustion latch from outside (no nodes charged).  The
  /// portfolio poisons the losing backend's budget together with flipping
  /// the cancel token: cancellation unwinds the search, poisoning makes
  /// the unwound result read as budget exhaustion, so the loser's verdict
  /// degrades to INCONCLUSIVE through the same path as a genuine timeout
  /// instead of surfacing a spurious definite "no".
  void poison() noexcept {
    exhausted_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return exhausted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t nodes_used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const BudgetSpec& spec() const noexcept { return spec_; }

 private:
  BudgetSpec spec_;
  std::chrono::steady_clock::time_point deadline_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<bool> exhausted_{false};
};

/// RAII installation of the calling thread's ambient budget (nestable;
/// restores the previous one on destruction).  Passing nullptr removes the
/// ambient budget for the scope.
class BudgetScope {
 public:
  explicit BudgetScope(SearchBudget* b) noexcept;
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  SearchBudget* prev_;
};

/// The calling thread's ambient budget, or nullptr when unbudgeted.
[[nodiscard]] SearchBudget* current_budget() noexcept;

/// True iff an ambient budget exists and has been exhausted.  Models call
/// this after a failed search to distinguish "proved unsatisfiable" from
/// "ran out of budget" (the latter must become Verdict::undecided).
[[nodiscard]] bool budget_exhausted() noexcept;

/// Charges enumeration work performed outside ViewSearch (linear-extension
/// and coherence-order candidate generation) against the ambient budget.
/// Returns true when work may continue (also when no budget is installed).
bool charge_budget(std::uint64_t n) noexcept;

}  // namespace ssm::checker
