// Legal-view search: the computational heart of the framework.
//
// Paper §2: a sequential history is *legal* when every read returns the
// value of the most recent preceding write to its location (or the initial
// value 0 when no write precedes it).  A memory model admits a history iff
// legal views exist that contain the required operations and respect the
// required constraint relation.  This module decides, for one view at a
// time:
//
//     ∃ a linearization of `universe` extending `constraints`
//       that is legal?
//
// by depth-first search over downward-closed prefixes, scheduling one
// operation at a time while tracking the last write per location.  Failed
// (prefix-mask, last-write-vector) states are memoized in a full-key
// open-addressed table (the key is the exact packed state, not a hash, so
// collisions can never prune a live subtree), which keeps the search
// polynomial-ish on the loosely-constrained views that weak models
// produce.  Candidates are expanded writes-with-pending-readers first,
// which discharges read obligations early.  Litmus-scale inputs (≤ ~40
// operations per view) decide in microseconds.
//
// Searches are cancellable: a SearchControl carrying a shared atomic stop
// token lets sibling searches (models::solve_per_processor fan-out) abort
// this one as soon as any of them proves the history inadmissible.  See
// docs/PARALLELISM.md for the threading model.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

#include "checker/budget.hpp"
#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::checker {

using history::SystemHistory;
using rel::DynBitset;
using rel::Relation;

/// A concrete witness view: operation indices in view order.
using View = std::vector<OpIndex>;

/// Cooperative cancellation and budgeting for a view search.  The cancel
/// flag is polled (relaxed) once per expanded node; flipping it to true
/// makes the search unwind promptly and report "no view found".  A
/// cancelled search never memoizes the subtrees it abandoned, so a later
/// un-cancelled search on the same thread stays sound.
///
/// `budget`, when non-null, is charged per expanded node (batched); an
/// exhausted budget unwinds the search exactly like cancellation, and the
/// exhaustion is visible to the caller through SearchBudget::exhausted()
/// (models turn it into Verdict::undecided).  When no control is supplied,
/// find_legal_view / for_each_legal_view adopt the calling thread's
/// ambient budget (checker::current_budget()).
///
/// `cancel_ns`, when non-null, holds the steady_clock nanosecond timestamp
/// at which the cancel flag was flipped (0 = never); a cancelled search
/// uses it to record its cancellation latency into common::metrics.
class SearchControl {
 public:
  constexpr SearchControl() = default;
  explicit constexpr SearchControl(const std::atomic<bool>* cancel) noexcept
      : cancel_(cancel) {}
  constexpr SearchControl(const std::atomic<bool>* cancel,
                          SearchBudget* budget,
                          const std::atomic<std::uint64_t>* cancel_ns =
                              nullptr) noexcept
      : cancel_(cancel), budget_(budget), cancel_ns_(cancel_ns) {}

  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] SearchBudget* budget() const noexcept { return budget_; }
  /// Copy of this control with `budget` installed (cancel wiring kept).
  [[nodiscard]] constexpr SearchControl with_budget(
      SearchBudget* budget) const noexcept {
    return SearchControl(cancel_, budget, cancel_ns_);
  }
  [[nodiscard]] std::uint64_t cancel_time_ns() const noexcept {
    return cancel_ns_ == nullptr
               ? 0
               : cancel_ns_->load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* cancel_ = nullptr;
  SearchBudget* budget_ = nullptr;
  const std::atomic<std::uint64_t>* cancel_ns_ = nullptr;
};

/// Finds one legal linearization of `universe` extending `constraints`
/// (edges may mention operations outside `universe`; those are ignored).
/// Returns std::nullopt when none exists — or when `control` was
/// cancelled before a witness was found.
///
/// `exempt`, when provided, marks read operations that are excused from
/// the most-recent-write legality gate: their value is justified outside
/// the view (store-buffer forwarding in the TSOfwd model — the read took
/// its value from the issuing processor's buffer, so its placement in the
/// view carries no value obligation).
[[nodiscard]] std::optional<View> find_legal_view(const SystemHistory& h,
                                                  const DynBitset& universe,
                                                  const Relation& constraints);
[[nodiscard]] std::optional<View> find_legal_view(
    const SystemHistory& h, const DynBitset& universe,
    const Relation& constraints, const DynBitset& exempt,
    const SearchControl& control = {});

/// Enumerates every legal linearization, invoking `visit` for each; stops
/// early when `visit` returns false.  Returns true iff stopped early
/// (by the visitor or by cancellation).
bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints,
                         const std::function<bool(const View&)>& visit);
bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints, const DynBitset& exempt,
                         const std::function<bool(const View&)>& visit,
                         const SearchControl& control = {});

/// Validates that `view` is a permutation of `universe`, extends
/// `constraints`, and is legal.  Returns an explanatory message on failure.
/// Used by property tests to machine-check every witness the models emit.
[[nodiscard]] std::optional<std::string> verify_view(
    const SystemHistory& h, const DynBitset& universe,
    const Relation& constraints, const View& view);
[[nodiscard]] std::optional<std::string> verify_view(
    const SystemHistory& h, const DynBitset& universe,
    const Relation& constraints, const View& view, const DynBitset& exempt);

/// Statistics from a view search.  `last_search_stats` reports the most
/// recent search on the calling thread; `aggregate_search_stats` reports
/// process-wide totals accumulated across every search on every worker
/// (reset with reset_aggregate_search_stats), which is how suite-level
/// totals survive the thread-pool fan-out.
struct SearchStats {
  std::uint64_t nodes = 0;
  std::uint64_t memo_hits = 0;
  /// Memo lookups that found no failed-state entry (hits + misses = number
  /// of memo probes, one per non-leaf node while memoization is on).
  std::uint64_t memo_misses = 0;
  /// Number of searches merged into this record (1 for a single search).
  std::uint64_t searches = 0;
  /// Searches that unwound due to SearchControl cancellation.
  std::uint64_t cancelled = 0;
  /// Searches that unwound because their SearchBudget was exhausted.
  std::uint64_t exhausted = 0;

  SearchStats& operator+=(const SearchStats& o) noexcept {
    nodes += o.nodes;
    memo_hits += o.memo_hits;
    memo_misses += o.memo_misses;
    searches += o.searches;
    cancelled += o.cancelled;
    exhausted += o.exhausted;
    return *this;
  }
};
[[nodiscard]] SearchStats last_search_stats() noexcept;
[[nodiscard]] SearchStats aggregate_search_stats() noexcept;
void reset_aggregate_search_stats() noexcept;

/// Ablation hook (bench/ablation_memo): disable the failed-state memo
/// globally on this thread.  Results are identical; only work changes.
void set_memoization_enabled(bool enabled) noexcept;

/// Test hook (thread-local): invoked once per expanded node, simulating
/// long per-node legality work.  tests/checker/budget_test.cpp uses it to
/// pin the unconditional deadline probes on search entry and on
/// exhaustion-latch checks — with only the stride-amortized probe in
/// SearchBudget::charge, a run of sub-kClockStride searches with slow
/// nodes blows far past --timeout-ms.  Pass nullptr to clear.
void set_slow_legality_hook_for_testing(void (*hook)()) noexcept;

/// Test hook (thread-local): collapse the memo table's hash to a constant
/// so every pair of distinct states collides.  With a hash-keyed memo this
/// provokes wrong rejections (the pre-full-key implementation pruned live
/// subtrees on collision); the full-key table must keep returning correct
/// answers.  See tests/checker/memo_collision_test.cpp.
void set_degenerate_memo_hash_for_testing(bool degenerate) noexcept;

}  // namespace ssm::checker
