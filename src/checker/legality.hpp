// Legal-view search: the computational heart of the framework.
//
// Paper §2: a sequential history is *legal* when every read returns the
// value of the most recent preceding write to its location (or the initial
// value 0 when no write precedes it).  A memory model admits a history iff
// legal views exist that contain the required operations and respect the
// required constraint relation.  This module decides, for one view at a
// time:
//
//     ∃ a linearization of `universe` extending `constraints`
//       that is legal?
//
// by depth-first search over downward-closed prefixes, scheduling one
// operation at a time while tracking the last write per location.  Failed
// (prefix-mask, last-write-vector) states are memoized, which keeps the
// search polynomial-ish on the loosely-constrained views that weak models
// produce.  Litmus-scale inputs (≤ ~40 operations per view) decide in
// microseconds.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::checker {

using history::SystemHistory;
using rel::DynBitset;
using rel::Relation;

/// A concrete witness view: operation indices in view order.
using View = std::vector<OpIndex>;

/// Finds one legal linearization of `universe` extending `constraints`
/// (edges may mention operations outside `universe`; those are ignored).
/// Returns std::nullopt when none exists.
///
/// `exempt`, when provided, marks read operations that are excused from
/// the most-recent-write legality gate: their value is justified outside
/// the view (store-buffer forwarding in the TSOfwd model — the read took
/// its value from the issuing processor's buffer, so its placement in the
/// view carries no value obligation).
[[nodiscard]] std::optional<View> find_legal_view(const SystemHistory& h,
                                                  const DynBitset& universe,
                                                  const Relation& constraints);
[[nodiscard]] std::optional<View> find_legal_view(const SystemHistory& h,
                                                  const DynBitset& universe,
                                                  const Relation& constraints,
                                                  const DynBitset& exempt);

/// Enumerates every legal linearization, invoking `visit` for each; stops
/// early when `visit` returns false.  Returns true iff stopped early.
bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints,
                         const std::function<bool(const View&)>& visit);
bool for_each_legal_view(const SystemHistory& h, const DynBitset& universe,
                         const Relation& constraints, const DynBitset& exempt,
                         const std::function<bool(const View&)>& visit);

/// Validates that `view` is a permutation of `universe`, extends
/// `constraints`, and is legal.  Returns an explanatory message on failure.
/// Used by property tests to machine-check every witness the models emit.
[[nodiscard]] std::optional<std::string> verify_view(
    const SystemHistory& h, const DynBitset& universe,
    const Relation& constraints, const View& view);
[[nodiscard]] std::optional<std::string> verify_view(
    const SystemHistory& h, const DynBitset& universe,
    const Relation& constraints, const View& view, const DynBitset& exempt);

/// Statistics from the most recent search on this thread (nodes expanded,
/// memo hits); exposed for the scaling benchmarks.
struct SearchStats {
  std::uint64_t nodes = 0;
  std::uint64_t memo_hits = 0;
};
[[nodiscard]] SearchStats last_search_stats() noexcept;

/// Ablation hook (bench/ablation_memo): disable the failed-state memo
/// globally on this thread.  Results are identical; only work changes.
void set_memoization_enabled(bool enabled) noexcept;

}  // namespace ssm::checker
