#include "checker/verdict.hpp"

#include "checker/budget.hpp"
#include "history/print.hpp"

namespace ssm::checker {

Verdict resolve_with_budget(Verdict v) {
  if (!v.allowed && !v.inconclusive && budget_exhausted()) {
    const SearchBudget* b = current_budget();
    std::string why = "search budget exhausted after " +
                      std::to_string(b->nodes_used()) + " nodes";
    if (!v.note.empty()) why += "; " + v.note;
    return Verdict::undecided(std::move(why));
  }
  return v;
}

std::string format_verdict(const SystemHistory& h, const Verdict& v) {
  std::string out;
  if (v.inconclusive) {
    out = "INCONCLUSIVE";
    if (!v.note.empty()) {
      out += " (";
      out += v.note;
      out += ')';
    }
    out += '\n';
    return out;
  }
  if (!v.allowed) {
    out = "NOT ALLOWED";
    if (!v.note.empty()) {
      out += " (";
      out += v.note;
      out += ')';
    }
    out += '\n';
    return out;
  }
  out = "ALLOWED\n";
  for (std::size_t p = 0; p < v.views.size(); ++p) {
    out += "  S_";
    out += h.symbols().processor_name(static_cast<ProcId>(p));
    out += ": ";
    out += history::format_sequence(h, v.views[p]);
    out += '\n';
  }
  if (v.labeled_order) {
    out += "  labeled order: ";
    out += history::format_sequence(h, *v.labeled_order);
    out += '\n';
  }
  if (v.coherence) {
    out += "  coherence:";
    for (LocId loc = 0; loc < h.num_locations(); ++loc) {
      const auto& seq = v.coherence->writes(loc);
      if (seq.empty()) continue;
      out += ' ';
      out += h.symbols().location_name(loc);
      out += '[';
      for (std::size_t i = 0; i < seq.size(); ++i) {
        if (i != 0) out += " < ";
        out += history::format_op(h, seq[i]);
      }
      out += ']';
    }
    out += '\n';
  }
  if (!v.note.empty()) {
    out += "  note: ";
    out += v.note;
    out += '\n';
  }
  return out;
}

}  // namespace ssm::checker
