#include "checker/witness.hpp"

#include <algorithm>

#include "common/types.hpp"

namespace ssm::checker {
namespace {

/// δ scope of a model's views, keyed by model name (paper parameter 1).
enum class Scope {
  AllOthers,    // δp = a (SC)
  WriteOthers,  // δp = w (everything else per-processor)
  PerLocation,  // Cache: one view per location
  None,         // TSOax: no views, only the memory order
};

Scope scope_of(std::string_view model) {
  if (model == "SC") return Scope::AllOthers;
  if (model == "Cache") return Scope::PerLocation;
  if (model == "TSOax") return Scope::None;
  return Scope::WriteOthers;
}

std::vector<OpIndex> delta_for(const SystemHistory& h, ProcId p,
                               Scope scope) {
  std::vector<OpIndex> out;
  for (const auto& op : h.operations()) {
    if (op.proc == p) continue;
    if (scope == Scope::AllOthers || op.is_write()) out.push_back(op.index);
  }
  return out;
}

void append_index_array(std::string& out, const std::vector<OpIndex>& xs) {
  out += '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
  out += ']';
}

void append_nested_array(std::string& out,
                         const std::vector<std::vector<OpIndex>>& xss) {
  out += '[';
  for (std::size_t i = 0; i < xss.size(); ++i) {
    if (i != 0) out += ',';
    append_index_array(out, xss[i]);
  }
  out += ']';
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

/// Minimal parser for the fixed witness schema.  Accepts arbitrary
/// whitespace; rejects everything outside the schema with a position-
/// annotated InvalidInput.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        c = text_[pos_++];
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  OpIndex parse_index() {
    skip_ws();
    const std::size_t start = pos_;
    std::uint64_t v = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > kNoOp) fail("operation index out of range");
      ++pos_;
    }
    if (pos_ == start) fail("expected an integer");
    return static_cast<OpIndex>(v);
  }

  std::vector<OpIndex> parse_index_array() {
    std::vector<OpIndex> out;
    expect('[');
    if (consume(']')) return out;
    do {
      out.push_back(parse_index());
    } while (consume(','));
    expect(']');
    return out;
  }

  std::vector<std::vector<OpIndex>> parse_nested_array() {
    std::vector<std::vector<OpIndex>> out;
    expect('[');
    if (consume(']')) return out;
    do {
      out.push_back(parse_index_array());
    } while (consume(','));
    expect(']');
    return out;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidInput("witness JSON, offset " + std::to_string(pos_) +
                       ": " + what);
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Witness witness_from_verdict(const SystemHistory& h,
                             std::string_view model_name, const Verdict& v) {
  if (!v.allowed || v.inconclusive) {
    throw InvalidInput("witness_from_verdict: verdict for " +
                       std::string(model_name) +
                       " is not positive; no certificate exists");
  }
  Witness w;
  w.model = std::string(model_name);
  w.views = v.views;
  w.note = v.note;
  const Scope scope = scope_of(w.model);
  switch (scope) {
    case Scope::AllOthers:
    case Scope::WriteOthers:
      w.delta.reserve(w.views.size());
      for (ProcId p = 0; p < w.views.size(); ++p) {
        w.delta.push_back(delta_for(h, p, scope));
      }
      break;
    case Scope::PerLocation:
      w.delta.resize(w.views.size());
      for (LocId loc = 0; loc < w.views.size(); ++loc) {
        for (const auto& op : h.operations()) {
          if (op.loc == loc) w.delta[loc].push_back(op.index);
        }
      }
      break;
    case Scope::None:
      break;
  }
  for (const auto& op : h.operations()) {
    if (op.is_labeled()) w.labeled.push_back(op.index);
  }
  if (v.coherence) {
    std::vector<std::vector<OpIndex>> per_loc;
    per_loc.reserve(h.num_locations());
    for (LocId loc = 0; loc < h.num_locations(); ++loc) {
      per_loc.push_back(v.coherence->writes(loc));
    }
    w.coherence = std::move(per_loc);
  }
  w.labeled_order = v.labeled_order;
  return w;
}

std::string to_json(const Witness& w) {
  std::string out = "{\"model\": \"";
  append_escaped(out, w.model);
  out += "\", \"views\": ";
  append_nested_array(out, w.views);
  out += ", \"delta\": ";
  append_nested_array(out, w.delta);
  out += ", \"labeled\": ";
  append_index_array(out, w.labeled);
  if (w.coherence) {
    out += ", \"coherence\": ";
    append_nested_array(out, *w.coherence);
  }
  if (w.labeled_order) {
    out += ", \"labeled_order\": ";
    append_index_array(out, *w.labeled_order);
  }
  out += ", \"note\": \"";
  append_escaped(out, w.note);
  out += "\"}";
  return out;
}

Witness witness_from_json(std::string_view json) {
  JsonCursor cur(json);
  Witness w;
  bool saw_model = false, saw_views = false, saw_delta = false,
       saw_labeled = false;
  cur.expect('{');
  if (!cur.consume('}')) {
    do {
      const std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "model") {
        w.model = cur.parse_string();
        saw_model = true;
      } else if (key == "views") {
        w.views = cur.parse_nested_array();
        saw_views = true;
      } else if (key == "delta") {
        w.delta = cur.parse_nested_array();
        saw_delta = true;
      } else if (key == "labeled") {
        w.labeled = cur.parse_index_array();
        saw_labeled = true;
      } else if (key == "coherence") {
        w.coherence = cur.parse_nested_array();
      } else if (key == "labeled_order") {
        w.labeled_order = cur.parse_index_array();
      } else if (key == "note") {
        w.note = cur.parse_string();
      } else {
        cur.fail("unknown key '" + key + "'");
      }
    } while (cur.consume(','));
    cur.expect('}');
  }
  if (!cur.at_end()) cur.fail("trailing characters after witness object");
  if (!saw_model || !saw_views || !saw_delta || !saw_labeled) {
    throw InvalidInput(
        "witness JSON: required keys are model, views, delta, labeled");
  }
  return w;
}

}  // namespace ssm::checker
