#include "checker/witness_verifier.hpp"

#include <algorithm>
#include <functional>
#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "history/print.hpp"

// Everything below re-derives the paper's definitions from scratch on a
// plain adjacency matrix.  Resist the urge to call into src/relation or
// src/order here: the point of this translation unit is that it shares no
// derivation code with the engine it audits.

namespace ssm::checker {
namespace {

using history::Operation;

constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

/// Dense adjacency matrix over OpIndex; the verifier's only relation type.
class Edges {
 public:
  explicit Edges(std::size_t n) : n_(n), m_(n * n, 0) {}

  void add(std::size_t a, std::size_t b) { m_[a * n_ + b] = 1; }
  [[nodiscard]] bool has(std::size_t a, std::size_t b) const {
    return m_[a * n_ + b] != 0;
  }

  Edges& operator|=(const Edges& o) {
    for (std::size_t i = 0; i < m_.size(); ++i) m_[i] |= o.m_[i];
    return *this;
  }

  /// Warshall closure; O(n³), fine at litmus scale.
  void close() {
    for (std::size_t k = 0; k < n_; ++k) {
      for (std::size_t i = 0; i < n_; ++i) {
        if (!has(i, k)) continue;
        for (std::size_t j = 0; j < n_; ++j) {
          if (has(k, j)) add(i, j);
        }
      }
    }
  }

 private:
  std::size_t n_;
  std::vector<char> m_;
};

bool po_before(const Operation& a, const Operation& b) {
  return a.proc == b.proc && a.seq < b.seq;
}

Edges po_edges(const SystemHistory& h) {
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    for (const auto& b : h.operations()) {
      if (po_before(a, b)) e.add(a.index, b.index);
    }
  }
  return e;
}

Edges own_po_edges(const SystemHistory& h, ProcId p) {
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    if (a.proc != p) continue;
    for (const auto& b : h.operations()) {
      if (b.proc == p && a.seq < b.seq) e.add(a.index, b.index);
    }
  }
  return e;
}

/// ppo clauses of paper §2; `forwarding` suppresses the same-location
/// clause for store→load pairs satisfied by the issuing processor's store
/// buffer (the TSOfwd reading).  Closure realizes the paper's transitive
/// fourth clause — every base edge is intra-processor.
Edges ppo_edges(const SystemHistory& h, bool forwarding) {
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    for (const auto& b : h.operations()) {
      if (!po_before(a, b)) continue;
      bool same_loc = a.loc == b.loc;
      if (forwarding && same_loc && a.kind == OpKind::Write &&
          b.kind == OpKind::Read && h.writer_of(b.index) == a.index) {
        same_loc = false;
      }
      const bool both_reads = a.is_read() && b.is_read();
      const bool both_writes = a.is_write() && b.is_write();
      const bool read_then_write = a.is_read() && b.is_write();
      if (same_loc || both_reads || both_writes || read_then_write) {
        e.add(a.index, b.index);
      }
    }
  }
  e.close();
  return e;
}

/// ppo restricted to processor p's own operations (RC/WO/HC apply ppo only
/// within the issuing processor's own view).
Edges own_ppo_edges(const SystemHistory& h, bool forwarding, ProcId p) {
  Edges full = ppo_edges(h, forwarding);
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    if (a.proc != p) continue;
    for (const auto& b : h.operations()) {
      if (b.proc == p && full.has(a.index, b.index)) e.add(a.index, b.index);
    }
  }
  return e;
}

Edges causal_edges(const SystemHistory& h) {
  Edges e = po_edges(h);
  for (const auto& r : h.operations()) {
    if (!r.is_read()) continue;
    const OpIndex w = h.writer_of(r.index);
    if (w != kNoOp) e.add(w, r.index);
  }
  e.close();
  return e;
}

/// Reads whose value the issuing processor's store buffer supplies: the
/// read's writer is its own latest program-order-preceding same-location
/// write.  Exempt from the legality gate under TSOfwd.
std::vector<char> forwarded_reads(const SystemHistory& h) {
  std::vector<char> out(h.size(), 0);
  for (const auto& r : h.operations()) {
    if (r.kind != OpKind::Read) continue;
    const OpIndex wi = h.writer_of(r.index);
    if (wi == kNoOp) continue;
    const auto& w = h.op(wi);
    if (w.proc != r.proc || w.seq >= r.seq) continue;
    bool latest = true;
    for (const auto& mid : h.operations()) {
      if (mid.proc == r.proc && mid.is_write() && mid.loc == r.loc &&
          mid.seq > w.seq && mid.seq < r.seq) {
        latest = false;
        break;
      }
    }
    if (latest) out[r.index] = 1;
  }
  return out;
}

/// Bracket conditions of paper §3.4 (with the release erratum corrected,
/// see models/rc.cpp).
Edges bracket_edge_set(const SystemHistory& h) {
  Edges e(h.size());
  for (const auto& s : h.operations()) {
    if (!s.is_labeled()) continue;
    if (s.kind == OpKind::Read) {  // acquire
      const OpIndex acquired = h.writer_of(s.index);
      if (acquired == kNoOp) continue;
      for (const auto& o : h.operations()) {
        if (o.proc == s.proc && o.seq > s.seq && !o.is_labeled()) {
          e.add(acquired, o.index);
        }
      }
    }
    if (s.is_write()) {  // release
      for (const auto& o : h.operations()) {
        if (o.proc == s.proc && o.seq < s.seq && !o.is_labeled()) {
          e.add(o.index, s.index);
        }
      }
    }
  }
  return e;
}

/// Same-processor po pairs with exactly one labeled endpoint (WO fences).
Edges fence_edge_set(const SystemHistory& h) {
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    for (const auto& b : h.operations()) {
      if (po_before(a, b) && a.is_labeled() != b.is_labeled()) {
        e.add(a.index, b.index);
      }
    }
  }
  return e;
}

/// Same-processor po pairs with at least one labeled endpoint (HC).
Edges hybrid_edge_set(const SystemHistory& h) {
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    for (const auto& b : h.operations()) {
      if (po_before(a, b) && (a.is_labeled() || b.is_labeled())) {
        e.add(a.index, b.index);
      }
    }
  }
  return e;
}

/// Position of each write within its location's witness coherence order.
struct CohPositions {
  std::vector<std::size_t> pos;  // kNoPos for non-members
  explicit CohPositions(std::size_t n) : pos(n, kNoPos) {}
  [[nodiscard]] bool precedes(OpIndex a, OpIndex b) const {
    return pos[a] != kNoPos && pos[b] != kNoPos && pos[a] < pos[b];
  }
};

/// Semi-causality sem = (ppo ∪ rwb ∪ rrb)+ of paper §3.3, parameterized by
/// the witness coherence order.  `members`, when non-null, restricts every
/// quantifier to the flagged operations (the labeled subhistory for RCpc);
/// `ppo` must already be the restricted ppo in that case.
Edges semi_causal_edges(const SystemHistory& h, const Edges& ppo,
                        const CohPositions& coh,
                        const std::vector<char>* members) {
  const auto in = [&](const Operation& o) {
    return members == nullptr || (*members)[o.index] != 0;
  };
  Edges e(h.size());
  for (const auto& a : h.operations()) {
    for (const auto& b : h.operations()) {
      if (ppo.has(a.index, b.index)) e.add(a.index, b.index);
    }
  }
  // rwb: w(x)v →rwb r(y)u when the write the read observes is ppo-after w.
  for (const auto& o2 : h.operations()) {
    if (!o2.is_read() || !in(o2)) continue;
    const OpIndex oprime = h.writer_of(o2.index);
    if (oprime == kNoOp || !in(h.op(oprime))) continue;
    for (const auto& o1 : h.operations()) {
      if (!o1.is_write() || !in(o1)) continue;
      if (ppo.has(o1.index, oprime)) e.add(o1.index, o2.index);
    }
  }
  // rrb: r(x)v →rrb w(y)u when a write o' supersedes (in coherence order)
  // the write the read observed and o' →ppo w.
  for (const auto& o1 : h.operations()) {
    if (!o1.is_read() || !in(o1)) continue;
    const OpIndex from = h.writer_of(o1.index);
    for (const auto& oprime : h.operations()) {
      if (!oprime.is_write() || oprime.loc != o1.loc || !in(oprime)) continue;
      const bool old_before_new =
          (from == kNoOp) ||
          (from != oprime.index && coh.precedes(from, oprime.index));
      if (!old_before_new) continue;
      for (const auto& o2 : h.operations()) {
        if (!o2.is_write() || !in(o2)) continue;
        if (ppo.has(oprime.index, o2.index)) e.add(o1.index, o2.index);
      }
    }
  }
  e.close();
  return e;
}

// --- certificate checks ---------------------------------------------------

std::string op_str(const SystemHistory& h, OpIndex i) {
  return history::format_op(h, i);
}

std::optional<std::string> check_indices(const SystemHistory& h,
                                         const Witness& w) {
  const auto bad = [&](const std::vector<OpIndex>& xs) {
    return std::any_of(xs.begin(), xs.end(),
                       [&](OpIndex i) { return i >= h.size(); });
  };
  for (const auto& v : w.views) {
    if (bad(v)) return "view references an operation index out of range";
  }
  for (const auto& d : w.delta) {
    if (bad(d)) return "delta references an operation index out of range";
  }
  if (bad(w.labeled)) return "labeling references an index out of range";
  if (w.coherence) {
    for (const auto& seq : *w.coherence) {
      if (bad(seq)) return "coherence references an index out of range";
    }
  }
  if (w.labeled_order && bad(*w.labeled_order)) {
    return "labeled_order references an index out of range";
  }
  return std::nullopt;
}

std::optional<std::string> check_labeling(const SystemHistory& h,
                                          const Witness& w) {
  std::vector<OpIndex> expected;
  for (const auto& op : h.operations()) {
    if (op.is_labeled()) expected.push_back(op.index);
  }
  std::vector<OpIndex> got = w.labeled;
  std::sort(got.begin(), got.end());
  if (got != expected) {
    return "witness labeling disagrees with the history's labeled set";
  }
  return std::nullopt;
}

std::optional<std::string> check_properly_labeled_indep(
    const SystemHistory& h) {
  for (const auto& op : h.operations()) {
    if (!op.is_labeled() || !op.is_read()) continue;
    const OpIndex w = h.writer_of(op.index);
    if (w != kNoOp && !h.op(w).is_labeled()) {
      return "labeled read " + op_str(h, op.index) +
             " observes an ordinary write (improperly labeled)";
    }
  }
  return std::nullopt;
}

/// The required δ_p for a per-processor view: all other-processor
/// operations (δp = a) or their write-like operations (δp = w).
std::vector<OpIndex> required_delta(const SystemHistory& h, ProcId p,
                                    bool all_others) {
  std::vector<OpIndex> out;
  for (const auto& op : h.operations()) {
    if (op.proc == p) continue;
    if (all_others || op.is_write()) out.push_back(op.index);
  }
  return out;
}

/// view must be a permutation of `universe` (given sorted).
std::optional<std::string> check_permutation(const View& view,
                                             std::vector<OpIndex> universe,
                                             const std::string& what) {
  std::vector<OpIndex> got = view;
  std::sort(got.begin(), got.end());
  if (got != universe) {
    return what + " is not a permutation of its required operation set";
  }
  return std::nullopt;
}

std::optional<std::string> check_respects(const SystemHistory& h,
                                          const View& view, const Edges& e,
                                          const std::string& what) {
  std::vector<std::size_t> pos(h.size(), kNoPos);
  for (std::size_t k = 0; k < view.size(); ++k) pos[view[k]] = k;
  for (std::size_t a = 0; a < h.size(); ++a) {
    if (pos[a] == kNoPos) continue;
    for (std::size_t b = 0; b < h.size(); ++b) {
      if (pos[b] == kNoPos || !e.has(a, b)) continue;
      if (pos[b] < pos[a]) {
        return what + " violates required order " +
               op_str(h, static_cast<OpIndex>(a)) + " -> " +
               op_str(h, static_cast<OpIndex>(b));
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_legal(const SystemHistory& h,
                                       const View& view,
                                       const std::vector<char>& exempt,
                                       const std::string& what) {
  std::vector<Value> last(h.num_locations(), kInitialValue);
  std::vector<char> last_rmw(h.num_locations(), 0);
  for (OpIndex i : view) {
    const auto& op = h.op(i);
    // Mirrors the engine's gate: an exempt rmw read-part is still checked
    // when the previous write to the location was an rmw — consecutive
    // same-location rmws chain in every view.
    const bool checked =
        op.is_read() &&
        (!exempt[i] ||
         (op.kind == OpKind::ReadModifyWrite && last_rmw[op.loc] != 0));
    if (checked && last[op.loc] != op.read_value()) {
      return what + " is illegal: read " + op_str(h, i) + " observes " +
             std::to_string(op.read_value()) + " but the location holds " +
             std::to_string(last[op.loc]);
    }
    if (op.is_write()) {
      last[op.loc] = op.value;
      last_rmw[op.loc] = op.kind == OpKind::ReadModifyWrite ? 1 : 0;
    }
  }
  return std::nullopt;
}

/// Validates the witness coherence order: present, one sequence per
/// location, each a permutation of that location's writes.  Returns the
/// chain edges (pairs within each sequence; labeled endpoints only when
/// `labeled_writes_only`) and fills `pos`.
std::optional<std::string> check_coherence(const SystemHistory& h,
                                           const Witness& w,
                                           bool labeled_writes_only,
                                           Edges& chain, CohPositions& pos) {
  if (!w.coherence) {
    return w.model + " witness lacks the required coherence order";
  }
  if (w.coherence->size() != h.num_locations()) {
    return "coherence order must have one sequence per location";
  }
  for (LocId loc = 0; loc < h.num_locations(); ++loc) {
    const auto& seq = (*w.coherence)[loc];
    std::vector<OpIndex> expected;
    for (const auto& op : h.operations()) {
      if (op.is_write() && op.loc == loc) expected.push_back(op.index);
    }
    std::vector<OpIndex> got = seq;
    std::sort(got.begin(), got.end());
    if (got != expected) {
      return "coherence sequence for location " +
             h.symbols().location_name(loc) +
             " is not a permutation of that location's writes";
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      pos.pos[seq[i]] = i;
      if (labeled_writes_only && !h.op(seq[i]).is_labeled()) continue;
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        if (labeled_writes_only && !h.op(seq[j]).is_labeled()) continue;
        chain.add(seq[i], seq[j]);
      }
    }
  }
  return std::nullopt;
}

/// Validates a shared global sequence over `universe` (given sorted):
/// permutation, po-respecting, legal on its own.  Adds its chain edges.
std::optional<std::string> check_global_sequence(
    const SystemHistory& h, const Witness& w,
    const std::vector<OpIndex>& universe, const std::string& what,
    bool check_legality, Edges& chain) {
  if (!w.labeled_order) {
    return w.model + " witness lacks the required " + what;
  }
  const View& seq = *w.labeled_order;
  if (auto err = check_permutation(seq, universe, what)) return err;
  std::vector<std::size_t> pos(h.size(), kNoPos);
  for (std::size_t k = 0; k < seq.size(); ++k) pos[seq[k]] = k;
  for (const auto& a : h.operations()) {
    if (pos[a.index] == kNoPos) continue;
    for (const auto& b : h.operations()) {
      if (pos[b.index] == kNoPos) continue;
      if (po_before(a, b) && pos[b.index] < pos[a.index]) {
        return what + " violates program order " + op_str(h, a.index) +
               " -> " + op_str(h, b.index);
      }
    }
  }
  if (check_legality) {
    const std::vector<char> no_exempt(h.size(), 0);
    if (auto err = check_legal(h, seq, no_exempt, what)) return err;
  }
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (std::size_t j = i + 1; j < seq.size(); ++j) {
      chain.add(seq[i], seq[j]);
    }
  }
  return std::nullopt;
}

/// The per-processor-view backbone shared by every model except Cache and
/// TSOax: membership (own ops + the model's δp, cross-checked against the
/// stored delta), order respect (shared edges plus optional per-processor
/// edges), and legality.  `exempt_remote_rmw` additionally exempts the read
/// part of other processors' read-modify-writes from each view's legality
/// gate: in models without a shared write order, rmw atomicity is the
/// issuing processor's obligation alone (see checker/scope.hpp).
std::optional<std::string> check_processor_views(
    const SystemHistory& h, const Witness& w, bool all_others,
    const Edges& shared,
    const std::function<const Edges*(ProcId)>& own_extra,
    const std::vector<char>& exempt, bool exempt_remote_rmw = false) {
  if (w.views.size() != h.num_processors()) {
    return "witness has " + std::to_string(w.views.size()) + " views for " +
           std::to_string(h.num_processors()) + " processors";
  }
  if (w.delta.size() != w.views.size()) {
    return "witness delta sets do not align with its views";
  }
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const std::string what =
        "view S_" + h.symbols().processor_name(p);
    const std::vector<OpIndex> required = required_delta(h, p, all_others);
    std::vector<OpIndex> got = w.delta[p];
    std::sort(got.begin(), got.end());
    if (got != required) {
      return "delta set for " + what + " does not match the model's " +
             (all_others ? std::string("\xce\xb4p=a")
                         : std::string("\xce\xb4p=w")) +
             " requirement";
    }
    std::vector<OpIndex> universe = required;
    for (const auto& op : h.operations()) {
      if (op.proc == p) universe.push_back(op.index);
    }
    std::sort(universe.begin(), universe.end());
    if (auto err = check_permutation(w.views[p], std::move(universe),
                                     what)) {
      return err;
    }
    if (auto err = check_respects(h, w.views[p], shared, what)) return err;
    if (const Edges* extra = own_extra ? own_extra(p) : nullptr) {
      if (auto err = check_respects(h, w.views[p], *extra, what)) return err;
    }
    std::vector<char> view_exempt = exempt;
    if (exempt_remote_rmw) {
      for (const auto& op : h.operations()) {
        if (op.kind == OpKind::ReadModifyWrite && op.proc != p) {
          view_exempt[op.index] = 1;
        }
      }
    }
    if (auto err = check_legal(h, w.views[p], view_exempt, what)) return err;
  }
  return std::nullopt;
}

// --- per-model dispatch ---------------------------------------------------

std::optional<std::string> verify_sc(const SystemHistory& h,
                                     const Witness& w) {
  for (std::size_t p = 1; p < w.views.size(); ++p) {
    if (w.views[p] != w.views[0]) {
      return "SC requires all processor views to be the one shared "
             "linearization";
    }
  }
  const Edges po = po_edges(h);
  const std::vector<char> no_exempt(h.size(), 0);
  return check_processor_views(h, w, /*all_others=*/true, po, nullptr,
                               no_exempt);
}

std::optional<std::string> verify_tso(const SystemHistory& h,
                                      const Witness& w, bool forwarding) {
  std::vector<OpIndex> writes;
  for (const auto& op : h.operations()) {
    if (op.is_write()) writes.push_back(op.index);
  }
  Edges constraints = ppo_edges(h, forwarding);
  if (auto err = check_global_sequence(h, w, writes, "global write order",
                                       /*check_legality=*/false,
                                       constraints)) {
    return err;
  }
  const std::vector<char> exempt =
      forwarding ? forwarded_reads(h) : std::vector<char>(h.size(), 0);
  return check_processor_views(h, w, /*all_others=*/false, constraints,
                               nullptr, exempt);
}

std::optional<std::string> verify_tso_axiomatic(const SystemHistory& h,
                                                const Witness& w) {
  if (!w.views.empty()) {
    return "TSOax witness carries no views; its evidence is the memory "
           "order";
  }
  if (!w.labeled_order) return "TSOax witness lacks the memory order M";
  const View& m = *w.labeled_order;
  std::vector<OpIndex> universe(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    universe[i] = static_cast<OpIndex>(i);
  }
  if (auto err = check_permutation(m, std::move(universe),
                                   "memory order M")) {
    return err;
  }
  std::vector<std::size_t> pos(h.size(), 0);
  for (std::size_t k = 0; k < m.size(); ++k) pos[m[k]] = k;
  // po ∖ store→load must be respected (base pairs, not a closure: closing
  // through a dropped edge would resurrect it).
  for (const auto& a : h.operations()) {
    for (const auto& b : h.operations()) {
      if (!po_before(a, b)) continue;
      const bool store_then_load =
          a.kind == OpKind::Write && b.kind == OpKind::Read;
      if (!store_then_load && pos[b.index] < pos[a.index]) {
        return "memory order M violates po \\ S->L at " +
               op_str(h, a.index) + " -> " + op_str(h, b.index);
      }
    }
  }
  // Value axiom with store-buffer forwarding.
  for (const auto& load : h.operations()) {
    if (!load.is_read()) continue;
    bool found = false;
    std::size_t best_pos = 0;
    Value best_value = kInitialValue;
    for (const auto& store : h.operations()) {
      if (!store.is_write() || store.loc != load.loc ||
          store.index == load.index) {
        continue;
      }
      const bool before_in_m = pos[store.index] < pos[load.index];
      const bool own_po_earlier = po_before(store, load);
      if (!before_in_m && !own_po_earlier) continue;
      if (!found || pos[store.index] > best_pos) {
        found = true;
        best_pos = pos[store.index];
        best_value = store.value;
      }
    }
    if (load.read_value() != best_value) {
      return "memory order M violates the Value axiom at " +
             op_str(h, load.index);
    }
  }
  return std::nullopt;
}

std::optional<std::string> verify_cache(const SystemHistory& h,
                                        const Witness& w) {
  if (w.views.size() != h.num_locations()) {
    return "Cache witness must carry one serialization per location";
  }
  if (w.delta.size() != w.views.size()) {
    return "witness delta sets do not align with its views";
  }
  const Edges po = po_edges(h);
  const std::vector<char> no_exempt(h.size(), 0);
  for (LocId loc = 0; loc < h.num_locations(); ++loc) {
    const std::string what =
        "serialization of location " + h.symbols().location_name(loc);
    std::vector<OpIndex> universe;
    for (const auto& op : h.operations()) {
      if (op.loc == loc) universe.push_back(op.index);
    }
    std::vector<OpIndex> got = w.delta[loc];
    std::sort(got.begin(), got.end());
    if (got != universe) {
      return "delta set for " + what +
             " does not match the location's operations";
    }
    if (auto err = check_permutation(w.views[loc], std::move(universe),
                                     what)) {
      return err;
    }
    if (auto err = check_respects(h, w.views[loc], po, what)) return err;
    if (auto err = check_legal(h, w.views[loc], no_exempt, what)) return err;
  }
  return std::nullopt;
}

std::optional<std::string> verify_slow_or_local(const SystemHistory& h,
                                                const Witness& w,
                                                bool pipelines) {
  const std::vector<char> no_exempt(h.size(), 0);
  std::vector<Edges> per_proc;
  per_proc.reserve(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    Edges e = own_po_edges(h, p);
    if (pipelines) {
      // Slow memory: other processors' writes stay ordered per
      // (writer, location) pipeline.
      for (const auto& a : h.operations()) {
        if (a.proc == p || !a.is_write()) continue;
        for (const auto& b : h.operations()) {
          if (b.proc == a.proc && b.is_write() && b.loc == a.loc &&
              a.seq < b.seq) {
            e.add(a.index, b.index);
          }
        }
      }
    }
    per_proc.push_back(std::move(e));
  }
  const Edges none(h.size());
  return check_processor_views(
      h, w, /*all_others=*/false, none,
      [&](ProcId p) { return &per_proc[p]; }, no_exempt,
      /*exempt_remote_rmw=*/true);
}

}  // namespace

std::optional<std::string> verify_witness(const SystemHistory& h,
                                          const Witness& w) {
  if (auto err = check_indices(h, w)) return err;
  if (auto err = check_labeling(h, w)) return err;
  const std::vector<char> no_exempt(h.size(), 0);
  const std::string& m = w.model;

  if (m == "SC") return verify_sc(h, w);
  if (m == "TSO") return verify_tso(h, w, false);
  if (m == "TSOfwd") return verify_tso(h, w, true);
  if (m == "TSOax") return verify_tso_axiomatic(h, w);
  if (m == "Cache") return verify_cache(h, w);
  if (m == "PRAM") {
    return check_processor_views(h, w, false, po_edges(h), nullptr,
                                 no_exempt, /*exempt_remote_rmw=*/true);
  }
  if (m == "Causal") {
    return check_processor_views(h, w, false, causal_edges(h), nullptr,
                                 no_exempt, /*exempt_remote_rmw=*/true);
  }
  if (m == "Slow") return verify_slow_or_local(h, w, true);
  if (m == "Local") return verify_slow_or_local(h, w, false);

  if (m == "PC") {
    Edges chain(h.size());
    CohPositions pos(h.size());
    if (auto err = check_coherence(h, w, false, chain, pos)) return err;
    Edges constraints =
        semi_causal_edges(h, ppo_edges(h, false), pos, nullptr);
    constraints |= chain;
    return check_processor_views(h, w, false, constraints, nullptr,
                                 no_exempt, /*exempt_remote_rmw=*/true);
  }
  if (m == "PCg") {
    Edges constraints(h.size());
    CohPositions pos(h.size());
    if (auto err = check_coherence(h, w, false, constraints, pos)) {
      return err;
    }
    constraints |= po_edges(h);
    return check_processor_views(h, w, false, constraints, nullptr,
                                 no_exempt, /*exempt_remote_rmw=*/true);
  }
  if (m == "CausalCoh" || m == "CausalCohL") {
    const bool labeled_only = m == "CausalCohL";
    if (labeled_only) {
      if (auto err = check_properly_labeled_indep(h)) return err;
    }
    Edges constraints(h.size());
    CohPositions pos(h.size());
    if (auto err = check_coherence(h, w, labeled_only, constraints, pos)) {
      return err;
    }
    constraints |= causal_edges(h);
    return check_processor_views(h, w, false, constraints, nullptr,
                                 no_exempt, /*exempt_remote_rmw=*/true);
  }

  if (m == "WO" || m == "HC" || m == "RCsc" || m == "RCpc" || m == "RCg") {
    if (auto err = check_properly_labeled_indep(h)) return err;
    std::vector<OpIndex> labeled;
    std::vector<char> labeled_flags(h.size(), 0);
    for (const auto& op : h.operations()) {
      if (op.is_labeled()) {
        labeled.push_back(op.index);
        labeled_flags[op.index] = 1;
      }
    }
    Edges shared(h.size());
    CohPositions pos(h.size());
    if (m != "HC") {
      if (auto err = check_coherence(h, w, false, shared, pos)) return err;
      shared |= bracket_edge_set(h);
    }
    if (m == "WO" || m == "HC" || m == "RCsc") {
      // The labeled (strong/synchronization) operations are sequentially
      // consistent: the witness global sequence must itself be a legal
      // po-respecting view of the labeled subhistory.
      if (auto err = check_global_sequence(
              h, w, labeled,
              m == "HC" ? "strong-operation order" : "labeled order",
              /*check_legality=*/true, shared)) {
        return err;
      }
    } else if (m == "RCpc") {
      // The labeled subhistory is processor consistent: its semi-causality
      // order (under the labeled restriction of the coherence order)
      // constrains every view.
      Edges ppo_l(h.size());
      for (const auto& a : h.operations()) {
        if (!a.is_labeled()) continue;
        for (const auto& b : h.operations()) {
          if (!b.is_labeled() || !po_before(a, b)) continue;
          const bool same_loc = a.loc == b.loc;
          const bool both_reads = a.is_read() && b.is_read();
          const bool both_writes = a.is_write() && b.is_write();
          const bool read_then_write = a.is_read() && b.is_write();
          if (same_loc || both_reads || both_writes || read_then_write) {
            ppo_l.add(a.index, b.index);
          }
        }
      }
      ppo_l.close();
      CohPositions pos_l(h.size());
      for (LocId loc = 0; loc < h.num_locations(); ++loc) {
        std::size_t k = 0;
        for (OpIndex wi : (*w.coherence)[loc]) {
          if (h.op(wi).is_labeled()) pos_l.pos[wi] = k++;
        }
      }
      shared |= semi_causal_edges(h, ppo_l, pos_l, &labeled_flags);
    } else {  // RCg: labeled subhistory is PRAM + coherent
      for (const auto& a : h.operations()) {
        if (!a.is_labeled()) continue;
        for (const auto& b : h.operations()) {
          if (b.is_labeled() && po_before(a, b)) shared.add(a.index, b.index);
        }
      }
    }
    if (m == "WO") shared |= fence_edge_set(h);
    if (m == "HC") shared |= hybrid_edge_set(h);
    std::vector<Edges> own;
    own.reserve(h.num_processors());
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      own.push_back(m == "HC" ? own_po_edges(h, p)
                              : own_ppo_edges(h, false, p));
    }
    return check_processor_views(
        h, w, false, shared, [&](ProcId p) { return &own[p]; }, no_exempt,
        /*exempt_remote_rmw=*/true);
  }

  return "unknown model '" + m + "' in witness";
}

}  // namespace ssm::checker
