// Independent re-verification of witness certificates.
//
// verify_witness re-derives every ordering and mutual-consistency
// requirement of the named model from the SystemHistory alone and checks
// the certificate against them.  It is DELIBERATELY independent of the
// checking engine: no rel::Relation, no checker::find_legal_view /
// verify_view, no order:: derivations — everything is recomputed here
// with separate O(n²)/O(n³) code over a plain adjacency matrix.  A bug in
// the search or in the shared order construction therefore cannot
// self-certify: the certificate has to survive a second, structurally
// different implementation of the paper's definitions.
#pragma once

#include <optional>
#include <string>

#include "checker/witness.hpp"
#include "history/system_history.hpp"

namespace ssm::checker {

/// Validates `w` against `h` under the rules of `w.model`.  Returns
/// std::nullopt when the certificate is valid, otherwise a message naming
/// the first violated requirement.  Unknown model names are an error.
[[nodiscard]] std::optional<std::string> verify_witness(
    const SystemHistory& h, const Witness& w);

}  // namespace ssm::checker
