#include "checker/memo.hpp"

#include <algorithm>

namespace ssm::checker {

namespace {
thread_local bool g_degenerate_hash = false;
}  // namespace

void set_degenerate_memo_hash_for_testing(bool degenerate) noexcept {
  g_degenerate_hash = degenerate;
}

FailedStateTable::FailedStateTable(std::size_t key_words)
    : key_words_(key_words),
      slot_count_(kInitialCapacity),
      slots_(new std::atomic<std::uint32_t>[kInitialCapacity]) {
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void FailedStateTable::reset(std::size_t key_words) {
  key_words_ = key_words;
  count_ = 0;
  arena_.clear();
  hashes_.clear();
  if (slot_count_ != kInitialCapacity) {
    slot_count_ = kInitialCapacity;
    slots_.reset(new std::atomic<std::uint32_t>[kInitialCapacity]);
  }
  for (std::size_t i = 0; i < slot_count_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

void FailedStateTable::reserve_states(std::size_t n) {
  arena_.reserve(n * key_words_);
  hashes_.reserve(n);
  // Keep the load factor below 3/4 for all n inserts.
  std::size_t needed = kInitialCapacity;
  while ((n + 1) * 4 > needed * 3) needed *= 2;
  if (needed > slot_count_) rebuild_slots(needed);
}

bool FailedStateTable::key_equals(std::size_t id,
                                  const std::uint64_t* key) const noexcept {
  return std::equal(key, key + key_words_, arena_.data() + id * key_words_);
}

std::uint64_t FailedStateTable::hash(const std::uint64_t* key) const noexcept {
  if (g_degenerate_hash) return 0x5bd1e995ULL;
  std::uint64_t k = 0x243f6a8885a308d3ULL;
  for (std::size_t i = 0; i < key_words_; ++i) {
    k ^= key[i] + 0x9e3779b97f4a7c15ULL + (k << 6) + (k >> 2);
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
  }
  return k;
}

bool FailedStateTable::contains(const std::uint64_t* key) const noexcept {
  const std::uint64_t h = hash(key);
  std::size_t idx = static_cast<std::size_t>(h) & (slot_count_ - 1);
  for (;;) {
    // Acquire pairs with insert()'s release publication: observing a
    // non-zero id guarantees the arena/hash words it indexes are visible.
    const std::uint32_t slot = slots_[idx].load(std::memory_order_acquire);
    if (slot == 0) return false;
    if (hashes_[slot - 1] == h && key_equals(slot - 1, key)) return true;
    idx = (idx + 1) & (slot_count_ - 1);
  }
}

void FailedStateTable::insert(const std::uint64_t* key) {
  if ((count_ + 1) * 4 > slot_count_ * 3) rebuild_slots(slot_count_ * 2);
  const std::uint64_t h = hash(key);
  std::size_t idx = static_cast<std::size_t>(h) & (slot_count_ - 1);
  for (;;) {
    const std::uint32_t slot = slots_[idx].load(std::memory_order_relaxed);
    if (slot == 0) break;
    if (hashes_[slot - 1] == h && key_equals(slot - 1, key)) return;
    idx = (idx + 1) & (slot_count_ - 1);
  }
  // Key bytes first, id last: the release store below is the publication
  // point for concurrent readers.
  arena_.insert(arena_.end(), key, key + key_words_);
  hashes_.push_back(h);
  ++count_;
  slots_[idx].store(static_cast<std::uint32_t>(count_),
                    std::memory_order_release);
}

void FailedStateTable::rebuild_slots(std::size_t new_capacity) {
  std::unique_ptr<std::atomic<std::uint32_t>[]> bigger(
      new std::atomic<std::uint32_t>[new_capacity]);
  for (std::size_t i = 0; i < new_capacity; ++i) {
    bigger[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < slot_count_; ++i) {
    const std::uint32_t slot = slots_[i].load(std::memory_order_relaxed);
    if (slot == 0) continue;
    std::size_t idx =
        static_cast<std::size_t>(hashes_[slot - 1]) & (new_capacity - 1);
    while (bigger[idx].load(std::memory_order_relaxed) != 0) {
      idx = (idx + 1) & (new_capacity - 1);
    }
    bigger[idx].store(slot, std::memory_order_relaxed);
  }
  slots_ = std::move(bigger);
  slot_count_ = new_capacity;
}

}  // namespace ssm::checker
