// View scopes: the paper's parameter (1), "set of operations" δ_p.
//
// A processor's view S_{p+δp} contains all of p's own operations plus δ_p.
// The two natural choices from the paper:
//   * δ_p = a : all operations of other processors (used by SC);
//   * δ_p = w : all write-like operations of other processors (used by TSO,
//     PC, PRAM, causal, RC).
#pragma once

#include "history/system_history.hpp"
#include "relation/bitset.hpp"

namespace ssm::checker {

using history::SystemHistory;
using rel::DynBitset;

/// Own operations plus ALL operations of other processors (δ_p = a).
[[nodiscard]] DynBitset own_plus_all(const SystemHistory& h, ProcId p);

/// Own operations plus write-like operations of other processors (δ_p = w).
[[nodiscard]] DynBitset own_plus_writes(const SystemHistory& h, ProcId p);

/// Mask of every operation.
[[nodiscard]] DynBitset all_ops(const SystemHistory& h);

/// Mask of all write-like operations.
[[nodiscard]] DynBitset write_ops(const SystemHistory& h);

/// Mask of all labeled operations (RC synchronization accesses).
[[nodiscard]] DynBitset labeled_ops(const SystemHistory& h);

/// Read parts of read-modify-writes issued by processors OTHER than `p`.
///
/// A δ_p = w view contains remote rmws because they are write-like, but
/// only the issuing processor's view checks the read part: rmw atomicity
/// is a property of the issuer's local state (every operational machine
/// performs the swap against the issuing replica), not of the orders in
/// which other processors observe unrelated writes.  Models without a
/// shared write order (PRAM, causal, PC, ...) pass this as the exempt set;
/// TSO's common write order makes the remote check hold for free.  The
/// differential fuzzer (src/fuzz) found the stricter remote check breaking
/// both TSO ⊆ Causal and operational soundness of the PRAM/causal machines.
///
/// The exemption is not absolute: the legality gate re-checks an exempt rmw
/// read-part whenever the previous write to its location in the view is
/// itself an rmw.  Rmws are global synchronizations (every machine quiesces
/// and broadcasts), so consecutive same-location rmws chain in every view —
/// this is what keeps test-and-set a mutex even on the weakest models
/// (see the `tas-mutex` suite entry).
[[nodiscard]] DynBitset remote_rmw_reads(const SystemHistory& h, ProcId p);

/// Mask of all operations on one location.
[[nodiscard]] DynBitset ops_on(const SystemHistory& h, LocId loc);

}  // namespace ssm::checker
