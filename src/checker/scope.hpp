// View scopes: the paper's parameter (1), "set of operations" δ_p.
//
// A processor's view S_{p+δp} contains all of p's own operations plus δ_p.
// The two natural choices from the paper:
//   * δ_p = a : all operations of other processors (used by SC);
//   * δ_p = w : all write-like operations of other processors (used by TSO,
//     PC, PRAM, causal, RC).
#pragma once

#include "history/system_history.hpp"
#include "relation/bitset.hpp"

namespace ssm::checker {

using history::SystemHistory;
using rel::DynBitset;

/// Own operations plus ALL operations of other processors (δ_p = a).
[[nodiscard]] DynBitset own_plus_all(const SystemHistory& h, ProcId p);

/// Own operations plus write-like operations of other processors (δ_p = w).
[[nodiscard]] DynBitset own_plus_writes(const SystemHistory& h, ProcId p);

/// Mask of every operation.
[[nodiscard]] DynBitset all_ops(const SystemHistory& h);

/// Mask of all write-like operations.
[[nodiscard]] DynBitset write_ops(const SystemHistory& h);

/// Mask of all labeled operations (RC synchronization accesses).
[[nodiscard]] DynBitset labeled_ops(const SystemHistory& h);

/// Mask of all operations on one location.
[[nodiscard]] DynBitset ops_on(const SystemHistory& h, LocId loc);

}  // namespace ssm::checker
