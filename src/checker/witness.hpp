// Witness certificates: serializable evidence for a positive verdict.
//
// A Verdict proves admission only to the process that computed it; a
// Witness packages the same evidence — the per-processor linearizations
// S_{p+δp}, the δp sets, the labeling, and the mutual-consistency choices
// (coherence order / global sequence) — into a model-tagged, serializable
// record that can be re-validated later, elsewhere, by an independent
// verifier (checker/witness_verifier.hpp).  The JSON encoding is the
// interchange format `ssm check --json` emits; docs/OBSERVABILITY.md
// documents the schema.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "checker/verdict.hpp"
#include "history/system_history.hpp"

namespace ssm::checker {

struct Witness {
  /// name() of the model that produced the verdict; selects the rules the
  /// verifier re-checks the certificate against.
  std::string model;

  /// The linearizations.  Indexed by ProcId for every per-processor-view
  /// model; indexed by LocId for Cache (per-location serializations);
  /// empty for TSOax (whose whole witness is the memory order below).
  std::vector<View> views;

  /// delta[i] = the δ component of views[i]: the operations of OTHER
  /// processors included in S_{p+δp} (paper parameter 1), sorted by dense
  /// index.  δp = a for SC, δp = w for every other per-processor model.
  /// For Cache, delta[loc] is the full operation set of the location
  /// (the δ notion does not apply to per-location views).
  std::vector<std::vector<OpIndex>> delta;

  /// Dense indices of the labeled (synchronization) operations, sorted —
  /// the labeling the certificate was produced under.  The verifier
  /// cross-checks it against the history.
  std::vector<OpIndex> labeled;

  /// Mutual-consistency choice: the shared per-location write orders
  /// (coherence[loc] = write indices in order), for coherence models.
  std::optional<std::vector<std::vector<OpIndex>>> coherence;

  /// Mutual-consistency choice: a shared global sequence.  The global
  /// write order for TSO/TSOfwd, the SC order of labeled operations for
  /// RCsc/WO/HC, the memory order M for TSOax.
  std::optional<View> labeled_order;

  /// Free-form diagnostic carried over from the verdict.
  std::string note;
};

/// Packages a positive verdict from model `model_name` into a Witness.
/// Throws InvalidInput when the verdict is not a positive one (negative
/// and INCONCLUSIVE verdicts carry no certificate).
[[nodiscard]] Witness witness_from_verdict(const SystemHistory& h,
                                           std::string_view model_name,
                                           const Verdict& v);

/// Serializes to the documented JSON schema (stable key order).
[[nodiscard]] std::string to_json(const Witness& w);

/// Parses a witness back from JSON; throws InvalidInput on malformed
/// input.  Round-trip identity: witness_from_json(to_json(w)) == w.
[[nodiscard]] Witness witness_from_json(std::string_view json);

}  // namespace ssm::checker
