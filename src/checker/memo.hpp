// FailedStateTable: the view-search memo, with lock-free reads.
//
// Insert-only open-addressed set of failed search states, keyed by the
// FULL packed state (scheduled-mask words ++ per-location last values),
// not by a hash of it.  The hash only picks the probe start; membership
// is decided by comparing the stored key words, so two distinct states
// can never alias and prune a live subtree (the soundness bug of the
// earlier 64-bit-hash memo).  Keys live densely in an arena; the slot
// array holds 1-based key ids and rehashes by doubling.
//
// Concurrency model (the "atomic slot publication" read path):
//
//   * Slots are std::atomic<uint32_t>.  insert() writes the key words and
//     cached hash into the arena FIRST, then publishes the 1-based id
//     with a release store; contains() loads slots with acquire, so a
//     reader that observes an id also observes the key bytes it indexes.
//     Readers never take a lock and never write shared memory — probes
//     are conflict-free, which the scalable commutativity rule says is
//     exactly what a commutative membership query should compile to.
//   * Single writer, multiple readers: only one thread may insert at a
//     time, and while concurrent readers exist the table must have been
//     pre-sized with reserve_states() so neither the slot array nor the
//     arena reallocates under a reader.  The per-search memo inside
//     ViewSearch is single-owner (one search, one workspace, one table),
//     so it needs no reservation; the concurrent contract is exercised
//     directly by tests/checker/memo_lockfree_test.cpp under TSan.
//
// Membership is exact full-key comparison, so table capacity never
// affects results — node counts are byte-identical whatever the probe
// layout.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ssm::checker {

class FailedStateTable {
 public:
  explicit FailedStateTable(std::size_t key_words);

  /// Rearm for a new search with `key_words`-word keys.  The arena and
  /// hash vectors keep their heap capacity; the slot array shrinks back
  /// to the initial 64 entries (a 256-byte clear) so small searches don't
  /// pay for a predecessor that grew large.
  void reset(std::size_t key_words);

  /// Pre-sizes every internal array for up to `n` inserted states so no
  /// reallocation can happen before the n+1-th insert.  Required before
  /// readers on other threads may probe concurrently with the writer.
  void reserve_states(std::size_t n);

  /// Lock-free membership probe; safe concurrently with one insert()er
  /// after reserve_states().
  [[nodiscard]] bool contains(const std::uint64_t* key) const noexcept;

  /// Single writer only.
  void insert(const std::uint64_t* key);

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  static constexpr std::size_t kInitialCapacity = 64;

  [[nodiscard]] bool key_equals(std::size_t id,
                                const std::uint64_t* key) const noexcept;
  [[nodiscard]] std::uint64_t hash(const std::uint64_t* key) const noexcept;
  void rebuild_slots(std::size_t new_capacity);

  std::size_t key_words_;
  std::size_t count_ = 0;
  std::size_t slot_count_;
  /// 1-based ids into hashes_/arena_; 0 = empty.  Readers acquire-load.
  std::unique_ptr<std::atomic<std::uint32_t>[]> slots_;
  std::vector<std::uint64_t> hashes_;  // cached hash per stored key
  std::vector<std::uint64_t> arena_;   // count_ × key_words_ packed keys
};

/// Forces every key to one probe chain (collision stress for tests).
/// Thread-local: affects only tables used by the calling thread.
void set_degenerate_memo_hash_for_testing(bool degenerate) noexcept;

}  // namespace ssm::checker
