#include "checker/scope.hpp"

namespace ssm::checker {

DynBitset own_plus_all(const SystemHistory& h, ProcId p) {
  (void)p;
  return all_ops(h);
}

DynBitset own_plus_writes(const SystemHistory& h, ProcId p) {
  DynBitset mask(h.size());
  for (const auto& op : h.operations()) {
    if (op.proc == p || op.is_write()) mask.set(op.index);
  }
  return mask;
}

DynBitset all_ops(const SystemHistory& h) {
  DynBitset mask(h.size());
  for (const auto& op : h.operations()) mask.set(op.index);
  return mask;
}

DynBitset write_ops(const SystemHistory& h) {
  DynBitset mask(h.size());
  for (const auto& op : h.operations()) {
    if (op.is_write()) mask.set(op.index);
  }
  return mask;
}

DynBitset labeled_ops(const SystemHistory& h) {
  DynBitset mask(h.size());
  for (const auto& op : h.operations()) {
    if (op.is_labeled()) mask.set(op.index);
  }
  return mask;
}

DynBitset remote_rmw_reads(const SystemHistory& h, ProcId p) {
  DynBitset mask(h.size());
  for (const auto& op : h.operations()) {
    if (op.kind == OpKind::ReadModifyWrite && op.proc != p) {
      mask.set(op.index);
    }
  }
  return mask;
}

DynBitset ops_on(const SystemHistory& h, LocId loc) {
  DynBitset mask(h.size());
  for (const auto& op : h.operations()) {
    if (op.loc == loc) mask.set(op.index);
  }
  return mask;
}

}  // namespace ssm::checker
