#include "checker/budget.hpp"

namespace ssm::checker {
namespace {

thread_local SearchBudget* g_current_budget = nullptr;

}  // namespace

BudgetScope::BudgetScope(SearchBudget* b) noexcept : prev_(g_current_budget) {
  g_current_budget = b;
}

BudgetScope::~BudgetScope() { g_current_budget = prev_; }

SearchBudget* current_budget() noexcept { return g_current_budget; }

bool budget_exhausted() noexcept {
  if (g_current_budget == nullptr) return false;
  // Exhaustion-latch checks probe the deadline unconditionally: a check
  // that blew past --timeout-ms without ever crossing a charge stride must
  // still resolve to INCONCLUSIVE, not a verdict computed over budget.
  g_current_budget->probe_deadline();
  return g_current_budget->exhausted();
}

bool charge_budget(std::uint64_t n) noexcept {
  return g_current_budget == nullptr || g_current_budget->charge(n);
}

}  // namespace ssm::checker
