// Factories for every memory model in the library.
//
// Paper models (§3): SC, TSO, PC (DASH / Gharachorloo et al.), PRAM,
// causal memory, RC_sc, RC_pc.
// Related models used by the paper's comparisons: Goodman's processor
// consistency [Goodman 89, Ahamad et al. 92], cache (coherence-only)
// consistency.
// Extensions (paper §7 "identifying new memories" and the surrounding
// literature): causal+coherent memory, slow memory, local consistency, and
// a store-forwarding TSO variant (see tso.cpp for why it differs from the
// paper's characterization).
#pragma once

#include "models/model.hpp"

namespace ssm::models {

/// Sequential consistency [Lamport 79]: one legal order of all operations,
/// shared by every processor, extending program order.
[[nodiscard]] ModelPtr make_sc();

/// Total store ordering (paper §3.2, after Sindhu et al.): δp = w; all
/// views agree on the order of all writes; ppo preserved.
[[nodiscard]] ModelPtr make_tso();

/// TSO with store-to-load forwarding treated as in the SPARC/x86 axiomatic
/// models: the same-location write→read program edge of a read satisfied
/// from the local buffer does not globally order the write before later
/// reads.  Admits `w(x)1 r(x)1 r(y)0 ∥ w(y)1 r(y)1 r(x)0`, which the
/// paper's characterization forbids — an intentional, documented divergence
/// (EXPERIMENTS.md "TSO forwarding note").
[[nodiscard]] ModelPtr make_tso_fwd();

/// Axiomatic TSO after Sindhu et al. (the paper's ref [17], compared in
/// §6): a single memory order over all operations (po preserved except
/// store→load) with the Value axiom supplying loads, including
/// store-buffer forwarding.  Decided by exhaustive memory-order
/// enumeration; litmus scale only.
[[nodiscard]] ModelPtr make_tso_axiomatic();

/// Processor consistency as implemented in DASH (paper §3.3): δp = w;
/// coherence; semi-causality order sem = (ppo ∪ rwb ∪ rrb)+ preserved.
[[nodiscard]] ModelPtr make_pc();

/// Goodman's processor consistency (= PRAM + coherence): δp = w; coherence;
/// full program order preserved.  Incomparable with DASH PC [Ahamad 92].
[[nodiscard]] ModelPtr make_goodman();

/// PRAM / pipelined RAM [Lipton-Sandberg] (paper §3.5): δp = w; no mutual
/// consistency; program order preserved.
[[nodiscard]] ModelPtr make_pram();

/// Causal memory [Ahamad et al. 91] (paper §3.5): δp = w; no mutual
/// consistency; causal order (po ∪ wb)+ preserved.
[[nodiscard]] ModelPtr make_causal();

/// Cache consistency (coherence only) [Goodman 89]: per-location sequential
/// consistency; no cross-location requirement.
[[nodiscard]] ModelPtr make_cache();

/// Slow memory [Hutto-Ahamad] (extension): δp = w; own program order plus
/// per-(writer, location) order of other processors' writes.
[[nodiscard]] ModelPtr make_slow();

/// Local consistency (extension; weakest useful memory): δp = w; only a
/// processor's own program order constrains its view.
[[nodiscard]] ModelPtr make_local();

/// Causal + coherence (the new memory sketched in the paper's §7): causal
/// memory with an added coherence mutual-consistency requirement.
[[nodiscard]] ModelPtr make_causal_coherent();

/// The paper's second §7 suggestion: causal memory where the coherence
/// requirement covers only the labeled writes.
[[nodiscard]] ModelPtr make_causal_coherent_labeled();

/// Release consistency with sequentially consistent labeled operations
/// (paper §3.4, RC_sc).
[[nodiscard]] ModelPtr make_rc_sc();

/// Release consistency with processor consistent labeled operations
/// (paper §3.4, RC_pc).
[[nodiscard]] ModelPtr make_rc_pc();

/// Weak ordering [Dubois et al. 88] (the paper's reference [1]): SC
/// synchronization operations that fence ordinary operations in both
/// directions, plus coherence.  Strictly stronger than RC_sc.
[[nodiscard]] ModelPtr make_weak_ordering();

/// Hybrid consistency [Attiya-Friedman 92] (the paper's reference [4]):
/// SC strong operations; weak operations ordered only against strong ones
/// (no coherence for weak operations).
[[nodiscard]] ModelPtr make_hybrid();

/// Release consistency with Goodman-PC (PRAM + coherence) labeled
/// operations (extension): the declarative counterpart of the operational
/// rc-pc machine, whose labeled fabric provides per-sender FIFO +
/// per-location sequencing rather than DASH semi-causality.
[[nodiscard]] ModelPtr make_rc_goodman();

}  // namespace ssm::models
