// Processor consistency as defined for DASH by Gharachorloo et al.
// (paper §3.3).
//
// δp = w.  Mutual consistency: coherence — a per-location total order of
// writes shared by all views.  Ordering: the semi-causality relation
// sem = (ppo ∪ rwb ∪ rrb)+, where rrb depends on the chosen coherence
// order.
//
// Decision procedure: enumerate coherence orders (per-location linear
// extensions of ppo over that location's writes); for each, build sem,
// reject if sem ∪ coherence is cyclic, otherwise run per-processor
// legal-view searches constrained by sem ∪ coherence chains.
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"
#include "order/semi_causal.hpp"

namespace ssm::models {
namespace {

class PcModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "PC"; }
  std::string_view description() const noexcept override {
    return "processor consistency (DASH, paper §3.3): coherence + "
           "semi-causality order";
  }

  Verdict check(const SystemHistory& h) const override {
    const order::Orders ord(h);
    const auto& ppo = ord.ppo();
    const auto& rwb = ord.rwb();
    Verdict result = Verdict::no();
    order::for_each_coherence_order(
        h, ppo, [&](const order::CoherenceOrder& coh) {
          if (!checker::charge_budget(1)) return false;
          rel::Relation constraints =
              order::semi_causal(h, ppo, rwb, coh) | coh.as_relation();
          if (!constraints.is_acyclic()) return true;  // next coherence order
          Verdict attempt;
          if (solve_per_processor(h, [&](ProcId p) {
                return ViewProblem{checker::own_plus_writes(h, p),
                                   constraints,
                                   checker::remote_rmw_reads(h, p)};
              }, attempt)) {
            result = std::move(attempt);
            result.coherence = coh;
            return false;
          }
          return true;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.coherence) return "PC witness lacks a coherence order";
    const order::Orders ord(h);
    const auto& ppo = ord.ppo();
    rel::Relation constraints =
        order::semi_causal(h, ppo, ord.rwb(), *v.coherence) |
        v.coherence->as_relation();
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), constraints,
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_pc() { return std::make_unique<PcModel>(); }

}  // namespace ssm::models
