// Name-indexed access to every model, plus the canonical ordering used by
// classification tables (strongest first, per the paper's Figure 5).
#pragma once

#include <vector>

#include "models/models.hpp"

namespace ssm::models {

/// All models, strongest-to-weakest by Figure 5 (extensions interleaved at
/// their lattice positions; incomparable models in a stable documented
/// order): SC, TSO, TSOfwd, PC, PCg, WO, HC, RCsc, RCpc, RCg, CausalCoh,
/// Causal, Cache, PRAM, Slow, Local.
[[nodiscard]] std::vector<ModelPtr> all_models();

/// The seven models the paper itself defines (§3): SC, TSO, PC, PRAM,
/// Causal, RCsc, RCpc.
[[nodiscard]] std::vector<ModelPtr> paper_models();

/// Lookup by name() string; throws InvalidInput for unknown names.
[[nodiscard]] ModelPtr make_model(std::string_view name);

/// Names accepted by make_model.
[[nodiscard]] std::vector<std::string> model_names();

}  // namespace ssm::models
