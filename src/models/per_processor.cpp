#include "models/per_processor.hpp"

#include <atomic>
#include <chrono>

#include "checker/budget.hpp"
#include "common/thread_pool.hpp"

namespace ssm::models {

namespace {
std::atomic<bool> g_prompt_cancellation{true};
}  // namespace

void set_prompt_cancellation(bool enabled) noexcept {
  g_prompt_cancellation.store(enabled, std::memory_order_relaxed);
}

bool prompt_cancellation_enabled() noexcept {
  return g_prompt_cancellation.load(std::memory_order_relaxed);
}

bool solve_per_processor(const SystemHistory& h, const ViewProblemFn& problem,
                         Verdict& out) {
  const ProcId procs = h.num_processors();
  const bool prompt = prompt_cancellation_enabled();
  std::vector<View> views(procs);
  auto& pool = common::ThreadPool::global();
  if (pool.jobs() <= 1 || procs <= 1) {
    bool any_failed = false;
    for (ProcId p = 0; p < procs; ++p) {
      ViewProblem vp = problem(p);
      if (vp.exempt.size() != h.size()) vp.exempt = DynBitset(h.size());
      auto view =
          checker::find_legal_view(h, vp.universe, vp.constraints(), vp.exempt);
      if (!view) {
        if (prompt) return false;
        // Determinism mode: keep searching the remaining processors so the
        // node count is independent of which processor fails first.
        any_failed = true;
        continue;
      }
      views[p] = std::move(*view);
    }
    if (any_failed) return false;
  } else {
    // Fan the independent view searches out across the pool.  The first
    // processor proven to have no legal view flips the shared stop token,
    // which cancels every sibling search mid-DFS: the conjunction is
    // already false, so their answers no longer matter.  The caller's
    // ambient SearchBudget is captured here and forwarded explicitly —
    // thread-locals do not cross the pool boundary — so all sibling
    // searches keep charging the one shared budget of the check.
    checker::SearchBudget* budget = checker::current_budget();
    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> cancel_ns{0};
    pool.parallel_for(procs, [&](std::size_t p) {
      if (prompt && failed.load(std::memory_order_relaxed)) return;
      const checker::BudgetScope scope(budget);
      ViewProblem vp = problem(static_cast<ProcId>(p));
      if (vp.exempt.size() != h.size()) vp.exempt = DynBitset(h.size());
      // Determinism mode runs every sibling to its natural end: no stop
      // token, so no timing-dependent cancellation points.
      const checker::SearchControl control(prompt ? &failed : nullptr, budget,
                                           &cancel_ns);
      auto view = checker::find_legal_view(h, vp.universe, vp.constraints(),
                                           vp.exempt, control);
      if (view) {
        views[p] = std::move(*view);
      } else {
        // Genuinely unsatisfiable, cancelled, or out of budget; either way
        // the conjunction is "not allowed" (the caller's resolve_with_budget
        // downgrades it to INCONCLUSIVE when the budget tripped).  Stamp
        // the flip time so cancelled siblings can report their latency.
        if (!failed.exchange(true, std::memory_order_relaxed)) {
          cancel_ns.store(
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count()),
              std::memory_order_relaxed);
        }
      }
    });
    if (failed.load(std::memory_order_relaxed)) return false;
  }
  out.allowed = true;
  out.views = std::move(views);
  return true;
}

std::optional<std::string> verify_per_processor(const SystemHistory& h,
                                                const ViewProblemFn& problem,
                                                const Verdict& v) {
  if (!v.allowed) return std::nullopt;
  if (v.views.size() != h.num_processors()) {
    return "witness has " + std::to_string(v.views.size()) +
           " views for " + std::to_string(h.num_processors()) +
           " processors";
  }
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    ViewProblem vp = problem(p);
    if (vp.exempt.size() != h.size()) vp.exempt = DynBitset(h.size());
    if (auto err = checker::verify_view(h, vp.universe, vp.constraints(),
                                        v.views[p], vp.exempt)) {
      return "processor " + std::to_string(p) + ": " + *err;
    }
  }
  return std::nullopt;
}

Relation chain_relation(std::size_t n, const View& seq) {
  Relation r(n);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (std::size_t j = i + 1; j < seq.size(); ++j) {
      r.add(seq[i], seq[j]);
    }
  }
  return r;
}

}  // namespace ssm::models
