#include "models/per_processor.hpp"

namespace ssm::models {

bool solve_per_processor(const SystemHistory& h, const ViewProblemFn& problem,
                         Verdict& out) {
  std::vector<View> views(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    ViewProblem vp = problem(p);
    if (vp.exempt.size() != h.size()) vp.exempt = DynBitset(h.size());
    auto view =
        checker::find_legal_view(h, vp.universe, vp.constraints, vp.exempt);
    if (!view) return false;
    views[p] = std::move(*view);
  }
  out.allowed = true;
  out.views = std::move(views);
  return true;
}

std::optional<std::string> verify_per_processor(const SystemHistory& h,
                                                const ViewProblemFn& problem,
                                                const Verdict& v) {
  if (!v.allowed) return std::nullopt;
  if (v.views.size() != h.num_processors()) {
    return "witness has " + std::to_string(v.views.size()) +
           " views for " + std::to_string(h.num_processors()) +
           " processors";
  }
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    ViewProblem vp = problem(p);
    if (vp.exempt.size() != h.size()) vp.exempt = DynBitset(h.size());
    if (auto err = checker::verify_view(h, vp.universe, vp.constraints,
                                        v.views[p], vp.exempt)) {
      return "processor " + std::to_string(p) + ": " + *err;
    }
  }
  return std::nullopt;
}

Relation chain_relation(std::size_t n, const View& seq) {
  Relation r(n);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    for (std::size_t j = i + 1; j < seq.size(); ++j) {
      r.add(seq[i], seq[j]);
    }
  }
  return r;
}

}  // namespace ssm::models
