// Hybrid consistency [Attiya & Friedman 92], the paper's reference [4].
//
// Operations are weak (ordinary) or strong (labeled).  In the framework:
//   * δp = w; no coherence requirement on weak operations;
//   * strong operations are sequentially consistent — one legal global
//     order T exists and every view agrees with it;
//   * any same-processor program-order pair with at least one strong
//     endpoint is preserved in every view containing both (this is the
//     "hybrid" condition tying weak operations to the strong skeleton);
//   * weak-weak pairs carry no ordering obligation in OTHER processors'
//     views (no coherence either), which is what makes hybrid consistency
//     cheaper than weak ordering; the issuing processor still observes its
//     own operations in program order (otherwise a read could see its own
//     future write — litmus `corw1-impossible`).
#include "checker/scope.hpp"
#include "models/edges.hpp"
#include "models/labeling.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class HybridModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "HC"; }
  std::string_view description() const noexcept override {
    return "hybrid consistency [Attiya-Friedman 92]: SC strong operations; "
           "weak operations ordered only against strong ones";
  }

  Verdict check(const SystemHistory& h) const override {
    if (auto err = check_properly_labeled(h)) return Verdict::no(*err);
    const order::Orders ord(h);
    const auto& po = ord.po();
    const auto hybrid = hybrid_edges(h);
    const auto labeled = checker::labeled_ops(h);
    std::vector<rel::Relation> own_po;
    own_po.reserve(h.num_processors());
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      rel::DynBitset own(h.size());
      for (OpIndex i : h.processor_ops(p)) own.set(i);
      own_po.push_back(po.restricted_to(own));
    }
    Verdict result = Verdict::no();
    checker::for_each_legal_view(
        h, labeled, po, [&](const checker::View& t) {
          if (!checker::charge_budget(1)) return false;
          rel::Relation shared = hybrid | chain_relation(h.size(), t);
          Verdict attempt;
          if (solve_per_processor(h, [&](ProcId p) {
                return ViewProblem{checker::own_plus_writes(h, p),
                                   shared | own_po[p],
                                   checker::remote_rmw_reads(h, p)};
              }, attempt)) {
            result = std::move(attempt);
            result.labeled_order = t;
            return false;
          }
          return true;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.labeled_order) return "HC witness lacks a strong-op order";
    const order::Orders ord(h);
    const auto labeled = checker::labeled_ops(h);
    if (auto err =
            checker::verify_view(h, labeled, ord.po(), *v.labeled_order)) {
      return "strong order: " + *err;
    }
    rel::Relation constraints =
        hybrid_edges(h) | chain_relation(h.size(), *v.labeled_order);
    const auto& po = ord.po();
    return verify_per_processor(h, [&](ProcId p) {
      rel::DynBitset own(h.size());
      for (OpIndex i : h.processor_ops(p)) own.set(i);
      return ViewProblem{checker::own_plus_writes(h, p),
                         constraints | po.restricted_to(own),
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_hybrid() { return std::make_unique<HybridModel>(); }

}  // namespace ssm::models
