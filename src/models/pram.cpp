// PRAM (pipelined RAM), paper §3.5: the weakest memory in Figure 5's chain.
//
// δp = w, no mutual consistency, and each view preserves program order
// (own operations and, per issuing processor, other processors' writes).
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class PramModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "PRAM"; }
  std::string_view description() const noexcept override {
    return "pipelined RAM [Lipton-Sandberg 88]: independent per-processor "
           "views of own ops + others' writes, program order preserved";
  }

  Verdict check(const SystemHistory& h) const override {
    const order::Orders ord(h);
    const auto& po = ord.po();
    Verdict v;
    solve_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), po,
                         checker::remote_rmw_reads(h, p)};
    }, v);
    return checker::resolve_with_budget(std::move(v));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    const order::Orders ord(h);
    const auto& po = ord.po();
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), po,
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_pram() { return std::make_unique<PramModel>(); }

}  // namespace ssm::models
