// Constraint-edge builders shared by the models and the encode backend
// (src/solve).  Each of these used to be a file-static helper inside one
// model's translation unit; the second decision backend must construct the
// *same* relations to encode the same admission predicate, so they live
// here and both callers use one definition.
#pragma once

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::models {

using history::SystemHistory;

/// Reads satisfied by store-buffer forwarding (TSOfwd): the read's writer
/// is the issuing processor's latest program-order-preceding write to the
/// same location.  Such reads (a) lose the same-location w→r ppo edge and
/// (b) are exempt from the view legality gate in their own processor's
/// view — the buffer, not the view position, justifies their value.
[[nodiscard]] rel::DynBitset forwarded_reads(const SystemHistory& h);

/// ppo for the forwarding variant: the paper's ppo except that the "same
/// location" clause is suppressed when o1 is a write, o2 is a read, and
/// o2 reads o1's value (store-buffer forwarding).  Transitively closed.
[[nodiscard]] rel::Relation forwarding_ppo(const SystemHistory& h);

/// Fence edges (WO): same-processor po pairs with exactly one labeled
/// endpoint.
[[nodiscard]] rel::Relation fence_edges(const SystemHistory& h);

/// Hybrid edges (HC): same-processor po pairs with >= 1 labeled endpoint.
[[nodiscard]] rel::Relation hybrid_edges(const SystemHistory& h);

/// Slow-memory constraints for processor p: own full program order plus,
/// per other processor and location, that writer's same-location write
/// pipeline.
[[nodiscard]] rel::Relation slow_constraints(const SystemHistory& h,
                                             ProcId p);

/// Program order restricted to processor p's own operations (Local).
[[nodiscard]] rel::Relation own_po_only(const SystemHistory& h, ProcId p);

/// po with every store→load edge removed, regardless of location (TSOax).
/// NOT transitively closed on purpose: closure through a dropped edge
/// would resurrect it.
[[nodiscard]] rel::Relation po_minus_store_load(const SystemHistory& h);

/// The operations of processor p as a mask (the own_ppo / own_po
/// restriction the WO/HC/RC models apply per processor).
[[nodiscard]] rel::DynBitset own_mask(const SystemHistory& h, ProcId p);

}  // namespace ssm::models
