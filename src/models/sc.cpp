// Sequential consistency: the strongest memory in the paper's Figure 5.
//
// In the framework: δp = a (every processor's view contains all operations)
// and all views are identical — equivalently, one legal linearization of
// all operations extending program order exists.
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class ScModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "SC"; }
  std::string_view description() const noexcept override {
    return "sequential consistency [Lamport 79]: one shared legal view of "
           "all operations in program order";
  }

  Verdict check(const SystemHistory& h) const override {
    const auto universe = checker::all_ops(h);
    const order::Orders ord(h);
    const auto& po = ord.po();
    auto view = checker::find_legal_view(h, universe, po);
    if (!view) return checker::resolve_with_budget(Verdict::no());
    Verdict v = Verdict::yes();
    v.views.assign(h.num_processors(), *view);
    return v;
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    const auto universe = checker::all_ops(h);
    const order::Orders ord(h);
    const auto& po = ord.po();
    if (v.views.empty()) return "SC witness has no views";
    for (std::size_t p = 1; p < v.views.size(); ++p) {
      if (v.views[p] != v.views[0]) {
        return "SC witness views differ between processors";
      }
    }
    return checker::verify_view(h, universe, po, v.views[0]);
  }
};

}  // namespace

ModelPtr make_sc() { return std::make_unique<ScModel>(); }

}  // namespace ssm::models
