// Local consistency (extension): the weakest memory we implement.  Each
// processor's view need only respect its *own* program order; other
// processors' writes may be observed in any order whatsoever.  Useful as a
// lattice floor: everything the paper discusses is strictly stronger.
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/orders.hpp"

namespace ssm::models {
namespace {

/// Program order restricted to each processor's own operations only (an
/// edge o1 -> o2 survives; edges among other processors' writes do not
/// constrain p's view).
rel::Relation own_po_only(const SystemHistory& h, ProcId p) {
  rel::Relation r(h.size());
  const auto ops = h.processor_ops(p);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      r.add(ops[i], ops[j]);
    }
  }
  return r;
}

class LocalModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "Local"; }
  std::string_view description() const noexcept override {
    return "local consistency: only a processor's own program order "
           "constrains its view (extension; weaker than PRAM)";
  }

  Verdict check(const SystemHistory& h) const override {
    Verdict v;
    solve_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), own_po_only(h, p),
                         checker::remote_rmw_reads(h, p)};
    }, v);
    return checker::resolve_with_budget(std::move(v));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), own_po_only(h, p),
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_local() { return std::make_unique<LocalModel>(); }

}  // namespace ssm::models
