// Local consistency (extension): the weakest memory we implement.  Each
// processor's view need only respect its *own* program order; other
// processors' writes may be observed in any order whatsoever.  Useful as a
// lattice floor: everything the paper discusses is strictly stronger.
#include "checker/scope.hpp"
#include "models/edges.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/orders.hpp"

namespace ssm::models {
namespace {

class LocalModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "Local"; }
  std::string_view description() const noexcept override {
    return "local consistency: only a processor's own program order "
           "constrains its view (extension; weaker than PRAM)";
  }

  Verdict check(const SystemHistory& h) const override {
    Verdict v;
    solve_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), own_po_only(h, p),
                         checker::remote_rmw_reads(h, p)};
    }, v);
    return checker::resolve_with_budget(std::move(v));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), own_po_only(h, p),
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_local() { return std::make_unique<LocalModel>(); }

}  // namespace ssm::models
