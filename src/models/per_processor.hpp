// Shared machinery for models whose check decomposes into one independent
// legal-view search per processor (PRAM, causal, local, slow, and the
// inner loop of every coherence-enumerating model).
#pragma once

#include <functional>
#include <optional>

#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "checker/verdict.hpp"
#include "history/system_history.hpp"

namespace ssm::models {

using checker::DynBitset;
using checker::Relation;
using checker::Verdict;
using checker::View;
using history::SystemHistory;

/// Supplies, for processor p, the universe of its view (paper parameter 1)
/// and the constraint relation its view must extend (parameters 2+3, with
/// mutual-consistency choices already baked in as chain edges).
///
/// The constraint relation is borrowed when constructed from an lvalue
/// (the common case: one shared relation per coherence candidate, handed
/// to every processor's problem) and owned when constructed from a
/// temporary (e.g. `shared | own_ppo[p]`).  Borrowing skips a per-problem
/// deep copy of the relation's row bitsets; the caller's lambda — alive
/// for the whole solve — keeps the referent valid.
struct ViewProblem {
  ViewProblem(DynBitset u, const Relation& c)
      : universe(std::move(u)), constraints_(&c) {}
  ViewProblem(DynBitset u, Relation&& c)
      : universe(std::move(u)), owned_(std::move(c)), constraints_(&*owned_) {}
  ViewProblem(DynBitset u, const Relation& c, DynBitset e)
      : universe(std::move(u)), constraints_(&c), exempt(std::move(e)) {}
  ViewProblem(DynBitset u, Relation&& c, DynBitset e)
      : universe(std::move(u)),
        owned_(std::move(c)),
        constraints_(&*owned_),
        exempt(std::move(e)) {}

  ViewProblem(ViewProblem&& o) noexcept
      : universe(std::move(o.universe)),
        owned_(std::move(o.owned_)),
        // An owning problem's pointer must follow its relation into the
        // new object; a borrowing one keeps pointing at the caller's.
        constraints_(o.owned_.has_value() && o.constraints_ == &*o.owned_
                         ? &*owned_
                         : o.constraints_),
        exempt(std::move(o.exempt)) {}
  ViewProblem(const ViewProblem&) = delete;
  ViewProblem& operator=(const ViewProblem&) = delete;
  ViewProblem& operator=(ViewProblem&&) = delete;

  [[nodiscard]] const Relation& constraints() const noexcept {
    return *constraints_;
  }

  DynBitset universe;

 private:
  std::optional<Relation> owned_;
  const Relation* constraints_;

 public:
  /// Reads excused from the legality gate (see checker::find_legal_view);
  /// empty (default) means every read is checked.
  DynBitset exempt;
};
using ViewProblemFn = std::function<ViewProblem(ProcId)>;

/// Runs one legal-view search per processor; succeeds iff all succeed.
/// On success fills `out.views` (indexed by ProcId) and sets allowed=true.
/// The returned bool mirrors `out.allowed` (callers that only need the
/// verdict may ignore it).
///
/// When the global common::ThreadPool has more than one lane, the searches
/// run concurrently and the first processor with no legal view cancels its
/// siblings through a shared stop token (the verdict is identical either
/// way; only wasted work changes).  `problem` may therefore be invoked
/// from several threads at once and must be safe to call concurrently —
/// every model builds its ViewProblem from const inputs, which is enough.
bool solve_per_processor(const SystemHistory& h, const ViewProblemFn& problem,
                         Verdict& out);

/// When disabled, solve_per_processor stops cancelling siblings on first
/// failure AND stops early-exiting the serial loop: every processor's
/// search runs to its natural end, so node counts become byte-identical
/// across any jobs setting and across repeats (cancellation points are
/// timing-dependent; the verdict never is).  This is the configuration
/// bench/checker_scaling uses for its determinism sweep.  Default: true.
void set_prompt_cancellation(bool enabled) noexcept;
[[nodiscard]] bool prompt_cancellation_enabled() noexcept;

/// Verifies a per-processor witness against the same problems (property
/// testing hook shared by the simple models).
[[nodiscard]] std::optional<std::string> verify_per_processor(
    const SystemHistory& h, const ViewProblemFn& problem, const Verdict& v);

/// Chain edges a[0] -> a[1] -> ... as a relation over `n` elements
/// (transitively closed by construction: all i<j pairs added).
[[nodiscard]] Relation chain_relation(std::size_t n, const View& seq);

}  // namespace ssm::models
