// Shared machinery for models whose check decomposes into one independent
// legal-view search per processor (PRAM, causal, local, slow, and the
// inner loop of every coherence-enumerating model).
#pragma once

#include <functional>

#include "checker/legality.hpp"
#include "checker/scope.hpp"
#include "checker/verdict.hpp"
#include "history/system_history.hpp"

namespace ssm::models {

using checker::DynBitset;
using checker::Relation;
using checker::Verdict;
using checker::View;
using history::SystemHistory;

/// Supplies, for processor p, the universe of its view (paper parameter 1)
/// and the constraint relation its view must extend (parameters 2+3, with
/// mutual-consistency choices already baked in as chain edges).
struct ViewProblem {
  ViewProblem(DynBitset u, Relation c)
      : universe(std::move(u)), constraints(std::move(c)) {}
  ViewProblem(DynBitset u, Relation c, DynBitset e)
      : universe(std::move(u)),
        constraints(std::move(c)),
        exempt(std::move(e)) {}

  DynBitset universe;
  Relation constraints;
  /// Reads excused from the legality gate (see checker::find_legal_view);
  /// empty (default) means every read is checked.
  DynBitset exempt;
};
using ViewProblemFn = std::function<ViewProblem(ProcId)>;

/// Runs one legal-view search per processor; succeeds iff all succeed.
/// On success fills `out.views` (indexed by ProcId) and sets allowed=true.
/// The returned bool mirrors `out.allowed` (callers that only need the
/// verdict may ignore it).
///
/// When the global common::ThreadPool has more than one lane, the searches
/// run concurrently and the first processor with no legal view cancels its
/// siblings through a shared stop token (the verdict is identical either
/// way; only wasted work changes).  `problem` may therefore be invoked
/// from several threads at once and must be safe to call concurrently —
/// every model builds its ViewProblem from const inputs, which is enough.
bool solve_per_processor(const SystemHistory& h, const ViewProblemFn& problem,
                         Verdict& out);

/// Verifies a per-processor witness against the same problems (property
/// testing hook shared by the simple models).
[[nodiscard]] std::optional<std::string> verify_per_processor(
    const SystemHistory& h, const ViewProblemFn& problem, const Verdict& v);

/// Chain edges a[0] -> a[1] -> ... as a relation over `n` elements
/// (transitively closed by construction: all i<j pairs added).
[[nodiscard]] Relation chain_relation(std::size_t n, const View& seq);

}  // namespace ssm::models
