// Causal memory, paper §3.5: like PRAM but views must preserve the causal
// order co = (po ∪ wb)+ — Lamport's happens-before adapted to shared memory.
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class CausalModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "Causal"; }
  std::string_view description() const noexcept override {
    return "causal memory [Ahamad et al. 91]: per-processor views preserve "
           "the causal (happens-before) order";
  }

  Verdict check(const SystemHistory& h) const override {
    const order::Orders ord(h);
    const auto& co = ord.co();
    if (!co.is_acyclic()) {
      return Verdict::no("causal order is cyclic");
    }
    Verdict v;
    solve_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), co,
                         checker::remote_rmw_reads(h, p)};
    }, v);
    return checker::resolve_with_budget(std::move(v));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    const order::Orders ord(h);
    const auto& co = ord.co();
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), co,
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_causal() { return std::make_unique<CausalModel>(); }

}  // namespace ssm::models
