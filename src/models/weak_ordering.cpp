// Weak ordering [Dubois, Scheurich & Briggs 88], the paper's reference
// [1] and the ancestor of release consistency.  In the framework:
//
//   * δp = w; coherence over all writes;
//   * synchronization (labeled) operations are sequentially consistent —
//     a single legal global order T of the labeled operations exists;
//   * every ordinary operation is *fenced* by the labeled operations of
//     its own processor in both directions: if s →po o (s labeled, o
//     ordinary) then s precedes o in every view containing both, and
//     symmetrically for o →po s.  This is strictly stronger than RC's
//     bracket conditions, which only pin ordinary operations after the
//     *write acquired by* a labeled read and before a labeled write —
//     the litmus test `wo-vs-rcsc` separates the two.
//   * each processor's own view preserves ppo.
#include "checker/scope.hpp"
#include "models/edges.hpp"
#include "models/labeling.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class WeakOrderingModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "WO"; }
  std::string_view description() const noexcept override {
    return "weak ordering [Dubois et al. 88]: SC sync operations fencing "
           "ordinary operations in both directions + coherence";
  }

  Verdict check(const SystemHistory& h) const override {
    if (auto err = check_properly_labeled(h)) return Verdict::no(*err);
    const order::Orders ord(h);
    const auto& ppo = ord.ppo();
    const auto& po = ord.po();
    // Dubois' conditions make synchronization reads "globally performed"
    // before later accesses issue, which is exactly the RC publication
    // bracket; WO = fences + brackets + coherence + SC sync ops.
    const auto fences = fence_edges(h) | bracket_edges(h);
    const auto labeled = checker::labeled_ops(h);
    std::vector<rel::Relation> own_ppo;
    own_ppo.reserve(h.num_processors());
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      rel::DynBitset own(h.size());
      for (OpIndex i : h.processor_ops(p)) own.set(i);
      own_ppo.push_back(ppo.restricted_to(own));
    }
    Verdict result = Verdict::no();
    order::for_each_coherence_order(
        h, ppo, [&](const order::CoherenceOrder& coh) {
          if (!checker::charge_budget(1)) return false;
          const rel::Relation coh_rel = coh.as_relation();
          rel::Relation base = coh_rel | fences;
          if (!(base | ppo).is_acyclic()) return true;
          rel::Relation t_constraints = po | coh_rel;
          return !checker::for_each_legal_view(
              h, labeled, t_constraints, [&](const checker::View& t) {
                rel::Relation shared = base | chain_relation(h.size(), t);
                Verdict attempt;
                if (solve_per_processor(h, [&](ProcId p) {
                      return ViewProblem{checker::own_plus_writes(h, p),
                                         shared | own_ppo[p],
                                         checker::remote_rmw_reads(h, p)};
                    }, attempt)) {
                  result = std::move(attempt);
                  result.coherence = coh;
                  result.labeled_order = t;
                  return false;
                }
                return true;
              });
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.coherence) return "WO witness lacks a coherence order";
    if (!v.labeled_order) return "WO witness lacks a labeled order";
    const order::Orders ord(h);
    const auto labeled = checker::labeled_ops(h);
    if (auto err =
            checker::verify_view(h, labeled, ord.po(), *v.labeled_order)) {
      return "labeled order: " + *err;
    }
    const auto& ppo = ord.ppo();
    rel::Relation constraints = v.coherence->as_relation() | fence_edges(h) |
                                bracket_edges(h) |
                                chain_relation(h.size(), *v.labeled_order);
    return verify_per_processor(h, [&](ProcId p) {
      rel::DynBitset own(h.size());
      for (OpIndex i : h.processor_ops(p)) own.set(i);
      return ViewProblem{checker::own_plus_writes(h, p),
                         constraints | ppo.restricted_to(own),
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_weak_ordering() {
  return std::make_unique<WeakOrderingModel>();
}

}  // namespace ssm::models
