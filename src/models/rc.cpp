// Release consistency, paper §3.4.
//
// Operations are either ordinary or labeled (synchronization).  For both
// variants:
//   * δp = w (views hold own operations plus all write-like operations of
//     others — labeled reads of others are NOT in a view);
//   * mutual consistency: coherence over all writes;
//   * ordering: ppo over each processor's own operations — note, per the
//     paper, only *in that processor's own view* ("o1 precedes o2 in S_p"):
//     another processor may observe p's ordinary writes to different
//     locations in either order, which is exactly RC's "propagated
//     independently" freedom — plus the two
//     bracket conditions tying ordinary operations to the labeled
//     operations that protect them:
//       (1) an ordinary o of p that follows an acquire o_r of p is ordered
//           after the write o_w that o_r read, in every view containing
//           both;
//       (2) an ordinary o of p that precedes a release o_w of p is ordered
//           before o_w in every view containing both.
//     Note on (2): the paper's text literally says "o follows o_w", which
//     contradicts its own motivation ("RC ensures that an ordinary
//     operation completes before the following release operation is
//     performed") and would unorder release from the data it publishes; we
//     implement the evident intent (o precedes o_w).  The erratum test in
//     tests/models/rc_test.cpp (ErratumLiteralReadingWouldBreakPublication)
//     demonstrates that the literal
//     reading admits a mutual-exclusion violation even under RC_sc.
//   * the labeled operations are sequentially consistent (RC_sc) or
//     processor consistent (RC_pc), evaluated on the labeled subhistory.
//
// Histories in which a labeled read returns a value written by an ordinary
// write are rejected as improperly labeled (synchronization variables must
// be accessed only by labeled operations for the SC/PC condition on the
// labeled subhistory to be meaningful).
#include "checker/scope.hpp"
#include "history/subhistory.hpp"
#include "models/labeling.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"
#include "order/semi_causal.hpp"

namespace ssm::models {
namespace {

/// Lifts a relation over a subhistory back to parent indices.
rel::Relation lift(const history::SubHistory& s, const rel::Relation& r,
                   std::size_t parent_size) {
  rel::Relation out(parent_size);
  for (std::size_t a = 0; a < r.size(); ++a) {
    r.successors(a).for_each([&](std::size_t b) {
      out.add(s.to_parent[a], s.to_parent[b]);
    });
  }
  return out;
}

/// The coherence order restricted to the labeled subhistory's writes.
order::CoherenceOrder restrict_coherence(const history::SubHistory& s,
                                         const order::CoherenceOrder& coh,
                                         std::size_t num_locs) {
  std::vector<std::vector<OpIndex>> per_loc(num_locs);
  for (LocId loc = 0; loc < num_locs; ++loc) {
    for (OpIndex w : coh.writes(loc)) {
      const OpIndex sub = s.from_parent[w];
      if (sub != kNoOp) per_loc[loc].push_back(sub);
    }
  }
  return order::CoherenceOrder(s.sub.size(), std::move(per_loc));
}

class RcModel final : public Model {
 public:
  enum class Labeled { Sc, Pc, Goodman };

  explicit RcModel(Labeled labeled) : labeled_(labeled) {}

  std::string_view name() const noexcept override {
    switch (labeled_) {
      case Labeled::Sc:
        return "RCsc";
      case Labeled::Pc:
        return "RCpc";
      case Labeled::Goodman:
        return "RCg";
    }
    return "RC?";
  }
  std::string_view description() const noexcept override {
    switch (labeled_) {
      case Labeled::Sc:
        return "release consistency, labeled ops sequentially consistent "
               "(paper §3.4)";
      case Labeled::Pc:
        return "release consistency, labeled ops processor consistent "
               "(paper §3.4)";
      case Labeled::Goodman:
        return "release consistency, labeled ops Goodman-PC (PRAM + "
               "coherence); matches the operational rc-pc machine";
    }
    return "";
  }

  Verdict check(const SystemHistory& h) const override {
    if (auto err = check_properly_labeled(h)) return Verdict::no(*err);
    const order::Orders ord(h);
    const auto& ppo = ord.ppo();
    const auto& po = ord.po();
    const auto brackets = bracket_edges(h);
    const auto labeled = checker::labeled_ops(h);
    // ppo applies only within the issuing processor's own view, so each
    // processor gets its own restriction of ppo.
    std::vector<rel::Relation> own_ppo;
    own_ppo.reserve(h.num_processors());
    for (ProcId p = 0; p < h.num_processors(); ++p) {
      rel::DynBitset own(h.size());
      for (OpIndex i : h.processor_ops(p)) own.set(i);
      own_ppo.push_back(ppo.restricted_to(own));
    }
    const auto solve_with = [&](const rel::Relation& shared,
                                Verdict& attempt) {
      return solve_per_processor(h, [&](ProcId p) {
        return ViewProblem{checker::own_plus_writes(h, p),
                           shared | own_ppo[p],
                           checker::remote_rmw_reads(h, p)};
      }, attempt);
    };
    Verdict result = Verdict::no();
    order::for_each_coherence_order(
        h, ppo, [&](const order::CoherenceOrder& coh) {
          if (!checker::charge_budget(1)) return false;
          const rel::Relation coh_rel = coh.as_relation();
          rel::Relation base = coh_rel | brackets;
          if (!(base | ppo).is_acyclic()) return true;
          if (labeled_ == Labeled::Goodman) {
            // Labeled subhistory must be PRAM+coherent: full program order
            // among labeled operations holds in every view (coherence is
            // already global).
            rel::Relation shared = base | po.restricted_to(labeled);
            if (!shared.is_acyclic()) return true;
            Verdict attempt;
            if (solve_with(shared, attempt)) {
              result = std::move(attempt);
              result.coherence = coh;
              return false;
            }
            return true;
          }
          if (labeled_ == Labeled::Sc) {
            // Enumerate legal global sequences T of the labeled operations
            // (SC on the labeled subhistory), consistent with coherence.
            rel::Relation t_constraints = po | coh_rel;
            return !checker::for_each_legal_view(
                h, labeled, t_constraints, [&](const checker::View& t) {
                  rel::Relation shared = base | chain_relation(h.size(), t);
                  Verdict attempt;
                  if (solve_with(shared, attempt)) {
                    result = std::move(attempt);
                    result.coherence = coh;
                    result.labeled_order = t;
                    return false;
                  }
                  return true;
                });
          }
          // RC_pc: labeled subhistory must be processor consistent; its
          // semi-causality order (computed within the labeled world, using
          // the labeled restriction of the coherence order) constrains all
          // views.
          const auto s = history::extract(h, labeled);
          const auto coh_l = restrict_coherence(s, coh, h.num_locations());
          const auto ppo_l = order::partial_program_order(s.sub);
          const auto sem_l = order::semi_causal(s.sub, ppo_l, coh_l);
          rel::Relation shared = base | lift(s, sem_l, h.size());
          if (!shared.is_acyclic()) return true;
          Verdict attempt;
          if (solve_with(shared, attempt)) {
            result = std::move(attempt);
            result.coherence = coh;
            return false;
          }
          return true;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.coherence) return "RC witness lacks a coherence order";
    const order::Orders ord(h);
    const auto& ppo = ord.ppo();
    rel::Relation constraints = v.coherence->as_relation() | bracket_edges(h);
    if (labeled_ == Labeled::Goodman) {
      constraints |= ord.po().restricted_to(checker::labeled_ops(h));
    } else if (labeled_ == Labeled::Sc) {
      if (!v.labeled_order) return "RCsc witness lacks a labeled order";
      // The labeled order itself must be a legal SC view of labeled ops.
      const auto labeled = checker::labeled_ops(h);
      if (auto err =
              checker::verify_view(h, labeled, ord.po(), *v.labeled_order)) {
        return "labeled order: " + *err;
      }
      constraints |= chain_relation(h.size(), *v.labeled_order);
    } else {
      const auto labeled = checker::labeled_ops(h);
      const auto s = history::extract(h, labeled);
      const auto coh_l = restrict_coherence(s, *v.coherence,
                                            h.num_locations());
      const auto ppo_l = order::partial_program_order(s.sub);
      constraints |= lift(s, order::semi_causal(s.sub, ppo_l, coh_l),
                          h.size());
    }
    return verify_per_processor(h, [&](ProcId p) {
      rel::DynBitset own(h.size());
      for (OpIndex i : h.processor_ops(p)) own.set(i);
      return ViewProblem{checker::own_plus_writes(h, p),
                         constraints | ppo.restricted_to(own),
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }

 private:
  Labeled labeled_;
};

}  // namespace

ModelPtr make_rc_sc() {
  return std::make_unique<RcModel>(RcModel::Labeled::Sc);
}
ModelPtr make_rc_pc() {
  return std::make_unique<RcModel>(RcModel::Labeled::Pc);
}
ModelPtr make_rc_goodman() {
  return std::make_unique<RcModel>(RcModel::Labeled::Goodman);
}

}  // namespace ssm::models
