#include "models/registry.hpp"

namespace ssm::models {

std::vector<ModelPtr> all_models() {
  std::vector<ModelPtr> out;
  out.push_back(make_sc());
  out.push_back(make_tso());
  out.push_back(make_tso_fwd());
  out.push_back(make_tso_axiomatic());
  out.push_back(make_pc());
  out.push_back(make_goodman());
  out.push_back(make_weak_ordering());
  out.push_back(make_hybrid());
  out.push_back(make_rc_sc());
  out.push_back(make_rc_pc());
  out.push_back(make_rc_goodman());
  out.push_back(make_causal_coherent());
  out.push_back(make_causal_coherent_labeled());
  out.push_back(make_causal());
  out.push_back(make_cache());
  out.push_back(make_pram());
  out.push_back(make_slow());
  out.push_back(make_local());
  return out;
}

std::vector<ModelPtr> paper_models() {
  std::vector<ModelPtr> out;
  out.push_back(make_sc());
  out.push_back(make_tso());
  out.push_back(make_pc());
  out.push_back(make_rc_sc());
  out.push_back(make_rc_pc());
  out.push_back(make_causal());
  out.push_back(make_pram());
  return out;
}

ModelPtr make_model(std::string_view name) {
  for (auto& m : all_models()) {
    if (m->name() == name) return std::move(m);
  }
  throw InvalidInput("unknown model: '" + std::string(name) + "'");
}

std::vector<std::string> model_names() {
  std::vector<std::string> names;
  for (const auto& m : all_models()) names.emplace_back(m->name());
  return names;
}

}  // namespace ssm::models
