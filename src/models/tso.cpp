// Total store ordering, paper §3.2 (after Sindhu, Frailong & Cekleov).
//
// δp = w.  Mutual consistency: all views order ALL writes identically
// (S_{p+w}|w = S_{q+w}|w).  Ordering: partial program order ppo.
//
// Decision procedure: enumerate global write orders (linear extensions of
// ppo restricted to the writes), and for each, run one per-processor
// legal-view search with the write chain added to the constraints.  First
// write order for which every processor has a legal view wins.
//
// `make_tso_fwd` is the store-forwarding variant: it rebuilds ppo with the
// same-location write→read clause dropped for reads that read their own
// processor's write (the read is satisfied from the store buffer, so it
// does not globally order the write).  Legality still forces the read to
// appear after the write it reads in the *own* view, but the write no
// longer transitively orders before operations that follow the read.  See
// EXPERIMENTS.md "TSO forwarding note" for the litmus test separating the
// two (the paper's characterization = make_tso forbids it; SPARC/x86
// axiomatic TSO = make_tso_fwd admits it).
#include "checker/scope.hpp"
#include "models/edges.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"
#include "relation/topo.hpp"

namespace ssm::models {
namespace {

class TsoModel final : public Model {
 public:
  explicit TsoModel(bool forwarding) : forwarding_(forwarding) {}

  std::string_view name() const noexcept override {
    return forwarding_ ? "TSOfwd" : "TSO";
  }
  std::string_view description() const noexcept override {
    return forwarding_
               ? "TSO with store-to-load forwarding (SPARC/x86 axiomatic "
                 "reading; extension)"
               : "total store ordering (paper §3.2): common global write "
                 "order + partial program order";
  }

  Verdict check(const SystemHistory& h) const override {
    const order::Orders ord(h);
    const rel::Relation fwd_ppo =
        forwarding_ ? forwarding_ppo(h) : rel::Relation();
    const rel::Relation& ppo = forwarding_ ? fwd_ppo : ord.ppo();
    const rel::DynBitset exempt =
        forwarding_ ? forwarded_reads(h) : rel::DynBitset(h.size());
    const auto writes = checker::write_ops(h);
    Verdict result = Verdict::no();
    rel::for_each_linear_extension(
        ppo, writes, [&](const std::vector<std::size_t>& worder) {
          if (!checker::charge_budget(1)) return false;
          checker::View chain(worder.begin(), worder.end());
          rel::Relation constraints = ppo | chain_relation(h.size(), chain);
          Verdict attempt;
          if (solve_per_processor(h, [&](ProcId p) {
                return ViewProblem{checker::own_plus_writes(h, p),
                                   constraints, exempt};
              }, attempt)) {
            result = std::move(attempt);
            result.labeled_order = std::move(chain);  // the witness w-order
            result.note = "labeled_order field holds the global write order";
            return false;  // stop: first witness wins
          }
          return true;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.labeled_order) return "TSO witness lacks a global write order";
    const order::Orders ord(h);
    const rel::Relation fwd_ppo =
        forwarding_ ? forwarding_ppo(h) : rel::Relation();
    const rel::Relation& ppo = forwarding_ ? fwd_ppo : ord.ppo();
    const auto writes = checker::write_ops(h);
    if (v.labeled_order->size() != writes.count()) {
      return "TSO witness write order has wrong size";
    }
    rel::Relation constraints =
        ppo | chain_relation(h.size(), *v.labeled_order);
    const rel::DynBitset exempt =
        forwarding_ ? forwarded_reads(h) : rel::DynBitset(h.size());
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), constraints,
                         exempt};
    }, v);
  }

 private:
  bool forwarding_;
};

}  // namespace

ModelPtr make_tso() { return std::make_unique<TsoModel>(false); }
ModelPtr make_tso_fwd() { return std::make_unique<TsoModel>(true); }

}  // namespace ssm::models
