// Shared helpers for models with labeled (synchronization) operations:
// release consistency, weak ordering, hybrid consistency.
#pragma once

#include <optional>
#include <string>

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::models {

/// Rejects histories where a labeled read observes an ordinary write
/// (synchronization variables must be accessed only by labeled operations
/// for the SC/PC condition on the labeled subhistory to be meaningful).
/// Returns an explanation, or nullopt when properly labeled.
[[nodiscard]] std::optional<std::string> check_properly_labeled(
    const history::SystemHistory& h);

/// The bracket conditions of paper §3.4 as constraint edges:
///  (1) for an acquire o_r of p reading write o_w, every later ordinary
///      operation o of p gets the edge o_w -> o;
///  (2) for a release o_w of p, every earlier ordinary operation o of p
///      gets the edge o -> o_w (the paper's erratum corrected; see
///      rc.cpp).
/// Weak ordering reuses these: its "globally performed" synchronization
/// reads induce exactly the same publication edges.
[[nodiscard]] rel::Relation bracket_edges(const history::SystemHistory& h);

}  // namespace ssm::models
