// Goodman's processor consistency [Goodman 89], formalized in Ahamad et
// al., "The power of processor consistency" (the paper's reference [2]):
// PRAM plus coherence.  δp = w; per-location write order shared by all
// views; full program order preserved.
//
// The paper notes (§3.3, end) that this definition and the DASH definition
// "were distinct and incomparable"; the lattice bench verifies that with
// explicit witnesses in both directions.
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/coherence.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class GoodmanModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "PCg"; }
  std::string_view description() const noexcept override {
    return "Goodman's processor consistency [Goodman 89]: PRAM + coherence";
  }

  Verdict check(const SystemHistory& h) const override {
    const order::Orders ord(h);
    const auto& po = ord.po();
    Verdict result = Verdict::no();
    order::for_each_coherence_order(
        h, po, [&](const order::CoherenceOrder& coh) {
          if (!checker::charge_budget(1)) return false;
          rel::Relation constraints = po | coh.as_relation();
          Verdict attempt;
          if (solve_per_processor(h, [&](ProcId p) {
                return ViewProblem{checker::own_plus_writes(h, p),
                                   constraints,
                                   checker::remote_rmw_reads(h, p)};
              }, attempt)) {
            result = std::move(attempt);
            result.coherence = coh;
            return false;
          }
          return true;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.coherence) return "PCg witness lacks a coherence order";
    const order::Orders ord(h);
    rel::Relation constraints = ord.po() | v.coherence->as_relation();
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), constraints,
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_goodman() { return std::make_unique<GoodmanModel>(); }

}  // namespace ssm::models
