// Model: the public interface of a memory-consistency model checker.
//
// A model decides membership of a system execution history in the set of
// histories it admits (the paper's characterization of a memory), and
// produces machine-checkable witness views on admission.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "checker/verdict.hpp"
#include "history/system_history.hpp"

namespace ssm::models {

using checker::Verdict;
using history::SystemHistory;

class Model {
 public:
  virtual ~Model() = default;

  /// Short identifier, e.g. "SC", "TSO", "RCpc".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// One-line description citing the paper section the definition follows.
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// Decides whether `h` is admitted; `h` must pass
  /// SystemHistory::validate() (checked by callers that construct histories
  /// via HistoryBuilder / the litmus parser).
  [[nodiscard]] virtual Verdict check(const SystemHistory& h) const = 0;

  /// Machine-checks a positive verdict produced by this model's `check`
  /// against the model's own requirements (used by property tests; a
  /// non-nullopt return indicates a checker bug).  Negative verdicts
  /// trivially pass.
  [[nodiscard]] virtual std::optional<std::string> verify_witness(
      const SystemHistory& h, const Verdict& v) const;
};

using ModelPtr = std::unique_ptr<Model>;

}  // namespace ssm::models
