#include "models/model.hpp"

namespace ssm::models {

std::optional<std::string> Model::verify_witness(const SystemHistory&,
                                                 const Verdict&) const {
  return std::nullopt;
}

}  // namespace ssm::models
