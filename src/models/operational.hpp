// Operational models: any machine, lifted into the declarative Model
// interface by exhaustive schedule exploration.
//
// check(h) extracts the program behind `h` (each processor's operation
// sequence, with read results erased), explores EVERY schedule of that
// program on the machine, and admits `h` iff some schedule reproduces the
// observed read values exactly.  This is the paper's §6 comparison made
// executable: the view-based characterizations can be tested for
// *equivalence* (both directions) against the operational definitions on
// enumerated universes — see tests/models/operational_test.cpp, which
// reproduces both the agreements and the one documented divergence (TSO
// store-forwarding, EXPERIMENTS.md).
//
// Exploration is exponential in history size; these models are meant for
// litmus-scale cross-validation, not as production checkers.  A schedule
// cap guards runaway inputs (exceeding it yields a rejection with an
// explanatory note).
#pragma once

#include "models/model.hpp"

namespace ssm::models {

/// `machine` is one of: "sc", "tso", "pram", "causal", "coherent",
/// "rc-sc", "rc-pc".  The model's name() is "op:<machine>".
[[nodiscard]] ModelPtr make_operational(std::string machine,
                                        std::uint64_t max_schedules =
                                            2'000'000);

}  // namespace ssm::models
