// Axiomatic TSO, after Sindhu, Frailong & Cekleov's specification (the
// paper's reference [17], discussed at length in §6).
//
// There exists a single memory order M over all operations such that:
//   * program order is preserved in M except store→load pairs (the store
//     buffer lets loads perform early);
//   * Value axiom: a load L of location x returns the value of the store
//     that is LATEST IN M among
//         { stores to x before L in M }  ∪  { own stores to x before L
//                                             in program order }
//     (the second component is store-buffer forwarding: an own buffered
//     store supplies the value even though it has not yet reached
//     memory), or the initial value 0 when the set is empty;
//   * Atomicity: a read-modify-write occupies a single position in M; its
//     read part uses the same Value rule.
//
// The decision procedure enumerates linear extensions of (po ∖ S→L) and
// validates the Value axiom on each — exhaustive and exact at litmus
// scale.  tests/models/axiomatic_test.cpp decides the three-way §6
// comparison: paper's view-based TSO vs this axiomatic TSO vs the
// operational store-buffer machine, over exhaustive universes.
#include "checker/scope.hpp"
#include "models/edges.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/orders.hpp"
#include "relation/topo.hpp"

namespace ssm::models {
namespace {

/// Does memory order M (a permutation of all ops) satisfy the Value
/// axiom for every load?
bool value_axiom_holds(const SystemHistory& h,
                       const std::vector<std::size_t>& m) {
  std::vector<std::size_t> pos(h.size(), 0);
  for (std::size_t k = 0; k < m.size(); ++k) pos[m[k]] = k;
  for (const auto& load : h.operations()) {
    if (!load.is_read()) continue;
    // Find the store with maximal M-position among {stores to the same
    // location before the load in M} ∪ {own po-earlier stores}.
    bool found = false;
    std::size_t best_pos = 0;
    Value best_value = kInitialValue;
    for (const auto& store : h.operations()) {
      if (!store.is_write() || store.loc != load.loc ||
          store.index == load.index) {
        continue;
      }
      const bool before_in_m = pos[store.index] < pos[load.index];
      const bool own_po_earlier =
          store.proc == load.proc && store.seq < load.seq;
      if (!before_in_m && !own_po_earlier) continue;
      if (!found || pos[store.index] > best_pos) {
        found = true;
        best_pos = pos[store.index];
        best_value = store.value;
      }
    }
    if (load.read_value() != best_value) return false;
  }
  return true;
}

class AxiomaticTsoModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "TSOax"; }
  std::string_view description() const noexcept override {
    return "axiomatic TSO [Sindhu et al. 91, the paper's ref 17]: memory "
           "order + Value axiom with store-buffer forwarding";
  }

  Verdict check(const SystemHistory& h) const override {
    const auto universe = checker::all_ops(h);
    const auto base = po_minus_store_load(h);
    Verdict result = Verdict::no();
    rel::for_each_linear_extension(
        base, universe, [&](const std::vector<std::size_t>& m) {
          if (!checker::charge_budget(1)) return false;
          if (!value_axiom_holds(h, m)) return true;
          result = Verdict::yes();
          result.labeled_order =
              checker::View(m.begin(), m.end());
          result.note = "labeled_order field holds the memory order M";
          return false;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.labeled_order) return "TSOax witness lacks a memory order";
    if (v.labeled_order->size() != h.size()) {
      return "TSOax memory order has wrong size";
    }
    std::vector<std::size_t> m(v.labeled_order->begin(),
                               v.labeled_order->end());
    // Check the extension respects po ∖ S→L.
    std::vector<std::size_t> pos(h.size(), 0);
    for (std::size_t k = 0; k < m.size(); ++k) pos[m[k]] = k;
    const auto base = po_minus_store_load(h);
    for (std::size_t a = 0; a < h.size(); ++a) {
      bool bad = false;
      base.successors(a).for_each([&](std::size_t b) {
        if (pos[b] < pos[a]) bad = true;
      });
      if (bad) return "memory order violates po \\ S->L";
    }
    if (!value_axiom_holds(h, m)) return "Value axiom violated";
    return std::nullopt;
  }
};

}  // namespace

ModelPtr make_tso_axiomatic() {
  return std::make_unique<AxiomaticTsoModel>();
}

}  // namespace ssm::models
