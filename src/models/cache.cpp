// Cache consistency (coherence only) [Goodman 89]: sequential consistency
// enforced per location, with no cross-location requirement.  The paper's
// §3.3 shows the mutual-consistency parameter "all writes to a given
// location appear in the same order in all views" is equivalent to
// coherence; this model is exactly that parameter with no ordering
// requirement beyond per-location program order.
//
// Witness semantics: one legal linearization per location (of all
// operations on that location, respecting program order).  Witness views
// are stored per *location* in Verdict::views — verify_witness knows this.
#include "checker/scope.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class CacheModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "Cache"; }
  std::string_view description() const noexcept override {
    return "cache consistency [Goodman 89]: per-location sequential "
           "consistency (coherence only)";
  }

  Verdict check(const SystemHistory& h) const override {
    const order::Orders ord(h);
    const auto& po = ord.po();
    std::vector<checker::View> per_loc;
    per_loc.reserve(h.num_locations());
    for (LocId loc = 0; loc < h.num_locations(); ++loc) {
      const auto universe = checker::ops_on(h, loc);
      auto view = checker::find_legal_view(h, universe, po);
      if (!view) {
        return checker::resolve_with_budget(
            Verdict::no("location " + h.symbols().location_name(loc) +
                        " has no legal per-location order"));
      }
      per_loc.push_back(std::move(*view));
    }
    Verdict v = Verdict::yes();
    v.views = std::move(per_loc);
    v.note = "views are per-location serializations";
    return v;
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (v.views.size() != h.num_locations()) {
      return "cache witness must have one view per location";
    }
    const order::Orders ord(h);
    const auto& po = ord.po();
    for (LocId loc = 0; loc < h.num_locations(); ++loc) {
      const auto universe = checker::ops_on(h, loc);
      if (auto err = checker::verify_view(h, universe, po, v.views[loc])) {
        return "location " + std::to_string(loc) + ": " + *err;
      }
    }
    return std::nullopt;
  }
};

}  // namespace

ModelPtr make_cache() { return std::make_unique<CacheModel>(); }

}  // namespace ssm::models
