// Causal + coherent memory: the new memories the paper sketches in §7 —
// "a mutual consistency condition that requires coherence can be added to
// causal memory, or perhaps such coherence can only be required for
// labeled operations".  Both suggestions implemented:
//   * CausalCoh: δp = w; causal order preserved; per-location write order
//     shared by all views (coherence over ALL writes);
//   * CausalCohL: same, but the shared per-location order covers only the
//     LABELED writes — ordinary writes stay merely causal.
#include "checker/scope.hpp"
#include "models/labeling.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"
#include "order/coherence.hpp"
#include "order/derived.hpp"

namespace ssm::models {
namespace {

class CausalCoherentModel final : public Model {
 public:
  explicit CausalCoherentModel(bool labeled_only)
      : labeled_only_(labeled_only) {}

  std::string_view name() const noexcept override {
    return labeled_only_ ? "CausalCohL" : "CausalCoh";
  }
  std::string_view description() const noexcept override {
    return labeled_only_
               ? "causal memory + coherence on labeled writes only (the "
                 "second new memory of paper §7)"
               : "causal memory + coherence (the new memory of paper §7)";
  }

  Verdict check(const SystemHistory& h) const override {
    if (labeled_only_) {
      if (auto err = check_properly_labeled(h)) return Verdict::no(*err);
    }
    const order::Orders ord(h);
    const auto& co = ord.co();
    if (!co.is_acyclic()) return Verdict::no("causal order is cyclic");
    Verdict result = Verdict::no();
    // For the labeled-only variant, restrict the enumerated per-location
    // sequences to labeled writes by erasing ordinary writes from each
    // candidate's chain contribution.
    order::for_each_coherence_order(
        h, co, [&](const order::CoherenceOrder& coh) {
          if (!checker::charge_budget(1)) return false;
          rel::Relation chain = coherence_chain(h, coh);
          rel::Relation constraints = co | chain;
          if (!constraints.is_acyclic()) return true;
          Verdict attempt;
          if (solve_per_processor(h, [&](ProcId p) {
                return ViewProblem{checker::own_plus_writes(h, p),
                                   constraints,
                                   checker::remote_rmw_reads(h, p)};
              }, attempt)) {
            result = std::move(attempt);
            result.coherence = coh;
            return false;
          }
          return true;
        });
    return checker::resolve_with_budget(std::move(result));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    if (!v.allowed) return std::nullopt;
    if (!v.coherence) {
      return std::string(name()) + " witness lacks a coherence order";
    }
    const order::Orders ord(h);
    rel::Relation constraints = ord.co() | coherence_chain(h, *v.coherence);
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p), constraints,
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }

 private:
  /// The chain edges every view must embed: all writes (CausalCoh), or
  /// only the labeled writes of each location's sequence (CausalCohL).
  [[nodiscard]] rel::Relation coherence_chain(
      const SystemHistory& h, const order::CoherenceOrder& coh) const {
    if (!labeled_only_) return coh.as_relation();
    rel::Relation r(h.size());
    for (LocId loc = 0; loc < h.num_locations(); ++loc) {
      const auto& seq = coh.writes(loc);
      for (std::size_t i = 0; i < seq.size(); ++i) {
        if (!h.op(seq[i]).is_labeled()) continue;
        for (std::size_t j = i + 1; j < seq.size(); ++j) {
          if (h.op(seq[j]).is_labeled()) r.add(seq[i], seq[j]);
        }
      }
    }
    return r;
  }

  bool labeled_only_;
};

}  // namespace

ModelPtr make_causal_coherent() {
  return std::make_unique<CausalCoherentModel>(false);
}

ModelPtr make_causal_coherent_labeled() {
  return std::make_unique<CausalCoherentModel>(true);
}

}  // namespace ssm::models
