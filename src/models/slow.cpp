// Slow memory [Hutto-Ahamad 90] (extension): between local consistency and
// PRAM.  A processor must respect its own program order and, for every
// other processor q and location x, the program order of q's writes to x —
// but q's writes to *different* locations may be observed out of order.
#include "checker/scope.hpp"
#include "models/edges.hpp"
#include "models/models.hpp"
#include "models/per_processor.hpp"

namespace ssm::models {
namespace {

class SlowModel final : public Model {
 public:
  std::string_view name() const noexcept override { return "Slow"; }
  std::string_view description() const noexcept override {
    return "slow memory [Hutto-Ahamad 90]: per-(writer,location) write "
           "pipelines plus own program order (extension)";
  }

  Verdict check(const SystemHistory& h) const override {
    Verdict v;
    solve_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p),
                         slow_constraints(h, p),
                         checker::remote_rmw_reads(h, p)};
    }, v);
    return checker::resolve_with_budget(std::move(v));
  }

  std::optional<std::string> verify_witness(const SystemHistory& h,
                                            const Verdict& v) const override {
    return verify_per_processor(h, [&](ProcId p) {
      return ViewProblem{checker::own_plus_writes(h, p),
                         slow_constraints(h, p),
                         checker::remote_rmw_reads(h, p)};
    }, v);
  }
};

}  // namespace

ModelPtr make_slow() { return std::make_unique<SlowModel>(); }

}  // namespace ssm::models
