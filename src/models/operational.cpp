#include "models/operational.hpp"

#include "history/print.hpp"
#include "simulate/causal_memory.hpp"
#include "simulate/coherent_memory.hpp"
#include "simulate/explore.hpp"
#include "simulate/pram_memory.hpp"
#include "simulate/rc_memory.hpp"
#include "simulate/sc_memory.hpp"
#include "simulate/tso_memory.hpp"

namespace ssm::models {
namespace {

sim::ExploreFactory factory_for(const std::string& machine) {
  if (machine == "sc") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_sc_machine(p, l);
    };
  }
  if (machine == "tso") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_tso_machine(p, l);
    };
  }
  if (machine == "pram") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_pram_machine(p, l);
    };
  }
  if (machine == "causal") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_causal_machine(p, l);
    };
  }
  if (machine == "coherent") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_coherent_machine(p, l);
    };
  }
  if (machine == "rc-sc") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_rc_sc_machine(p, l);
    };
  }
  if (machine == "rc-pc") {
    return [](std::size_t p, std::size_t l) {
      return sim::make_rc_pc_machine(p, l);
    };
  }
  throw InvalidInput("unknown machine for operational model: '" + machine +
                     "'");
}

/// The program behind a history: per-processor op sequences with read
/// results erased (the machine decides what reads return).
sim::Plan plan_of(const SystemHistory& h) {
  sim::Plan plan(h.num_processors());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    for (OpIndex i : h.processor_ops(p)) {
      const auto& op = h.op(i);
      sim::PlannedOp planned;
      planned.loc = op.loc;
      planned.label = op.label;
      if (op.kind == OpKind::ReadModifyWrite) {
        planned.is_write = true;
        planned.is_rmw = true;
        planned.value = op.value;
      } else if (op.is_write()) {
        planned.is_write = true;
        planned.value = op.value;
      }
      plan[p].push_back(planned);
    }
  }
  return plan;
}

class OperationalModel final : public Model {
 public:
  OperationalModel(std::string machine, std::uint64_t max_schedules)
      : machine_(std::move(machine)),
        name_("op:" + machine_),
        description_("operational model: exhaustive exploration of the " +
                     machine_ + " machine"),
        factory_(factory_for(machine_)),
        max_schedules_(max_schedules) {}

  std::string_view name() const noexcept override { return name_; }
  std::string_view description() const noexcept override {
    return description_;
  }

  Verdict check(const SystemHistory& h) const override {
    // The explorer's traces use canonical processor/location names, so
    // render the target through a canonical symbol table too.
    const std::string target =
        history::format_history(history::canonicalized(h));
    sim::ExploreOptions options;
    options.max_schedules = max_schedules_;
    const auto plan = plan_of(h);
    bool found = false;
    // explore_traces collects the full set; we can stop early by scanning
    // incrementally — reuse explore_traces and check membership (the
    // trace set is small at litmus scale).
    const auto result =
        sim::explore_traces(factory_, plan, h.num_locations(), options);
    found = result.traces.count(target) > 0;
    if (found) {
      Verdict v = Verdict::yes();
      v.note = "reachable by some schedule of the " + machine_ + " machine";
      return v;
    }
    return Verdict::no(result.truncated
                           ? "not found within the schedule cap (truncated)"
                           : "no schedule of the " + machine_ +
                                 " machine reproduces these read values");
  }

 private:
  std::string machine_;
  std::string name_;
  std::string description_;
  sim::ExploreFactory factory_;
  std::uint64_t max_schedules_;
};

}  // namespace

ModelPtr make_operational(std::string machine, std::uint64_t max_schedules) {
  return std::make_unique<OperationalModel>(std::move(machine),
                                            max_schedules);
}

}  // namespace ssm::models
