#include "models/labeling.hpp"

namespace ssm::models {

std::optional<std::string> check_properly_labeled(
    const history::SystemHistory& h) {
  for (const auto& op : h.operations()) {
    if (!op.is_labeled() || !op.is_read()) continue;
    const OpIndex w = h.writer_of(op.index);
    if (w != kNoOp && !h.op(w).is_labeled()) {
      return "labeled read " + history::to_string(op) +
             " observes an ordinary write; history is improperly labeled";
    }
  }
  return std::nullopt;
}

rel::Relation bracket_edges(const history::SystemHistory& h) {
  rel::Relation r(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& labeled = h.op(ops[i]);
      if (!labeled.is_labeled()) continue;
      if (labeled.is_acquire()) {
        const OpIndex acquired_write = h.writer_of(ops[i]);
        if (acquired_write == kNoOp) continue;  // read of the initial value
        for (std::size_t j = i + 1; j < ops.size(); ++j) {
          if (h.op(ops[j]).label == OpLabel::Ordinary) {
            r.add(acquired_write, ops[j]);
          }
        }
      }
      if (labeled.is_release()) {
        for (std::size_t j = 0; j < i; ++j) {
          if (h.op(ops[j]).label == OpLabel::Ordinary) {
            r.add(ops[j], ops[i]);
          }
        }
      }
    }
  }
  return r;
}

}  // namespace ssm::models
