#include "models/edges.hpp"

#include "common/types.hpp"

namespace ssm::models {

rel::DynBitset forwarded_reads(const SystemHistory& h) {
  rel::DynBitset out(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t j = 0; j < ops.size(); ++j) {
      const auto& r = h.op(ops[j]);
      if (r.kind != OpKind::Read) continue;
      const OpIndex w = h.writer_of(ops[j]);
      if (w == kNoOp || h.op(w).proc != p || h.op(w).seq >= r.seq) continue;
      // w must be the latest preceding same-location write of p.
      bool latest = true;
      for (std::size_t k = 0; k < j; ++k) {
        const auto& mid = h.op(ops[k]);
        if (mid.is_write() && mid.loc == r.loc && mid.seq > h.op(w).seq) {
          latest = false;
          break;
        }
      }
      if (latest) out.set(ops[j]);
    }
  }
  return out;
}

rel::Relation forwarding_ppo(const SystemHistory& h) {
  rel::Relation base(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& o1 = h.op(ops[i]);
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const auto& o2 = h.op(ops[j]);
        const bool both_reads = o1.is_read() && o2.is_read();
        const bool both_writes = o1.is_write() && o2.is_write();
        const bool read_then_write = o1.is_read() && o2.is_write();
        bool same_loc = o1.loc == o2.loc;
        if (same_loc && o1.kind == OpKind::Write && o2.kind == OpKind::Read &&
            h.writer_of(ops[j]) == ops[i]) {
          same_loc = false;  // forwarded: no global ordering obligation
        }
        if (same_loc || both_reads || both_writes || read_then_write) {
          base.add(ops[i], ops[j]);
        }
      }
    }
  }
  return base.transitive_closure();
}

rel::Relation fence_edges(const SystemHistory& h) {
  rel::Relation r(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (h.op(ops[i]).is_labeled() != h.op(ops[j]).is_labeled()) {
          r.add(ops[i], ops[j]);
        }
      }
    }
  }
  return r;
}

rel::Relation hybrid_edges(const SystemHistory& h) {
  rel::Relation r(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        if (h.op(ops[i]).is_labeled() || h.op(ops[j]).is_labeled()) {
          r.add(ops[i], ops[j]);
        }
      }
    }
  }
  return r;
}

rel::Relation slow_constraints(const SystemHistory& h, ProcId p) {
  rel::Relation r(h.size());
  // Own operations: full program order.
  const auto own = h.processor_ops(p);
  for (std::size_t i = 0; i < own.size(); ++i) {
    for (std::size_t j = i + 1; j < own.size(); ++j) {
      r.add(own[i], own[j]);
    }
  }
  // Other processors' writes: program order per (writer, location) pipeline.
  for (ProcId q = 0; q < h.num_processors(); ++q) {
    if (q == p) continue;
    const auto ops = h.processor_ops(q);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& o1 = h.op(ops[i]);
      if (!o1.is_write()) continue;
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const auto& o2 = h.op(ops[j]);
        if (o2.is_write() && o2.loc == o1.loc) r.add(ops[i], ops[j]);
      }
    }
  }
  return r;
}

rel::Relation own_po_only(const SystemHistory& h, ProcId p) {
  rel::Relation r(h.size());
  const auto ops = h.processor_ops(p);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      r.add(ops[i], ops[j]);
    }
  }
  return r;
}

rel::Relation po_minus_store_load(const SystemHistory& h) {
  rel::Relation r(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& a = h.op(ops[i]);
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const auto& b = h.op(ops[j]);
        const bool store_then_load =
            a.kind == OpKind::Write && b.kind == OpKind::Read;
        if (!store_then_load) r.add(ops[i], ops[j]);
      }
    }
  }
  return r;
}

rel::DynBitset own_mask(const SystemHistory& h, ProcId p) {
  rel::DynBitset own(h.size());
  for (OpIndex i : h.processor_ops(p)) own.set(i);
  return own;
}

}  // namespace ssm::models
