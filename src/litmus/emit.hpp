// DSL emitter: the inverse of the litmus parser.
//
// emit() renders a LitmusTest into the exact textual form parse_test
// accepts, and the pair round-trips both ways:
//
//   emit(parse_test(text))   reproduces canonically formatted `text`
//   parse_test(emit(t))      reproduces `t` (same per-processor op
//                            sequences, labels, rmw values, expectations)
//
// The round trip is property-tested against the fuzz generator
// (tests/litmus/emit_test.cpp), which is what lets the fuzzing subsystem
// persist shrunk counterexamples as .litmus regression files
// (src/fuzz/corpus.hpp) that the parser replays byte-for-byte.
#pragma once

#include <string>
#include <vector>

#include "litmus/test.hpp"

namespace ssm::litmus {

/// Renders one test as DSL text (trailing newline included).  Processors
/// are emitted in ProcId order and expectations in the map's sorted model
/// order, so the output is canonical: two structurally equal tests emit
/// byte-identical text.
[[nodiscard]] std::string emit(const LitmusTest& t);

/// Renders a document of tests separated by blank lines; the inverse of
/// parse_suite.
[[nodiscard]] std::string emit_suite(const std::vector<LitmusTest>& tests);

}  // namespace ssm::litmus
