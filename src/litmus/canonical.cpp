#include "litmus/canonical.hpp"

#include <algorithm>
#include <map>

#include "litmus/emit.hpp"

namespace ssm::litmus {
namespace {

using history::Operation;
using history::SystemHistory;

/// Enumeration cap: the product of the symmetry-group factorials is not
/// allowed past this.  7! = 5040 — far beyond any litmus-scale test with a
/// genuine symmetry; an over-cap input degrades to one deterministic
/// (but not permutation-invariant) candidate, which weakens dedup, never
/// soundness.
constexpr std::size_t kMaxProcOrders = 5040;

/// Invariant fingerprint of one processor's sequence: op kinds, labels,
/// locations by first appearance *within this processor*, and non-initial
/// values by first appearance per location within this processor.  Reads
/// of the initial value render as 'i' (writer-less, so "observes 0" is a
/// structural fact, not a value identity).  Two processors related by any
/// processor/location/value renaming produce the same signature.
std::string proc_signature(const SystemHistory& h, ProcId p,
                           const std::vector<OpIndex>& writer) {
  std::string sig;
  std::map<LocId, std::size_t> loc_idx;
  std::map<LocId, std::map<Value, std::size_t>> val_idx;
  const auto value_token = [&](LocId loc, Value v, bool initial) {
    if (initial) {
      sig += 'i';
      return;
    }
    auto& vals = val_idx[loc];
    const auto it = vals.emplace(v, vals.size()).first;
    sig += 'v';
    sig += std::to_string(it->second);
  };
  for (OpIndex i : h.processor_ops(p)) {
    const Operation& op = h.op(i);
    switch (op.kind) {
      case OpKind::Read:
        sig += 'r';
        break;
      case OpKind::Write:
        sig += 'w';
        break;
      case OpKind::ReadModifyWrite:
        sig += 'm';
        break;
    }
    if (op.is_labeled()) sig += '*';
    const auto lit = loc_idx.emplace(op.loc, loc_idx.size()).first;
    sig += 'l';
    sig += std::to_string(lit->second);
    if (op.is_read()) {
      value_token(op.loc, op.read_value(), writer[i] == kNoOp);
    }
    if (op.is_write()) value_token(op.loc, op.value, false);
    sig += ';';
  }
  return sig;
}

/// One candidate renaming under a fixed processor order: location ids by
/// first appearance over the whole traversal, write values per location
/// renamed to 1,2,… by first appearance of the *written* value (two writes
/// of one value stay equal — their equality is unobservable anyway, see
/// SystemHistory::writer_of).  Reads take their writer's renamed value;
/// initial-value reads stay 0, and since no renamed write stores 0 the
/// result still validates.
struct Renaming {
  std::vector<LocId> loc_map;                 // original -> canonical
  std::vector<std::map<Value, Value>> vals;   // per ORIGINAL loc
};

Renaming build_renaming(const SystemHistory& h,
                        const std::vector<ProcId>& order) {
  Renaming ren;
  ren.loc_map.assign(h.num_locations(), static_cast<LocId>(-1));
  ren.vals.resize(h.num_locations());
  LocId next_loc = 0;
  for (const ProcId p : order) {
    for (OpIndex i : h.processor_ops(p)) {
      const Operation& op = h.op(i);
      if (ren.loc_map[op.loc] == static_cast<LocId>(-1)) {
        ren.loc_map[op.loc] = next_loc++;
      }
      if (op.is_write()) {
        auto& vals = ren.vals[op.loc];
        vals.emplace(op.value, static_cast<Value>(vals.size() + 1));
      }
    }
  }
  return ren;
}

Value renamed_read_value(const Renaming& ren, const Operation& op,
                         OpIndex writer_idx) {
  if (writer_idx == kNoOp) return kInitialValue;
  return ren.vals[op.loc].at(op.read_value());
}

/// Renders the candidate's emit body (everything after the "name: h" line)
/// byte-for-byte as litmus::emit would — candidates are compared, and the
/// minimum chosen, on these exact bytes.
std::string render_body(const SystemHistory& h,
                        const std::vector<ProcId>& order, const Renaming& ren,
                        const std::vector<OpIndex>& writer) {
  std::string out;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    out += 'p';
    out += std::to_string(pos);
    out += ':';
    for (OpIndex i : h.processor_ops(order[pos])) {
      const Operation& op = h.op(i);
      out += ' ';
      switch (op.kind) {
        case OpKind::Read:
          out += 'r';
          break;
        case OpKind::Write:
          out += 'w';
          break;
        case OpKind::ReadModifyWrite:
          out += "rmw";
          break;
      }
      if (op.is_labeled()) out += '*';
      out += "(x";
      out += std::to_string(ren.loc_map[op.loc]);
      out += ')';
      if (op.kind == OpKind::ReadModifyWrite) {
        out += std::to_string(renamed_read_value(ren, op, writer[i]));
        out += ':';
        out += std::to_string(ren.vals[op.loc].at(op.value));
      } else if (op.is_write()) {
        out += std::to_string(ren.vals[op.loc].at(op.value));
      } else {
        out += std::to_string(renamed_read_value(ren, op, writer[i]));
      }
    }
    out += '\n';
  }
  return out;
}

/// Candidate processor orders: processors grouped by signature (groups in
/// sorted signature order), every within-group permutation enumerated up
/// to kMaxProcOrders total.  Distinct-signature processors never swap, so
/// the candidate count is the product of the symmetry groups' factorials,
/// not P!.
std::vector<std::vector<ProcId>> candidate_orders(
    const SystemHistory& h, const std::vector<OpIndex>& writer) {
  const std::size_t procs = h.num_processors();
  std::map<std::string, std::vector<ProcId>> groups;
  for (ProcId p = 0; p < procs; ++p) {
    groups[proc_signature(h, p, writer)].push_back(p);
  }
  std::size_t total = 1;
  for (const auto& [sig, members] : groups) {
    for (std::size_t k = 2; k <= members.size(); ++k) {
      total *= k;
      if (total > kMaxProcOrders) break;
    }
    if (total > kMaxProcOrders) break;
  }
  if (total > kMaxProcOrders) {
    // Over the cap: one deterministic candidate (grouped, members in
    // original order).  Sound, possibly non-invariant — see header.
    std::vector<ProcId> order;
    for (const auto& [sig, members] : groups) {
      order.insert(order.end(), members.begin(), members.end());
    }
    return {std::move(order)};
  }
  std::vector<std::vector<ProcId>> orders{{}};
  for (auto& [sig, members] : groups) {
    std::sort(members.begin(), members.end());
    std::vector<std::vector<ProcId>> expanded;
    std::vector<ProcId> perm = members;
    do {
      for (const auto& prefix : orders) {
        std::vector<ProcId> next = prefix;
        next.insert(next.end(), perm.begin(), perm.end());
        expanded.push_back(std::move(next));
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    orders = std::move(expanded);
  }
  return orders;
}

}  // namespace

Canonical canonicalize(const LitmusTest& t) {
  const SystemHistory& h = t.hist;
  std::vector<OpIndex> writer(h.size(), kNoOp);
  for (const Operation& op : h.operations()) {
    if (op.is_read()) writer[op.index] = h.writer_of(op.index);
  }

  const auto orders = candidate_orders(h, writer);
  std::size_t best = 0;
  std::string best_body;
  Renaming best_ren;
  for (std::size_t k = 0; k < orders.size(); ++k) {
    Renaming ren = build_renaming(h, orders[k]);
    std::string body = render_body(h, orders[k], ren, writer);
    if (k == 0 || body < best_body) {
      best = k;
      best_body = std::move(body);
      best_ren = std::move(ren);
    }
  }
  const std::vector<ProcId>& order = orders[best];

  Canonical out;
  out.proc_map.assign(h.num_processors(), 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    out.proc_map[order[pos]] = static_cast<ProcId>(pos);
  }
  out.loc_map = best_ren.loc_map;
  // Interned-but-unused locations (possible in builder-made tests) never
  // appeared in the traversal; give them the remaining canonical ids so
  // loc_map stays a total bijection.
  {
    LocId next = 0;
    for (const LocId m : out.loc_map) {
      if (m != static_cast<LocId>(-1) && m >= next) {
        next = static_cast<LocId>(m + 1);
      }
    }
    for (auto& m : out.loc_map) {
      if (m == static_cast<LocId>(-1)) m = next++;
    }
  }
  out.op_map.assign(h.size(), kNoOp);

  history::SymbolTable symbols;
  for (std::size_t p = 0; p < h.num_processors(); ++p) {
    symbols.intern_processor("p" + std::to_string(p));
  }
  for (std::size_t l = 0; l < h.num_locations(); ++l) {
    symbols.intern_location("x" + std::to_string(l));
  }
  out.test.name = "h";
  out.test.hist = SystemHistory(std::move(symbols));
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    for (OpIndex i : h.processor_ops(order[pos])) {
      const Operation& src = h.op(i);
      Operation op;
      op.kind = src.kind;
      op.label = src.label;
      op.proc = static_cast<ProcId>(pos);
      op.loc = best_ren.loc_map[src.loc];
      if (src.is_write()) op.value = best_ren.vals[src.loc].at(src.value);
      if (src.kind == OpKind::ReadModifyWrite) {
        op.rmw_read = renamed_read_value(best_ren, src, writer[i]);
      } else if (src.is_read()) {
        op.value = renamed_read_value(best_ren, src, writer[i]);
      }
      out.op_map[i] = out.test.hist.append(op);
    }
  }
  out.key = emit(out.test);

  LitmusTest stripped;
  stripped.name = "h";
  stripped.hist = t.hist;
  out.identity_ = (emit(stripped) == out.key);
  return out;
}

std::string canonical_key(const LitmusTest& t) { return canonicalize(t).key; }

checker::Witness remap_witness_from_canonical(const checker::Witness& w,
                                              const Canonical& c) {
  std::vector<OpIndex> inv_op(c.op_map.size(), kNoOp);
  for (std::size_t orig = 0; orig < c.op_map.size(); ++orig) {
    inv_op[c.op_map[orig]] = static_cast<OpIndex>(orig);
  }
  const auto remap_seq = [&](const std::vector<OpIndex>& seq) {
    std::vector<OpIndex> out;
    out.reserve(seq.size());
    for (const OpIndex i : seq) out.push_back(inv_op.at(i));
    return out;
  };

  checker::Witness out;
  out.model = w.model;
  out.note = w.note;

  // views/delta are indexed by ProcId — except the Cache model, whose
  // per-location serializations are indexed by LocId (witness.hpp).
  const bool by_loc = (w.model == "Cache");
  const std::size_t slots = by_loc ? c.loc_map.size() : c.proc_map.size();
  const auto canonical_slot = [&](std::size_t orig) {
    return by_loc ? static_cast<std::size_t>(c.loc_map[orig])
                  : static_cast<std::size_t>(c.proc_map[orig]);
  };
  if (w.views.size() == slots) {
    out.views.resize(slots);
    out.delta.resize(w.delta.size() == slots ? slots : 0);
    for (std::size_t orig = 0; orig < slots; ++orig) {
      out.views[orig] = remap_seq(w.views[canonical_slot(orig)]);
      if (w.delta.size() == slots) {
        out.delta[orig] = remap_seq(w.delta[canonical_slot(orig)]);
        std::sort(out.delta[orig].begin(), out.delta[orig].end());
      }
    }
  } else {
    // Slot count does not match the per-proc/per-loc convention (e.g.
    // TSOax's empty views): remap elements in place.
    for (const auto& v : w.views) out.views.push_back(remap_seq(v));
    for (const auto& d : w.delta) {
      auto mapped = remap_seq(d);
      std::sort(mapped.begin(), mapped.end());
      out.delta.push_back(std::move(mapped));
    }
  }

  out.labeled = remap_seq(w.labeled);
  std::sort(out.labeled.begin(), out.labeled.end());

  if (w.coherence.has_value() && w.coherence->size() == c.loc_map.size()) {
    std::vector<std::vector<OpIndex>> coh(c.loc_map.size());
    for (std::size_t orig = 0; orig < c.loc_map.size(); ++orig) {
      coh[orig] = remap_seq((*w.coherence)[c.loc_map[orig]]);
    }
    out.coherence = std::move(coh);
  } else if (w.coherence.has_value()) {
    std::vector<std::vector<OpIndex>> coh;
    for (const auto& seq : *w.coherence) coh.push_back(remap_seq(seq));
    out.coherence = std::move(coh);
  }
  if (w.labeled_order.has_value()) {
    out.labeled_order = remap_seq(*w.labeled_order);
  }
  return out;
}

}  // namespace ssm::litmus
