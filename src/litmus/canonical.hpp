// Symmetry canonicalization: a litmus test rewritten into a canonical
// representative of its isomorphism class.
//
// Two tests are *isomorphic* when one maps onto the other by a processor
// permutation, a location renaming, and a per-location renaming of the
// written values (reads follow their writers; a read of the initial value
// stays 0).  Such a mapping is a bijection of operations that preserves
// kind, label, rmw structure, program order, and the reads-from function —
// so every order the checker derives (po, ppo, wb, co, sem) and every view
// problem it solves transports along the mapping, and all 18 models give
// the same verdict to both tests (docs/PERFORMANCE.md spells the argument
// out).  Canonicalization picks one fixed representative per class, which
// turns "isomorphic" into "equal canonical key" — the content address used
// by the service verdict cache, the persisted cache records, the fuzz
// corpus dedup, and litmus::run_suite's isomorphism dedup.
//
// Completeness is best-effort: processor permutations are enumerated only
// within groups of processors whose invariant signatures collide, and the
// enumeration is capped (kMaxProcOrders).  Past the cap some isomorphic
// pairs may canonicalize differently — that costs a cache hit, never a
// wrong verdict, because the representative is always isomorphic to its
// input.
#pragma once

#include <string>
#include <vector>

#include "checker/witness.hpp"
#include "litmus/test.hpp"

namespace ssm::litmus {

/// A canonical representative plus the mapping that produced it.
struct Canonical {
  /// The representative: an isomorphic clone of the input over canonical
  /// processor names p0,p1,…, location names x0,x1,…, and per-location
  /// write values 1,2,… in first-appearance order.  `name` is the fixed
  /// "h"; origin and expectations are stripped.
  LitmusTest test;

  /// Canonical cache key: litmus::emit(test).  Equal for every member of
  /// the isomorphism class (up to the enumeration cap).
  std::string key;

  /// proc_map[original ProcId] = canonical ProcId.
  std::vector<ProcId> proc_map;
  /// loc_map[original LocId] = canonical LocId.
  std::vector<LocId> loc_map;
  /// op_map[original dense OpIndex] = canonical dense OpIndex.
  std::vector<OpIndex> op_map;

  /// True when the input already was its own representative (identity
  /// mapping AND identical symbol names/values — emit(input-stripped)
  /// equals `key`).
  [[nodiscard]] bool is_identity() const noexcept { return identity_; }
  bool identity_ = false;
};

/// Canonicalizes `t`.  Requires t.hist to pass SystemHistory::validate()
/// (guaranteed for parser- and builder-produced tests).
[[nodiscard]] Canonical canonicalize(const LitmusTest& t);

/// Just the canonical key of `t` — what run_suite's dedup and the fuzz
/// corpus file name hash.
[[nodiscard]] std::string canonical_key(const LitmusTest& t);

/// Transports a witness certificate computed on `c.test.hist` (the
/// canonical history) back into the frame of the original test the
/// Canonical was built from: op indices through op_map⁻¹, the per-
/// processor view/delta arrays through proc_map⁻¹ (per-location arrays —
/// the Cache model's views and every coherence block — through loc_map⁻¹).
/// The result verifies against the original history iff the input
/// verifies against the canonical one.
[[nodiscard]] checker::Witness remap_witness_from_canonical(
    const checker::Witness& w, const Canonical& c);

}  // namespace ssm::litmus
