// LitmusTest: a named history plus per-model expectations.
//
// Expectations use three-valued logic: expected-allowed, expected-forbidden,
// or unspecified (models the test doesn't speak about).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "history/system_history.hpp"

namespace ssm::litmus {

using history::SystemHistory;

struct LitmusTest {
  std::string name;
  /// Where the test comes from: "paper fig. 1", "classic", etc.
  std::string origin;
  SystemHistory hist;
  /// model name -> expected admission.
  std::map<std::string, bool> expectations;

  [[nodiscard]] std::optional<bool> expectation(
      std::string_view model) const {
    auto it = expectations.find(std::string(model));
    if (it == expectations.end()) return std::nullopt;
    return it->second;
  }
};

}  // namespace ssm::litmus
