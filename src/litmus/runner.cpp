#include "litmus/runner.hpp"

#include <algorithm>
#include <chrono>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"

namespace ssm::litmus {

namespace {

ModelOutcome run_cell(const LitmusTest& t, const models::Model& m,
                      const RunOptions& options) {
  static auto& cell_time =
      common::metrics::Registry::global().histogram("litmus.cell_time_us");
  ModelOutcome mo;
  mo.model = std::string(m.name());
  const auto start = std::chrono::steady_clock::now();
  if (options.budget.unlimited()) {
    const auto v = m.check(t.hist);
    mo.allowed = v.allowed;
    mo.inconclusive = v.inconclusive;
  } else {
    // Fresh budget per cell; ambient for the model and forwarded across
    // the per-processor fan-out by solve_per_processor.
    checker::SearchBudget budget(options.budget);
    const checker::BudgetScope scope(&budget);
    const auto v = m.check(t.hist);
    mo.allowed = v.allowed;
    mo.inconclusive = v.inconclusive;
  }
  cell_time.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  mo.expected = t.expectation(m.name());
  return mo;
}

}  // namespace

TestOutcome run_test(const LitmusTest& t,
                     const std::vector<models::ModelPtr>& models,
                     const RunOptions& options) {
  TestOutcome out;
  out.test = t.name;
  out.per_model.reserve(models.size());
  for (const auto& m : models) {
    out.per_model.push_back(run_cell(t, *m, options));
  }
  return out;
}

std::vector<TestOutcome> run_suite(const std::vector<LitmusTest>& suite,
                                   const std::vector<models::ModelPtr>& models,
                                   const RunOptions& options) {
  const std::size_t num_models = models.size();
  const std::size_t cells = suite.size() * num_models;
  auto& pool = common::ThreadPool::global();
  std::vector<TestOutcome> out(suite.size());
  for (std::size_t ti = 0; ti < suite.size(); ++ti) {
    out[ti].test = suite[ti].name;
    out[ti].per_model.resize(num_models);
  }
  if (pool.jobs() <= 1 || cells <= 1) {
    for (std::size_t ti = 0; ti < suite.size(); ++ti) {
      for (std::size_t mi = 0; mi < num_models; ++mi) {
        out[ti].per_model[mi] = run_cell(suite[ti], *models[mi], options);
      }
    }
    return out;
  }
  // Fan out the independent (test × model) cells.  Each task writes only
  // its own presized slot, so result order — and therefore the rendered
  // matrix — is byte-identical to the serial loop regardless of how the
  // pool interleaves the work.
  pool.parallel_for(cells, [&](std::size_t cell) {
    const std::size_t ti = cell / num_models;
    const std::size_t mi = cell % num_models;
    out[ti].per_model[mi] = run_cell(suite[ti], *models[mi], options);
  });
  return out;
}

std::string format_matrix(const std::vector<TestOutcome>& outcomes) {
  if (outcomes.empty()) return "(no tests)\n";
  std::size_t name_width = 4;
  for (const auto& o : outcomes) {
    name_width = std::max(name_width, o.test.size());
  }
  std::string out(name_width, ' ');
  for (const auto& m : outcomes.front().per_model) {
    out += ' ';
    out += m.model;
  }
  out += '\n';
  for (const auto& o : outcomes) {
    out += o.test;
    out.append(name_width - o.test.size(), ' ');
    for (const auto& m : o.per_model) {
      std::string cell = m.inconclusive ? "?" : (m.allowed ? "Y" : "n");
      if (!m.matches()) cell += '!';
      const std::size_t col_width = m.model.size() + 1;
      if (cell.size() < col_width) {
        out.append(col_width - cell.size(), ' ');
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ssm::litmus
