#include "litmus/runner.hpp"

#include <algorithm>

namespace ssm::litmus {

TestOutcome run_test(const LitmusTest& t,
                     const std::vector<models::ModelPtr>& models) {
  TestOutcome out;
  out.test = t.name;
  out.per_model.reserve(models.size());
  for (const auto& m : models) {
    ModelOutcome mo;
    mo.model = std::string(m->name());
    mo.allowed = m->check(t.hist).allowed;
    mo.expected = t.expectation(m->name());
    out.per_model.push_back(std::move(mo));
  }
  return out;
}

std::vector<TestOutcome> run_suite(
    const std::vector<LitmusTest>& suite,
    const std::vector<models::ModelPtr>& models) {
  std::vector<TestOutcome> out;
  out.reserve(suite.size());
  for (const auto& t : suite) out.push_back(run_test(t, models));
  return out;
}

std::string format_matrix(const std::vector<TestOutcome>& outcomes) {
  if (outcomes.empty()) return "(no tests)\n";
  std::size_t name_width = 4;
  for (const auto& o : outcomes) {
    name_width = std::max(name_width, o.test.size());
  }
  std::string out(name_width, ' ');
  for (const auto& m : outcomes.front().per_model) {
    out += ' ';
    out += m.model;
  }
  out += '\n';
  for (const auto& o : outcomes) {
    out += o.test;
    out.append(name_width - o.test.size(), ' ');
    for (const auto& m : o.per_model) {
      std::string cell = m.allowed ? "Y" : "n";
      if (!m.matches()) cell += '!';
      const std::size_t col_width = m.model.size() + 1;
      if (cell.size() < col_width) {
        out.append(col_width - cell.size(), ' ');
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ssm::litmus
