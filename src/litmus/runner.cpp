#include "litmus/runner.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "litmus/canonical.hpp"
#include "order/derived.hpp"

namespace ssm::litmus {

namespace {

ModelOutcome run_cell(const LitmusTest& t, const models::Model& m,
                      const RunOptions& options,
                      const order::DerivedOrders& orders) {
  static auto& cell_time =
      common::metrics::Registry::global().histogram("litmus.cell_time_us");
  ModelOutcome mo;
  mo.model = std::string(m.name());
  const auto start = std::chrono::steady_clock::now();
  // Every model cell of one test derives its orders from the same shared
  // per-test cache (scoped like the ambient budget below).
  const order::OrdersScope orders_scope(orders);
  if (options.backend != checker::Backend::Search) {
    // Encode / race cells go through the portfolio, which owns its own
    // budgets (one per backend for a race).
    const auto v =
        checker::Portfolio::check(t.hist, m.name(), options.backend,
                                  options.budget);
    mo.allowed = v.allowed;
    mo.inconclusive = v.inconclusive;
  } else if (options.budget.unlimited()) {
    const auto v = m.check(t.hist);
    mo.allowed = v.allowed;
    mo.inconclusive = v.inconclusive;
  } else {
    // Fresh budget per cell; ambient for the model and forwarded across
    // the per-processor fan-out by solve_per_processor.
    checker::SearchBudget budget(options.budget);
    const checker::BudgetScope scope(&budget);
    const auto v = m.check(t.hist);
    mo.allowed = v.allowed;
    mo.inconclusive = v.inconclusive;
  }
  cell_time.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  mo.expected = t.expectation(m.name());
  return mo;
}

}  // namespace

TestOutcome run_test(const LitmusTest& t,
                     const std::vector<models::ModelPtr>& models,
                     const RunOptions& options) {
  TestOutcome out;
  out.test = t.name;
  out.per_model.reserve(models.size());
  order::DerivedOrders orders(t.hist);
  for (const auto& m : models) {
    out.per_model.push_back(run_cell(t, *m, options, orders));
  }
  return out;
}

std::vector<TestOutcome> run_suite(const std::vector<LitmusTest>& suite,
                                   const std::vector<models::ModelPtr>& models,
                                   const RunOptions& options) {
  static auto& iso_hits =
      common::metrics::Registry::global().counter("suite.iso_dedup_hits");
  const std::size_t num_models = models.size();
  auto& pool = common::ThreadPool::global();
  std::vector<TestOutcome> out(suite.size());
  for (std::size_t ti = 0; ti < suite.size(); ++ti) {
    out[ti].test = suite[ti].name;
    out[ti].per_model.resize(num_models);
  }

  // Isomorphism dedup (see RunOptions::dedup_isomorphic): only the first
  // test of each canonical-key class is checked; the rest replay its
  // verdict below.  Canonicalization itself is a scheduler batch — the
  // whole corpus is fed to the work-stealing pool at once and each lane
  // canonicalizes a slice — while class assignment stays a serial
  // first-occurrence fold over the presized key vector, so the chosen
  // representatives (and hence the rendered matrix) are byte-identical to
  // a fully serial run regardless of how the keys were computed.
  std::vector<std::size_t> rep(suite.size());
  const bool dedup = options.dedup_isomorphic && options.budget.unlimited();
  if (dedup) {
    std::vector<std::string> keys(suite.size());
    const auto canonicalize = [&](std::size_t ti) {
      keys[ti] = canonical_key(suite[ti]);
    };
    if (pool.jobs() <= 1 || suite.size() <= 1) {
      for (std::size_t ti = 0; ti < suite.size(); ++ti) canonicalize(ti);
    } else {
      pool.parallel_for(suite.size(), canonicalize);
    }
    std::map<std::string, std::size_t> first_of_class;
    for (std::size_t ti = 0; ti < suite.size(); ++ti) {
      rep[ti] = first_of_class.emplace(std::move(keys[ti]), ti).first->second;
    }
  } else {
    for (std::size_t ti = 0; ti < suite.size(); ++ti) rep[ti] = ti;
  }

  std::vector<std::size_t> reps;
  reps.reserve(suite.size());
  for (std::size_t ti = 0; ti < suite.size(); ++ti) {
    if (rep[ti] == ti) reps.push_back(ti);
  }
  // One shared order cache per checked test (DerivedOrders is pinned in
  // place — pool workers hold references across the fan-out).
  std::vector<std::unique_ptr<order::DerivedOrders>> orders(suite.size());
  for (const std::size_t ti : reps) {
    orders[ti] = std::make_unique<order::DerivedOrders>(suite[ti].hist);
  }

  const std::size_t cells = reps.size() * num_models;
  const auto run_one = [&](std::size_t cell) {
    const std::size_t ti = reps[cell / num_models];
    const std::size_t mi = cell % num_models;
    out[ti].per_model[mi] =
        run_cell(suite[ti], *models[mi], options, *orders[ti]);
  };
  if (pool.jobs() <= 1 || cells <= 1) {
    for (std::size_t cell = 0; cell < cells; ++cell) run_one(cell);
  } else {
    // Fan out the independent (test × model) cells.  Each task writes only
    // its own presized slot, so result order — and therefore the rendered
    // matrix — is byte-identical to the serial loop regardless of how the
    // pool interleaves the work.
    pool.parallel_for(cells, run_one);
  }

  // Replay representative verdicts to the deduplicated members.  Verdicts
  // transport along the isomorphism; expectations are the member's own.
  for (std::size_t ti = 0; ti < suite.size(); ++ti) {
    if (rep[ti] == ti) continue;
    for (std::size_t mi = 0; mi < num_models; ++mi) {
      ModelOutcome mo = out[rep[ti]].per_model[mi];
      mo.expected = suite[ti].expectation(mo.model);
      out[ti].per_model[mi] = std::move(mo);
    }
    iso_hits.add(num_models);
  }
  return out;
}

std::string format_matrix(const std::vector<TestOutcome>& outcomes) {
  if (outcomes.empty()) return "(no tests)\n";
  std::size_t name_width = 4;
  for (const auto& o : outcomes) {
    name_width = std::max(name_width, o.test.size());
  }
  std::string out(name_width, ' ');
  for (const auto& m : outcomes.front().per_model) {
    out += ' ';
    out += m.model;
  }
  out += '\n';
  for (const auto& o : outcomes) {
    out += o.test;
    out.append(name_width - o.test.size(), ' ');
    for (const auto& m : o.per_model) {
      std::string cell = m.inconclusive ? "?" : (m.allowed ? "Y" : "n");
      if (!m.matches()) cell += '!';
      const std::size_t col_width = m.model.size() + 1;
      if (cell.size() < col_width) {
        out.append(col_width - cell.size(), ' ');
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ssm::litmus
