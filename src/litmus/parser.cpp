#include "litmus/parser.hpp"

#include <algorithm>

#include "common/text.hpp"
#include "history/print.hpp"
#include "litmus/emit.hpp"
#include "models/registry.hpp"

namespace ssm::litmus {
namespace {

/// Registered model names, cached once (the registry is immutable).
const std::vector<std::string>& known_models() {
  static const std::vector<std::string> names = models::model_names();
  return names;
}

struct OpToken {
  OpKind kind;
  OpLabel label;
  std::string loc;
  Value value;
  Value rmw_read;
};

/// Parses one operation token, e.g. "w(x)1", "r*(y)0", "rmw(l)0:1".
OpToken parse_op(std::string_view tok) {
  OpToken out{};
  std::size_t i = 0;
  if (tok.starts_with("rmw")) {
    out.kind = OpKind::ReadModifyWrite;
    i = 3;
  } else if (tok.starts_with("w")) {
    out.kind = OpKind::Write;
    i = 1;
  } else if (tok.starts_with("r")) {
    out.kind = OpKind::Read;
    i = 1;
  } else {
    throw InvalidInput("bad operation token: '" + std::string(tok) + "'");
  }
  out.label = OpLabel::Ordinary;
  if (i < tok.size() && tok[i] == '*') {
    out.label = OpLabel::Labeled;
    ++i;
  }
  if (i >= tok.size() || tok[i] != '(') {
    throw InvalidInput("expected '(' in token: '" + std::string(tok) + "'");
  }
  const std::size_t close = tok.find(')', i);
  if (close == std::string_view::npos) {
    throw InvalidInput("missing ')' in token: '" + std::string(tok) + "'");
  }
  out.loc = std::string(tok.substr(i + 1, close - i - 1));
  if (!is_identifier(out.loc)) {
    throw InvalidInput("bad location name in token: '" + std::string(tok) +
                       "'");
  }
  std::string_view rest = tok.substr(close + 1);
  if (rest.empty()) {
    throw InvalidInput("missing value in token: '" + std::string(tok) + "'");
  }
  if (out.kind == OpKind::ReadModifyWrite) {
    const std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      throw InvalidInput("rmw token needs observed:stored values: '" +
                         std::string(tok) + "'");
    }
    out.rmw_read = parse_int(rest.substr(0, colon));
    out.value = parse_int(rest.substr(colon + 1));
  } else {
    out.value = parse_int(rest);
  }
  return out;
}

void parse_expect_line(std::string_view rest, LitmusTest& t) {
  for (std::string_view field : split(rest, ' ')) {
    field = trim(field);
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      throw InvalidInput("bad expectation (need MODEL=yes|no): '" +
                         std::string(field) + "'");
    }
    const std::string model(trim(field.substr(0, eq)));
    const std::string_view val = trim(field.substr(eq + 1));
    bool allowed = false;
    if (val == "yes" || val == "allowed") {
      allowed = true;
    } else if (val == "no" || val == "forbidden") {
      allowed = false;
    } else {
      throw InvalidInput("bad expectation value: '" + std::string(val) + "'");
    }
    // A typo'd model name would silently never be checked against anything;
    // reject it here, where the line is still known.
    const auto& names = known_models();
    if (std::find(names.begin(), names.end(), model) == names.end()) {
      throw InvalidInput("expectation names unregistered model '" + model +
                         "'");
    }
    t.expectations[model] = allowed;
  }
}

/// Parses one non-blank line into `t`.  Errors are annotated with the
/// 1-based document line number by the caller.
void parse_line(std::string_view line, LitmusTest& t) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    throw InvalidInput("litmus line missing ':': '" + std::string(line) +
                       "'");
  }
  const std::string_view key = trim(line.substr(0, colon));
  const std::string_view rest = trim(line.substr(colon + 1));
  if (key == "name") {
    t.name = std::string(rest);
  } else if (key == "origin") {
    t.origin = std::string(rest);
  } else if (key == "expect") {
    parse_expect_line(rest, t);
  } else {
    if (!is_identifier(key)) {
      throw InvalidInput("bad processor name: '" + std::string(key) + "'");
    }
    const ProcId proc = t.hist.symbols().intern_processor(key);
    for (std::string_view tok : split(rest, ' ')) {
      tok = trim(tok);
      if (tok.empty()) continue;
      const OpToken parsed = parse_op(tok);
      history::Operation op;
      op.kind = parsed.kind;
      op.label = parsed.label;
      op.proc = proc;
      op.loc = t.hist.symbols().intern_location(parsed.loc);
      op.value = parsed.value;
      op.rmw_read = parsed.rmw_read;
      t.hist.append(op);
    }
  }
}

LitmusTest parse_lines(const std::vector<std::string_view>& lines,
                       std::size_t begin, std::size_t end) {
  LitmusTest t;
  t.hist = history::SystemHistory(history::SymbolTable{});
  for (std::size_t li = begin; li < end; ++li) {
    std::string_view line = trim(lines[li]);
    if (line.empty() || line.front() == '#') continue;
    try {
      parse_line(line, t);
    } catch (const InvalidInput& e) {
      throw InvalidInput("line " + std::to_string(li + 1) + ": " + e.what());
    }
  }
  if (t.name.empty()) throw InvalidInput("litmus test has no name");
  if (t.hist.empty()) {
    throw InvalidInput("litmus test '" + t.name + "' has no operations");
  }
  if (auto err = t.hist.validate()) {
    throw InvalidInput("litmus test '" + t.name + "': " + *err);
  }
  return t;
}

}  // namespace

LitmusTest parse_test(std::string_view text) {
  const auto lines = split(text, '\n');
  return parse_lines(lines, 0, lines.size());
}

std::vector<LitmusTest> parse_suite(std::string_view text) {
  const auto lines = split(text, '\n');
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = trim(lines[i]);
    if (line.starts_with("name:")) starts.push_back(i);
  }
  if (starts.empty()) throw InvalidInput("no 'name:' headers in document");
  std::vector<LitmusTest> out;
  for (std::size_t k = 0; k < starts.size(); ++k) {
    const std::size_t end = (k + 1 < starts.size()) ? starts[k + 1]
                                                    : lines.size();
    out.push_back(parse_lines(lines, starts[k], end));
  }
  return out;
}

std::string to_dsl(const LitmusTest& t) { return emit(t); }

}  // namespace ssm::litmus
