// The built-in litmus suite: every example history in the paper (Figures
// 1–4 and the §5 Bakery subhistories) plus the classic litmus shapes that
// exercise each pairwise model distinction (MP, IRIW, CoRR, SB+forwarding,
// release/acquire message passing, test-and-set mutual exclusion, …).
//
// Expectations are recorded only where the paper states them or where they
// follow directly from a definition; the full classification matrix over
// all models is computed (not asserted) by the litmus_explorer example and
// the figure benches, and recorded in EXPERIMENTS.md.
#pragma once

#include <vector>

#include "litmus/test.hpp"

namespace ssm::litmus {

/// All built-in tests.
[[nodiscard]] const std::vector<LitmusTest>& builtin_suite();

/// Lookup by name; throws InvalidInput when absent.
[[nodiscard]] const LitmusTest& find_test(std::string_view name);

}  // namespace ssm::litmus
