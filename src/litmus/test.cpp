#include "litmus/test.hpp"

// Currently header-only semantics; translation unit kept so the target has
// a stable home for future out-of-line members.
