// Runner: classify litmus tests against a set of models, check
// expectations, and render classification matrices (the library's
// equivalent of a herd7 run).
#pragma once

#include <string>
#include <vector>

#include "checker/budget.hpp"
#include "litmus/test.hpp"
#include "models/model.hpp"
#include "solve/portfolio.hpp"

namespace ssm::litmus {

struct ModelOutcome {
  std::string model;
  bool allowed = false;
  /// True when the check exhausted its search budget before deciding; the
  /// `allowed` flag is meaningless in that case and the matrix renders "?".
  bool inconclusive = false;
  /// Set when the test carries an expectation for this model.
  std::optional<bool> expected;
  [[nodiscard]] bool matches() const {
    // An undecided cell contradicts nothing: INCONCLUSIVE is a resource
    // statement, not a classification.
    if (inconclusive) return true;
    return !expected.has_value() || *expected == allowed;
  }
};

struct TestOutcome {
  std::string test;
  std::vector<ModelOutcome> per_model;
  [[nodiscard]] bool all_match() const {
    for (const auto& m : per_model) {
      if (!m.matches()) return false;
    }
    return true;
  }
};

/// Knobs for a run.  The budget applies per (test × model) cell — each
/// cell's check gets a fresh SearchBudget of this spec, so one pathological
/// cell cannot starve the rest of the matrix.  Default: unlimited.
struct RunOptions {
  checker::BudgetSpec budget;
  /// Decision backend per cell: the enumerating search (default), the SAT
  /// encoding, or a race of both (docs/PORTFOLIO.md).  Race pairs
  /// naturally with a budget — each backend gets its own fresh budget of
  /// this spec and the first definite verdict retires the cell.
  checker::Backend backend = checker::Backend::Search;
  /// run_suite checks one representative per isomorphism class (see
  /// litmus/canonical.hpp) and replays its verdict to the other members,
  /// whose expectations are still evaluated against their own expect lines.
  /// Sound because isomorphic tests get identical verdicts from every
  /// model; the replayed cells count into `suite.iso_dedup_hits`.  Only
  /// active when the budget is unlimited — under a budget, isomorphic
  /// tests may exhaust at different points (search order follows operation
  /// indices, which the isomorphism permutes), so every cell runs.
  bool dedup_isomorphic = true;
};

/// Runs one test against the given models.
[[nodiscard]] TestOutcome run_test(const LitmusTest& t,
                                   const std::vector<models::ModelPtr>& models,
                                   const RunOptions& options = {});

/// Runs every test against the given models.  The (test × model) cells
/// are independent and fan out across the global common::ThreadPool; the
/// returned vector is always in suite order with per_model in model order,
/// identical to a serial run (see docs/PARALLELISM.md).  Models must be
/// safe to check() concurrently — all registry models are stateless.
[[nodiscard]] std::vector<TestOutcome> run_suite(
    const std::vector<LitmusTest>& suite,
    const std::vector<models::ModelPtr>& models,
    const RunOptions& options = {});

/// ASCII matrix: rows = tests, columns = models; cells "Y"/"n" ("?" when
/// the cell's budget ran out), with "!" appended where the outcome
/// contradicts the recorded expectation.
[[nodiscard]] std::string format_matrix(
    const std::vector<TestOutcome>& outcomes);

}  // namespace ssm::litmus
