#include "litmus/emit.hpp"

namespace ssm::litmus {

std::string emit(const LitmusTest& t) {
  std::string out = "name: " + t.name + "\n";
  if (!t.origin.empty()) out += "origin: " + t.origin + "\n";
  const auto& h = t.hist;
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    out += h.symbols().processor_name(p);
    out += ':';
    for (OpIndex i : h.processor_ops(p)) {
      const auto& op = h.op(i);
      out += ' ';
      switch (op.kind) {
        case OpKind::Read:
          out += 'r';
          break;
        case OpKind::Write:
          out += 'w';
          break;
        case OpKind::ReadModifyWrite:
          out += "rmw";
          break;
      }
      if (op.is_labeled()) out += '*';
      out += '(';
      out += h.symbols().location_name(op.loc);
      out += ')';
      if (op.kind == OpKind::ReadModifyWrite) {
        out += std::to_string(op.rmw_read) + ":" + std::to_string(op.value);
      } else {
        out += std::to_string(op.value);
      }
    }
    out += '\n';
  }
  if (!t.expectations.empty()) {
    out += "expect:";
    for (const auto& [model, allowed] : t.expectations) {
      out += ' ';
      out += model;
      out += '=';
      out += allowed ? "yes" : "no";
    }
    out += '\n';
  }
  return out;
}

std::string emit_suite(const std::vector<LitmusTest>& tests) {
  std::string out;
  for (std::size_t i = 0; i < tests.size(); ++i) {
    if (i > 0) out += '\n';
    out += emit(tests[i]);
  }
  return out;
}

}  // namespace ssm::litmus
