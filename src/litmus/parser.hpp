// Text DSL for litmus tests.
//
//   name: SB
//   origin: paper fig. 1
//   p: w(x)1 r(y)0
//   q: w(y)1 r(x)0
//   expect: SC=no TSO=yes PC=yes Causal=yes PRAM=yes
//
// Operation syntax:
//   w(x)1      write 1 to x            r(y)0      read 0 from y
//   w*(x)1     labeled (sync) write    r*(y)0     labeled read
//   rmw(x)0:1  read-modify-write observing 0, storing 1 (labeled: rmw*)
// Lines starting with '#' are comments.  Multiple tests in one document are
// separated by blank 'name:' headers; parse_suite returns them all.
#pragma once

#include <string_view>
#include <vector>

#include "litmus/test.hpp"

namespace ssm::litmus {

/// Parses a single test (throws InvalidInput on malformed text).
[[nodiscard]] LitmusTest parse_test(std::string_view text);

/// Parses a document of one or more tests.
[[nodiscard]] std::vector<LitmusTest> parse_suite(std::string_view text);

/// Renders a test back into DSL text (round-trip tested).  Alias for
/// litmus::emit (emit.hpp), kept for callers that only include the parser.
[[nodiscard]] std::string to_dsl(const LitmusTest& t);

}  // namespace ssm::litmus
