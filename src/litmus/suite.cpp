#include "litmus/suite.hpp"

#include "litmus/parser.hpp"

namespace ssm::litmus {
namespace {

// Each test is DSL text (see parser.hpp).  Expectations: paper-stated
// results and direct consequences of the definitions; "yes" = admitted.
constexpr std::string_view kSuiteText = R"LITMUS(
# ---- Paper figures -------------------------------------------------------

name: fig1-sb
origin: paper fig. 1 (store buffering)
p: w(x)1 r(y)0
q: w(y)1 r(x)0
expect: SC=no TSO=yes TSOfwd=yes PC=yes PCg=yes Causal=yes CausalCoh=yes PRAM=yes Slow=yes Local=yes Cache=yes RCsc=yes RCpc=yes RCg=yes WO=yes HC=yes

name: fig2-wrc
origin: paper fig. 2 (PC execution that is not TSO; write-to-read causality)
p: w(x)1
q: r(x)1 w(y)1
r: r(y)1 r(x)0
expect: SC=no TSO=no PC=yes PCg=yes Causal=no PRAM=yes Slow=yes Local=yes Cache=yes

name: fig3-pram
origin: paper fig. 3 (PRAM history that is not TSO)
p: w(x)1 r(x)1 r(x)2
q: w(x)2 r(x)2 r(x)1
expect: SC=no TSO=no TSOfwd=no PC=no PCg=no Causal=yes CausalCoh=no PRAM=yes Slow=yes Local=yes Cache=no

name: fig4-causal
origin: paper fig. 4 (causal history that is not TSO)
p: w(x)1 w(y)1
q: r(y)1 w(z)1 r(x)2
r: w(x)2 r(x)1 r(z)1 r(y)1
expect: SC=no TSO=no PC=no PCg=no Causal=yes CausalCoh=no PRAM=yes Cache=yes

name: bakery2-rcpc
origin: paper sec. 5 (Bakery n=2 violating execution; labeled sync ops, ordinary critical-section writes; choosing encoded 1=true 2=false)
p: w*(c0)1 r*(n1)0 w*(n0)1 w*(c0)2 r*(c1)0 r*(n1)0 w(d)1
q: w*(c1)1 r*(n0)0 w*(n1)1 w*(c1)2 r*(c0)0 r*(n0)0 w(d)2
expect: RCsc=no RCpc=yes RCg=yes WO=no HC=no

# ---- Classic shapes ------------------------------------------------------

name: mp
origin: classic (message passing, stale read)
p: w(x)1 w(y)1
q: r(y)1 r(x)0
expect: SC=no TSO=no TSOfwd=no PC=no PCg=no Causal=no CausalCoh=no PRAM=no Slow=yes Local=yes Cache=yes RCsc=yes RCpc=yes RCg=yes WO=yes HC=yes

name: mp-rel-acq
origin: classic (message passing with release/acquire labeling; d published)
p: w(d)1 w*(f)1
q: r*(f)1 r(d)1
expect: RCsc=yes RCpc=yes RCg=yes WO=yes HC=yes SC=yes

name: mp-rel-acq-broken
origin: classic (release/acquire message passing must not read stale data)
p: w(d)1 w*(f)1
q: r*(f)1 r(d)0
expect: RCsc=no RCpc=no RCg=no WO=no HC=no SC=no

name: sb-labeled
origin: classic (store buffering on sync variables; separates RCsc from RCpc)
p: w*(x)1 r*(y)0
q: w*(y)1 r*(x)0
expect: RCsc=no RCpc=yes RCg=yes WO=no HC=no

name: sb-fwd
origin: classic (store buffering with store-to-load forwarding; see EXPERIMENTS.md TSO forwarding note)
p: w(x)1 r(x)1 r(y)0
q: w(y)1 r(y)1 r(x)0
expect: SC=no TSO=no TSOfwd=yes PC=yes PCg=yes PRAM=yes

name: iriw
origin: classic (independent reads of independent writes)
p: w(x)1
q: w(y)1
r: r(x)1 r(y)0
s: r(y)1 r(x)0
expect: SC=no TSO=no TSOfwd=no PC=yes PCg=yes Causal=yes CausalCoh=yes PRAM=yes Slow=yes Local=yes Cache=yes

name: corr
origin: classic (coherence of read-read, single writer)
p: w(x)1 w(x)2
q: r(x)2 r(x)1
expect: SC=no TSO=no TSOfwd=no PC=no PCg=no Causal=no CausalCoh=no PRAM=no Slow=no Local=yes Cache=no RCsc=no RCpc=no RCg=no WO=no HC=yes

name: corw2
origin: classic (coherence with two writers, opposite read orders)
p: w(x)1
q: w(x)2
r: r(x)1 r(x)2
s: r(x)2 r(x)1
expect: SC=no TSO=no PC=no PCg=no Causal=yes CausalCoh=no PRAM=yes Slow=yes Local=yes Cache=no WO=no HC=yes

name: lb
origin: classic (load buffering; note causal memory FORBIDS it — the wb edges close a causal cycle)
p: r(y)1 w(x)1
q: r(x)1 w(y)1
expect: SC=no TSO=no TSOfwd=no PC=yes PCg=yes Causal=no CausalCoh=no PRAM=yes Slow=yes Local=yes Cache=yes

name: pc-vs-pcg
origin: Ahamad et al. 92 (DASH PC forbids via rwb; Goodman PC admits)
p: w(x)1 w(y)1
q: r(y)1 w(z)1
r: r(z)1 r(x)0
expect: SC=no PC=no PCg=yes Causal=no PRAM=yes

name: pcg-vs-pc
origin: Ahamad et al. 92, other direction (found by exhaustive lattice search): DASH PC admits via ppo write->read bypass; Goodman PC forbids via full program order
p: w(x)1 w(x)2 r(y)0
q: w(y)1 w(x)3 r(x)1
expect: SC=no TSO=yes TSOfwd=yes PC=yes PCg=no Causal=yes CausalCoh=no PRAM=yes Slow=yes Local=yes Cache=yes

name: tas-mutex
origin: classic (test-and-set mutual exclusion violation; rmw joins every view, so even the weakest models forbid it)
p: rmw(l)0:1 w(d)1
q: rmw(l)0:2 w(d)2
expect: SC=no TSO=no TSOfwd=no PC=no PCg=no Causal=no CausalCoh=no PRAM=no Slow=no Local=no Cache=no RCsc=no RCpc=no

name: tas-handoff
origin: classic (test-and-set handoff; second rmw observes the first)
p: rmw(l)0:1
q: rmw(l)1:2
expect: SC=yes TSO=yes PC=yes PCg=yes Causal=yes PRAM=yes Slow=yes Local=yes Cache=yes

name: wb-chain
origin: classic (three-hop causal chain; PRAM admits, causal forbids)
p: w(x)1
q: r(x)1 w(y)1
r: r(y)1 w(z)1
s: r(z)1 r(x)0
expect: SC=no Causal=no PRAM=yes Slow=yes Local=yes

name: wo-vs-rcsc
origin: separates weak ordering from release consistency (an ordinary write AFTER a release is fenced under WO but free under RC)
p: w*(f)1 w(d)1
q: r(d)1 r*(f)0
expect: SC=no WO=no HC=no RCsc=yes RCpc=yes

name: wrc-rel-acq-stale
origin: RC non-cumulativity: a release chain does not publish transitively under RC_pc (labeled PC lacks the rwb edge across processors), but does under RC_sc / WO / HC
p: w(d)1 w*(f)1
q: r*(f)1 w*(g)1
r: r*(g)1 r(d)0
expect: SC=no WO=no HC=no RCsc=no RCpc=yes RCg=yes

name: wrc-rel-acq-fresh
origin: the transitive-publication success case (companion to wrc-rel-acq-stale)
p: w(d)1 w*(f)1
q: r*(f)1 w*(g)1
r: r*(g)1 r(d)1
expect: SC=yes WO=yes HC=yes RCsc=yes RCpc=yes RCg=yes

name: iriw-labeled
origin: IRIW on sync variables: SC labeled ops forbid it, PC labeled ops admit it
p: w*(x)1
q: w*(y)1
r: r*(x)1 r*(y)0
s: r*(y)1 r*(x)0
expect: SC=no WO=no HC=no RCsc=no RCpc=yes RCg=yes

name: sb-rmw-fence
origin: read-modify-write as a fence: the rmw joins every view and restores ordering across the store-buffer gap for every pipelined model (but NOT for slow memory, whose pipelines are per-location)
p: w(x)1 rmw(s)0:1 r(y)0
q: w(y)1 rmw(s)1:2 r(x)0
expect: SC=no TSO=no TSOfwd=no PC=no PCg=no Causal=no PRAM=no Slow=yes Cache=yes Local=yes

name: corw1-impossible
origin: a read observing its own processor's LATER write; forbidden by every model (legality vs program order)
p: r(x)1 w(x)1
expect: SC=no TSO=no TSOfwd=no PC=no PCg=no WO=no HC=no RCsc=no RCpc=no RCg=no CausalCoh=no Causal=no Cache=no PRAM=no Slow=no Local=no

name: coww-ra
origin: classic (same-location write-write then read chain keeps order everywhere coherent)
p: w(x)1 w(x)2
q: r(x)1 r(x)2
expect: SC=yes TSO=yes PC=yes PCg=yes Causal=yes PRAM=yes Slow=yes Local=yes Cache=yes
)LITMUS";

}  // namespace

const std::vector<LitmusTest>& builtin_suite() {
  static const std::vector<LitmusTest> suite = parse_suite(kSuiteText);
  return suite;
}

const LitmusTest& find_test(std::string_view name) {
  for (const auto& t : builtin_suite()) {
    if (t.name == name) return t;
  }
  throw InvalidInput("unknown litmus test: '" + std::string(name) + "'");
}

}  // namespace ssm::litmus
