// Operation: one read or write in a system execution history.
//
// Paper §2: "Processors execute read and write operations.  Each such
// operation acts on a named location and has an associated value."
// An operation here additionally carries:
//   * its processor and its index within that processor's sequence (so that
//     program order is recoverable), and
//   * a dense global index (OpIndex) assigned by SystemHistory, used to
//     address relation bitsets.
#pragma once

#include <string>

#include "common/types.hpp"

namespace ssm::history {

struct Operation {
  OpKind kind = OpKind::Read;
  OpLabel label = OpLabel::Ordinary;
  ProcId proc = 0;
  /// Position in the issuing processor's execution history H_p (0-based).
  std::uint32_t seq = 0;
  LocId loc = 0;
  /// For a write: the value stored.  For a read: the value reported.
  /// For a read-modify-write: the value stored (`rmw_read` holds the value
  /// observed by its read part).
  Value value = 0;
  /// Value observed by the read part of a ReadModifyWrite; unused otherwise.
  Value rmw_read = 0;
  /// Dense index within the owning SystemHistory.
  OpIndex index = kNoOp;

  [[nodiscard]] bool is_read() const noexcept { return is_read_like(kind); }
  [[nodiscard]] bool is_write() const noexcept { return is_write_like(kind); }
  [[nodiscard]] bool is_labeled() const noexcept {
    return label == OpLabel::Labeled;
  }
  /// Acquire = labeled read; release = labeled write (paper §3.4).
  [[nodiscard]] bool is_acquire() const noexcept {
    return is_labeled() && kind == OpKind::Read;
  }
  [[nodiscard]] bool is_release() const noexcept {
    return is_labeled() && is_write();
  }

  /// The value this operation's read part observes (read: `value`,
  /// rmw: `rmw_read`).  Precondition: is_read().
  [[nodiscard]] Value read_value() const noexcept {
    return kind == OpKind::ReadModifyWrite ? rmw_read : value;
  }

  friend bool operator==(const Operation& a, const Operation& b) noexcept {
    return a.kind == b.kind && a.label == b.label && a.proc == b.proc &&
           a.seq == b.seq && a.loc == b.loc && a.value == b.value &&
           a.rmw_read == b.rmw_read;
  }
};

/// Compact notation mirroring the paper: `w_p(x)v` / `r_p(x)v`, with a `*`
/// suffix for labeled operations.  Location rendered by id ("x0") unless a
/// name is supplied by the caller (see print.hpp for named rendering).
[[nodiscard]] std::string to_string(const Operation& op);

}  // namespace ssm::history
