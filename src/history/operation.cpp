#include "history/operation.hpp"

namespace ssm::history {

std::string to_string(const Operation& op) {
  std::string out;
  switch (op.kind) {
    case OpKind::Read:
      out += 'r';
      break;
    case OpKind::Write:
      out += 'w';
      break;
    case OpKind::ReadModifyWrite:
      out += "rmw";
      break;
  }
  out += '_';
  out += std::to_string(op.proc);
  out += "(x";
  out += std::to_string(op.loc);
  out += ')';
  out += std::to_string(op.value);
  if (op.kind == OpKind::ReadModifyWrite) {
    out += "<-";
    out += std::to_string(op.rmw_read);
  }
  if (op.is_labeled()) out += '*';
  return out;
}

}  // namespace ssm::history
