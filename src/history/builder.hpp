// Fluent construction of SystemHistory instances for tests, examples, and
// the lattice enumerator.
//
//   auto h = HistoryBuilder(2, 2)                // 2 procs, 2 locs
//                .w("p", "x", 1).r("p", "y", 0)
//                .w("q", "y", 1).r("q", "x", 0)
//                .build();                       // paper Figure 1
#pragma once

#include <string_view>

#include "history/system_history.hpp"

namespace ssm::history {

class HistoryBuilder {
 public:
  /// Starts with the canonical symbol table (procs p,q,r,...; locs x,y,z,...).
  HistoryBuilder(std::size_t procs, std::size_t locs)
      : history_(SymbolTable::canonical(procs, locs)) {}

  HistoryBuilder& w(std::string_view proc, std::string_view loc, Value v,
                    OpLabel label = OpLabel::Ordinary);
  HistoryBuilder& r(std::string_view proc, std::string_view loc, Value v,
                    OpLabel label = OpLabel::Ordinary);
  /// Labeled (synchronization) variants, per paper §3.4.
  HistoryBuilder& wl(std::string_view proc, std::string_view loc, Value v) {
    return w(proc, loc, v, OpLabel::Labeled);
  }
  HistoryBuilder& rl(std::string_view proc, std::string_view loc, Value v) {
    return r(proc, loc, v, OpLabel::Labeled);
  }
  HistoryBuilder& rmw(std::string_view proc, std::string_view loc,
                      Value observed, Value stored,
                      OpLabel label = OpLabel::Ordinary);

  /// Validates and returns the history; throws InvalidInput on a malformed
  /// history (see SystemHistory::validate).  The builder is left empty.
  [[nodiscard]] SystemHistory build();

  /// Returns without validation (for deliberately malformed test inputs).
  /// The builder is left empty.
  [[nodiscard]] SystemHistory build_unchecked() {
    return std::move(history_);
  }

 private:
  SystemHistory history_;
};

}  // namespace ssm::history
