#include "history/dot.hpp"

#include "history/print.hpp"

namespace ssm::history {
namespace {

/// Is edge a->b implied by a path a -> x -> b within `r`?
bool transitively_implied(const rel::Relation& r, std::size_t a,
                          std::size_t b) {
  bool implied = false;
  r.successors(a).for_each([&](std::size_t x) {
    if (x != b && r.test(x, b)) implied = true;
  });
  return implied;
}

}  // namespace

std::string to_dot(const SystemHistory& h,
                   const std::vector<DotLayer>& layers,
                   std::string_view title) {
  std::string out = "digraph \"" + std::string(title) + "\" {\n";
  out += "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    out += "  subgraph cluster_" + std::to_string(p) + " {\n";
    out += "    label=\"" + h.symbols().processor_name(p) + "\";\n";
    const auto ops = h.processor_ops(p);
    for (OpIndex i : ops) {
      out += "    n" + std::to_string(i) + " [label=\"" + format_op(h, i) +
             "\"];\n";
    }
    // Invisible chain keeps program order vertical inside the cluster.
    for (std::size_t k = 0; k + 1 < ops.size(); ++k) {
      out += "    n" + std::to_string(ops[k]) + " -> n" +
             std::to_string(ops[k + 1]) + " [style=invis];\n";
    }
    out += "  }\n";
  }
  for (const auto& layer : layers) {
    if (layer.rel == nullptr) continue;
    for (std::size_t a = 0; a < layer.rel->size(); ++a) {
      layer.rel->successors(a).for_each([&](std::size_t b) {
        if (layer.transitive_reduce &&
            transitively_implied(*layer.rel, a, b)) {
          return;
        }
        out += "  n" + std::to_string(a) + " -> n" + std::to_string(b) +
               " [color=" + layer.color + ", label=\"" + layer.name +
               "\", fontcolor=" + layer.color + "];\n";
      });
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ssm::history
