// Extraction of a subhistory: the operations in a mask, re-indexed densely,
// with program order per processor preserved.  Used by RC_pc, which must
// evaluate processor consistency *of the labeled subhistory* (paper §3.4:
// "the sequences S_p|ℓ meet the requirements of ..."), where ppo and the
// remote orders are computed within the labeled world.
#pragma once

#include <vector>

#include "history/system_history.hpp"
#include "relation/bitset.hpp"

namespace ssm::history {

struct SubHistory {
  SystemHistory sub;
  /// to_parent[i] = index in the parent history of sub operation i.
  std::vector<OpIndex> to_parent;
  /// from_parent[j] = index in `sub` of parent operation j, or kNoOp.
  std::vector<OpIndex> from_parent;
};

[[nodiscard]] SubHistory extract(const SystemHistory& h,
                                 const rel::DynBitset& mask);

}  // namespace ssm::history
