#include "history/symbol_table.hpp"

namespace ssm::history {

LocId SymbolTable::intern_location(std::string_view name) {
  auto it = location_ids_.find(std::string(name));
  if (it != location_ids_.end()) return it->second;
  const auto id = static_cast<LocId>(location_names_.size());
  location_names_.emplace_back(name);
  location_ids_.emplace(std::string(name), id);
  return id;
}

ProcId SymbolTable::intern_processor(std::string_view name) {
  auto it = processor_ids_.find(std::string(name));
  if (it != processor_ids_.end()) return it->second;
  const auto id = static_cast<ProcId>(processor_names_.size());
  processor_names_.emplace_back(name);
  processor_ids_.emplace(std::string(name), id);
  return id;
}

LocId SymbolTable::location(std::string_view name) const {
  auto it = location_ids_.find(std::string(name));
  if (it == location_ids_.end()) {
    throw InvalidInput("unknown location: '" + std::string(name) + "'");
  }
  return it->second;
}

ProcId SymbolTable::processor(std::string_view name) const {
  auto it = processor_ids_.find(std::string(name));
  if (it == processor_ids_.end()) {
    throw InvalidInput("unknown processor: '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& SymbolTable::location_name(LocId id) const {
  if (id >= location_names_.size()) {
    throw InvalidInput("location id out of range");
  }
  return location_names_[id];
}

const std::string& SymbolTable::processor_name(ProcId id) const {
  if (id >= processor_names_.size()) {
    throw InvalidInput("processor id out of range");
  }
  return processor_names_[id];
}

SymbolTable SymbolTable::canonical(std::size_t procs, std::size_t locs) {
  SymbolTable table;
  static constexpr const char* kProcNames[] = {"p", "q", "r", "s", "t", "u"};
  static constexpr const char* kLocNames[] = {"x", "y", "z", "a", "b", "c"};
  for (std::size_t i = 0; i < procs; ++i) {
    if (i < std::size(kProcNames)) {
      table.intern_processor(kProcNames[i]);
    } else {
      table.intern_processor("p" + std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < locs; ++i) {
    if (i < std::size(kLocNames)) {
      table.intern_location(kLocNames[i]);
    } else {
      table.intern_location("x" + std::to_string(i));
    }
  }
  return table;
}

}  // namespace ssm::history
