// SystemHistory: the paper's H = {H_p | p ∈ P}.
//
// Stores all operations in one dense vector (indexed by OpIndex) plus the
// per-processor sequences.  Every relation in src/relation is a bitset over
// these dense indices, so SystemHistory is the single source of truth for
// operation identity.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "history/operation.hpp"
#include "history/symbol_table.hpp"

namespace ssm::history {

class SystemHistory {
 public:
  SystemHistory() = default;
  explicit SystemHistory(SymbolTable symbols) : symbols_(std::move(symbols)) {}

  /// Appends `op` to processor `op.proc`'s history.  `op.seq` and `op.index`
  /// are assigned by this call; the caller fills kind/label/proc/loc/value.
  /// Returns the dense index of the appended operation.
  OpIndex append(Operation op);

  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  [[nodiscard]] const Operation& op(OpIndex i) const { return ops_.at(i); }
  [[nodiscard]] std::span<const Operation> operations() const noexcept {
    return ops_;
  }

  [[nodiscard]] std::size_t num_processors() const noexcept {
    return per_proc_.size();
  }
  [[nodiscard]] std::size_t num_locations() const noexcept {
    return num_locations_;
  }

  /// Indices of processor p's operations, in program order.
  [[nodiscard]] std::span<const OpIndex> processor_ops(ProcId p) const;

  /// All write-like operations to location `loc`, in dense-index order.
  [[nodiscard]] std::vector<OpIndex> writes_to(LocId loc) const;

  /// All write-like operations, in dense-index order.
  [[nodiscard]] std::vector<OpIndex> all_writes() const;

  /// All read-like operations, in dense-index order.
  [[nodiscard]] std::vector<OpIndex> all_reads() const;

  /// For a read-like operation `r`, the unique write-like operation writing
  /// the value `r` observes to `r`'s location, or kNoOp when `r` observes
  /// the initial value.  Throws InvalidInput when the value is ambiguous
  /// (two writes of the same value to the same location) or unwritten.
  /// Most litmus histories use distinct values per (location, value) pair,
  /// which makes the writes-before order a function of the history; the
  /// checker requires that property and `validate()` enforces it.
  [[nodiscard]] OpIndex writer_of(OpIndex r) const;

  /// Checks well-formedness:
  ///  * every read-like value is either 0 (initial) or written by exactly
  ///    one write-like op to the same location;
  ///  * a read observing 0 is unambiguous (no write-like op writes 0).
  /// Returns an explanatory message on failure, std::nullopt on success.
  [[nodiscard]] std::optional<std::string> validate() const;

  [[nodiscard]] const SymbolTable& symbols() const noexcept {
    return symbols_;
  }
  [[nodiscard]] SymbolTable& symbols() noexcept { return symbols_; }

 private:
  SymbolTable symbols_;
  std::vector<Operation> ops_;
  std::vector<std::vector<OpIndex>> per_proc_;
  std::size_t num_locations_ = 0;
};

}  // namespace ssm::history
