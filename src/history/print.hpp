// Human-readable rendering of histories and views, using the symbol table
// names so output matches the paper's notation, e.g.
//
//   p: w(x)1 r(y)0
//   q: w(y)1 r(x)0
#pragma once

#include <string>
#include <vector>

#include "history/system_history.hpp"

namespace ssm::history {

/// Renders one operation with names from `h.symbols()`: `w_p(x)1`,
/// labeled ops get a `*` suffix.
[[nodiscard]] std::string format_op(const SystemHistory& h, OpIndex i);

/// Renders the whole history, one processor per line (paper figure style).
[[nodiscard]] std::string format_history(const SystemHistory& h);

/// Renders a sequence of operations (a view) on one line.
[[nodiscard]] std::string format_sequence(const SystemHistory& h,
                                          const std::vector<OpIndex>& seq);

/// A copy of `h` with the canonical symbol table (processors p,q,r,…;
/// locations x,y,z,…).  Operation order, kinds, labels and values are
/// preserved; only names change.  Used to compare histories from
/// different sources (e.g. simulator traces vs litmus files) by their
/// rendered form.
[[nodiscard]] SystemHistory canonicalized(const SystemHistory& h);

}  // namespace ssm::history
