// Bidirectional mapping between external names and dense ids for locations
// and processors.  The model only needs dense ids; names exist so litmus
// tests and printed witnesses stay readable.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace ssm::history {

class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  LocId intern_location(std::string_view name);
  ProcId intern_processor(std::string_view name);

  /// Lookup without interning; throws InvalidInput if absent.
  [[nodiscard]] LocId location(std::string_view name) const;
  [[nodiscard]] ProcId processor(std::string_view name) const;

  [[nodiscard]] const std::string& location_name(LocId id) const;
  [[nodiscard]] const std::string& processor_name(ProcId id) const;

  [[nodiscard]] std::size_t num_locations() const noexcept {
    return location_names_.size();
  }
  [[nodiscard]] std::size_t num_processors() const noexcept {
    return processor_names_.size();
  }

  /// A table with locations "x","y","z",... and processors "p","q","r",...
  /// pre-interned; convenient for programmatic history construction.
  static SymbolTable canonical(std::size_t procs, std::size_t locs);

 private:
  std::unordered_map<std::string, LocId> location_ids_;
  std::vector<std::string> location_names_;
  std::unordered_map<std::string, ProcId> processor_ids_;
  std::vector<std::string> processor_names_;
};

}  // namespace ssm::history
