#include "history/builder.hpp"

namespace ssm::history {

HistoryBuilder& HistoryBuilder::w(std::string_view proc, std::string_view loc,
                                  Value v, OpLabel label) {
  Operation op;
  op.kind = OpKind::Write;
  op.label = label;
  op.proc = history_.symbols().intern_processor(proc);
  op.loc = history_.symbols().intern_location(loc);
  op.value = v;
  history_.append(op);
  return *this;
}

HistoryBuilder& HistoryBuilder::r(std::string_view proc, std::string_view loc,
                                  Value v, OpLabel label) {
  Operation op;
  op.kind = OpKind::Read;
  op.label = label;
  op.proc = history_.symbols().intern_processor(proc);
  op.loc = history_.symbols().intern_location(loc);
  op.value = v;
  history_.append(op);
  return *this;
}

HistoryBuilder& HistoryBuilder::rmw(std::string_view proc,
                                    std::string_view loc, Value observed,
                                    Value stored, OpLabel label) {
  Operation op;
  op.kind = OpKind::ReadModifyWrite;
  op.label = label;
  op.proc = history_.symbols().intern_processor(proc);
  op.loc = history_.symbols().intern_location(loc);
  op.value = stored;
  op.rmw_read = observed;
  history_.append(op);
  return *this;
}

SystemHistory HistoryBuilder::build() {
  if (auto err = history_.validate()) {
    throw InvalidInput("malformed history: " + *err);
  }
  return std::move(history_);
}

}  // namespace ssm::history
