// Graphviz (DOT) rendering of a history with any set of relation layers —
// the visual companion to the paper's order definitions (po/wb/co/sem
// arrows over the operations of a figure).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::history {

struct DotLayer {
  std::string name;         // edge label, e.g. "po"
  std::string color;        // graphviz color, e.g. "gray40"
  const rel::Relation* rel;  // non-owning
  /// Skip edges implied by transitivity within this layer (reduces
  /// clutter: draw the Hasse diagram instead of the closure).
  bool transitive_reduce = true;
};

/// One DOT digraph: operations as nodes (clustered per processor, in
/// program order), one edge style per layer.
[[nodiscard]] std::string to_dot(const SystemHistory& h,
                                 const std::vector<DotLayer>& layers,
                                 std::string_view title = "history");

}  // namespace ssm::history
