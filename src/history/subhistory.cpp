#include "history/subhistory.hpp"

namespace ssm::history {

SubHistory extract(const SystemHistory& h, const rel::DynBitset& mask) {
  SubHistory out;
  out.sub = SystemHistory(h.symbols());
  out.from_parent.assign(h.size(), kNoOp);
  // Append in per-processor program order so seq numbers stay consistent;
  // dense-index order already interleaves processors, so walk per proc.
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    for (OpIndex i : h.processor_ops(p)) {
      if (!mask.test(i)) continue;
      Operation op = h.op(i);
      const OpIndex sub_index = out.sub.append(op);
      out.to_parent.push_back(i);
      out.from_parent[i] = sub_index;
      (void)sub_index;
    }
  }
  return out;
}

}  // namespace ssm::history
