#include "history/system_history.hpp"

#include <algorithm>

namespace ssm::history {

OpIndex SystemHistory::append(Operation op) {
  if (op.proc >= per_proc_.size()) {
    per_proc_.resize(op.proc + 1);
  }
  op.seq = static_cast<std::uint32_t>(per_proc_[op.proc].size());
  op.index = static_cast<OpIndex>(ops_.size());
  num_locations_ = std::max<std::size_t>(num_locations_, op.loc + 1U);
  per_proc_[op.proc].push_back(op.index);
  ops_.push_back(op);
  return op.index;
}

std::span<const OpIndex> SystemHistory::processor_ops(ProcId p) const {
  if (p >= per_proc_.size()) return {};
  return per_proc_[p];
}

std::vector<OpIndex> SystemHistory::writes_to(LocId loc) const {
  std::vector<OpIndex> out;
  for (const auto& o : ops_) {
    if (o.is_write() && o.loc == loc) out.push_back(o.index);
  }
  return out;
}

std::vector<OpIndex> SystemHistory::all_writes() const {
  std::vector<OpIndex> out;
  for (const auto& o : ops_) {
    if (o.is_write()) out.push_back(o.index);
  }
  return out;
}

std::vector<OpIndex> SystemHistory::all_reads() const {
  std::vector<OpIndex> out;
  for (const auto& o : ops_) {
    if (o.is_read()) out.push_back(o.index);
  }
  return out;
}

OpIndex SystemHistory::writer_of(OpIndex r) const {
  const Operation& read = op(r);
  if (!read.is_read()) {
    throw InvalidInput("writer_of called on a non-read operation");
  }
  const Value v = read.read_value();
  OpIndex found = kNoOp;
  for (const auto& o : ops_) {
    if (o.is_write() && o.loc == read.loc && o.value == v) {
      if (found != kNoOp) {
        throw InvalidInput("ambiguous writes-before: two writes of value " +
                           std::to_string(v) + " to the same location");
      }
      found = o.index;
    }
  }
  if (found == kNoOp && v != kInitialValue) {
    throw InvalidInput("read observes value " + std::to_string(v) +
                       " never written to its location");
  }
  return found;
}

std::optional<std::string> SystemHistory::validate() const {
  // Check distinct-write-values per location (required so that wb is a
  // function of the history, as in every example in the paper).
  for (LocId loc = 0; loc < num_locations_; ++loc) {
    std::vector<Value> written;
    for (const auto& o : ops_) {
      if (o.is_write() && o.loc == loc) written.push_back(o.value);
    }
    std::sort(written.begin(), written.end());
    if (std::adjacent_find(written.begin(), written.end()) != written.end()) {
      return "location x" + std::to_string(loc) +
             " is written the same value twice; writes-before would be "
             "ambiguous";
    }
    if (std::binary_search(written.begin(), written.end(), kInitialValue)) {
      return "location x" + std::to_string(loc) +
             " is written the initial value 0; a read of 0 would be "
             "ambiguous";
    }
  }
  for (const auto& o : ops_) {
    if (!o.is_read()) continue;
    const Value v = o.read_value();
    if (v == kInitialValue) continue;
    bool found = false;
    for (const auto& w : ops_) {
      if (w.is_write() && w.loc == o.loc && w.value == v) {
        found = true;
        break;
      }
    }
    if (!found) {
      return "operation " + to_string(o) + " reads a value never written";
    }
  }
  return std::nullopt;
}

}  // namespace ssm::history
