#include "history/print.hpp"

namespace ssm::history {

std::string format_op(const SystemHistory& h, OpIndex i) {
  const Operation& op = h.op(i);
  std::string out;
  switch (op.kind) {
    case OpKind::Read:
      out += 'r';
      break;
    case OpKind::Write:
      out += 'w';
      break;
    case OpKind::ReadModifyWrite:
      out += "rmw";
      break;
  }
  out += '_';
  out += h.symbols().processor_name(op.proc);
  out += '(';
  out += h.symbols().location_name(op.loc);
  out += ')';
  out += std::to_string(op.value);
  if (op.kind == OpKind::ReadModifyWrite) {
    out += "<-";
    out += std::to_string(op.rmw_read);
  }
  if (op.is_labeled()) out += '*';
  return out;
}

std::string format_history(const SystemHistory& h) {
  std::string out;
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    out += h.symbols().processor_name(p);
    out += ':';
    for (OpIndex i : h.processor_ops(p)) {
      out += ' ';
      // Within a processor line the subscript is redundant; match the
      // paper's figures which drop it.
      const Operation& op = h.op(i);
      std::string token;
      switch (op.kind) {
        case OpKind::Read:
          token += 'r';
          break;
        case OpKind::Write:
          token += 'w';
          break;
        case OpKind::ReadModifyWrite:
          token += "rmw";
          break;
      }
      token += '(';
      token += h.symbols().location_name(op.loc);
      token += ')';
      token += std::to_string(op.value);
      if (op.kind == OpKind::ReadModifyWrite) {
        token += "<-";
        token += std::to_string(op.rmw_read);
      }
      if (op.is_labeled()) token += '*';
      out += token;
    }
    out += '\n';
  }
  return out;
}

SystemHistory canonicalized(const SystemHistory& h) {
  SystemHistory out(
      SymbolTable::canonical(h.num_processors(), h.num_locations()));
  for (const auto& op : h.operations()) out.append(op);
  return out;
}

std::string format_sequence(const SystemHistory& h,
                            const std::vector<OpIndex>& seq) {
  std::string out;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) out += ' ';
    out += format_op(h, seq[i]);
  }
  return out;
}

}  // namespace ssm::history
