// The orders of paper §2, parameter (3): program order, partial program
// order, writes-before, and causal order.  All are returned as Relations
// over the history's dense OpIndex space.
#pragma once

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::order {

using history::SystemHistory;
using rel::Relation;

/// Program order →po: total per processor; o_{p,i} →po o_{p,j} iff i < j.
[[nodiscard]] Relation program_order(const SystemHistory& h);

/// Partial program order →ppo (paper §2): o1 →ppo o2 iff o1 →po o2 and
///  * same location, or
///  * both reads or both writes, or
///  * o1 is a read and o2 is a write, or
///  * transitively via another operation of the same processor.
/// The only po pair NOT in ppo is write-then-later-read-of-a-different
/// location (the reorder TSO/PC store buffers allow), and pairs that are
/// only reachable through such a pair.
/// ReadModifyWrite operations count as both read and write, so they order
/// against everything (an rmw never bypasses and is never bypassed).
[[nodiscard]] Relation partial_program_order(const SystemHistory& h);

/// Writes-before →wb: w →wb r iff r reads the value written by w.  Reads of
/// the initial value have no wb predecessor.
[[nodiscard]] Relation writes_before(const SystemHistory& h);

/// Causal order →co = (→po ∪ →wb)+ (paper adapts Lamport happens-before).
[[nodiscard]] Relation causal_order(const SystemHistory& h);

}  // namespace ssm::order
