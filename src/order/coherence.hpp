// Coherence orders: per-location total orders of the writes.
//
// Paper §2 parameter (2): "a memory model may require that all writes to a
// given location appear in the same order in the sequential histories for
// all processors ... this particular form of consistency is equivalent to
// coherence".  PC, RC_sc and RC_pc all require it; the checker enumerates
// candidate coherence orders and tests each.
#pragma once

#include <functional>
#include <vector>

#include "history/system_history.hpp"
#include "relation/relation.hpp"

namespace ssm::order {

using history::SystemHistory;
using rel::Relation;

/// One choice of per-location write order.
class CoherenceOrder {
 public:
  CoherenceOrder() = default;
  CoherenceOrder(std::size_t num_ops,
                 std::vector<std::vector<OpIndex>> per_loc);

  /// The chosen sequence of writes to `loc` (empty if none).
  [[nodiscard]] const std::vector<OpIndex>& writes(LocId loc) const;

  /// True iff write w1 precedes write w2 in their (common) location's order.
  [[nodiscard]] bool precedes(OpIndex w1, OpIndex w2) const;

  /// Position of write `w` within its location's sequence.
  [[nodiscard]] std::size_t position(OpIndex w) const;

  /// The chain edges (w_i -> w_{i+1} transitively w_i -> w_j, i<j) as a
  /// relation over the full op space, usable as view constraints.
  [[nodiscard]] Relation as_relation() const;

  [[nodiscard]] std::size_t num_ops() const noexcept { return num_ops_; }

 private:
  std::size_t num_ops_ = 0;
  std::vector<std::vector<OpIndex>> per_loc_;
  /// position_[op] = index within its location sequence (or npos).
  std::vector<std::size_t> position_;
};

/// Enumerates every coherence order whose per-location sequences are linear
/// extensions of `base` restricted to that location's writes.  `base` is
/// typically ppo (same-processor same-location writes keep program order)
/// possibly augmented by model-specific constraints.  Calls `visit` for each
/// candidate; enumeration stops early when `visit` returns false.  Returns
/// true iff stopped early.
bool for_each_coherence_order(
    const SystemHistory& h, const Relation& base,
    const std::function<bool(const CoherenceOrder&)>& visit);

}  // namespace ssm::order
