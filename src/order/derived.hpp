// DerivedOrders: the derived orders of one history (po, ppo, wb, co, and
// the coherence-independent rwb component of sem) computed once and shared
// by every model cell checking that history.
//
// The paper derives every model's legality constraints from the same small
// family of orders over H; before this layer each of the 18 model cells
// re-derived them from scratch.  A DerivedOrders is a lazy, thread-safe
// per-history cache: each order materializes on first request (std::call_once)
// and is then served by reference to all callers — including litmus
// run_suite's thread-pool workers, which check different models of one test
// concurrently.
//
// Plumbing mirrors the ambient-budget pattern (checker/budget.hpp): a
// driver that will check one history against many models builds one
// DerivedOrders and installs it for the current thread with an OrdersScope;
// model code constructs a stack `Orders` handle from the history it was
// handed, which binds the ambient cache when it describes the same history
// and otherwise falls back to a private one.  Model code is therefore
// correct with or without a scope installed.
//
// Metrics: `checker.order_derive_reuse` counts requests served from an
// already-materialized order of a *shared* (scope-installed) cache — the
// work the layer avoids (docs/OBSERVABILITY.md, docs/PERFORMANCE.md).
#pragma once

#include <atomic>
#include <mutex>
#include <optional>

#include "order/orders.hpp"
#include "order/semi_causal.hpp"

namespace ssm::order {

class DerivedOrders {
 public:
  explicit DerivedOrders(const SystemHistory& h) : h_(&h) {}
  DerivedOrders(const DerivedOrders&) = delete;
  DerivedOrders& operator=(const DerivedOrders&) = delete;

  [[nodiscard]] const SystemHistory& history() const noexcept { return *h_; }

  [[nodiscard]] const Relation& po() const;
  [[nodiscard]] const Relation& ppo() const;
  [[nodiscard]] const Relation& wb() const;
  [[nodiscard]] const Relation& co() const;
  /// remote_writes_before(h, ppo()) — the coherence-independent part of
  /// sem; PC-family models combine it with per-coherence rrb via the
  /// semi_causal(h, ppo, rwb, coh) overload.
  [[nodiscard]] const Relation& rwb() const;

 private:
  friend class OrdersScope;

  struct Slot {
    std::once_flag once;
    Relation rel;
    std::atomic<bool> ready{false};
  };

  template <typename Build>
  const Relation& materialize(Slot& slot, Build&& build) const;

  const SystemHistory* h_;
  /// Set by OrdersScope: reuse of a shared cache is the metric-worthy event.
  mutable std::atomic<bool> shared_{false};
  mutable Slot po_, ppo_, wb_, co_, rwb_;
};

/// RAII installation of the calling thread's ambient DerivedOrders
/// (nestable; restores the previous one on destruction).
class OrdersScope {
 public:
  explicit OrdersScope(const DerivedOrders& d) noexcept;
  ~OrdersScope();
  OrdersScope(const OrdersScope&) = delete;
  OrdersScope& operator=(const OrdersScope&) = delete;

  /// The ambient cache iff it describes `h` (same object), else nullptr.
  [[nodiscard]] static const DerivedOrders* current(
      const SystemHistory& h) noexcept;

 private:
  const DerivedOrders* prev_;
};

/// Stack handle model code uses in place of direct order:: calls:
///
///   order::Orders ord(h);
///   const Relation& po = ord.po();
///
/// Binds the ambient shared cache when one is installed for `h`, otherwise
/// owns a private lazy cache (same results, no sharing).
class Orders {
 public:
  explicit Orders(const SystemHistory& h) : shared_(OrdersScope::current(h)) {
    if (shared_ == nullptr) owned_.emplace(h);
  }

  [[nodiscard]] const Relation& po() const { return src().po(); }
  [[nodiscard]] const Relation& ppo() const { return src().ppo(); }
  [[nodiscard]] const Relation& wb() const { return src().wb(); }
  [[nodiscard]] const Relation& co() const { return src().co(); }
  [[nodiscard]] const Relation& rwb() const { return src().rwb(); }

 private:
  [[nodiscard]] const DerivedOrders& src() const {
    return shared_ != nullptr ? *shared_ : *owned_;
  }

  const DerivedOrders* shared_;
  std::optional<DerivedOrders> owned_;
};

}  // namespace ssm::order
