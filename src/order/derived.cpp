#include "order/derived.hpp"

#include "common/metrics.hpp"

namespace ssm::order {
namespace {

thread_local const DerivedOrders* g_current_orders = nullptr;

common::metrics::Counter& reuse_counter() {
  static auto& c =
      common::metrics::Registry::global().counter("checker.order_derive_reuse");
  return c;
}

}  // namespace

template <typename Build>
const Relation& DerivedOrders::materialize(Slot& slot, Build&& build) const {
  if (slot.ready.load(std::memory_order_acquire)) {
    if (shared_.load(std::memory_order_relaxed)) reuse_counter().add();
    return slot.rel;
  }
  std::call_once(slot.once, [&] {
    slot.rel = build();
    slot.ready.store(true, std::memory_order_release);
  });
  return slot.rel;
}

const Relation& DerivedOrders::po() const {
  return materialize(po_, [&] { return program_order(*h_); });
}

const Relation& DerivedOrders::ppo() const {
  return materialize(ppo_, [&] { return partial_program_order(*h_); });
}

const Relation& DerivedOrders::wb() const {
  return materialize(wb_, [&] { return writes_before(*h_); });
}

const Relation& DerivedOrders::co() const {
  return materialize(co_, [&] { return causal_order(*h_); });
}

const Relation& DerivedOrders::rwb() const {
  return materialize(rwb_, [&] { return remote_writes_before(*h_, ppo()); });
}

OrdersScope::OrdersScope(const DerivedOrders& d) noexcept
    : prev_(g_current_orders) {
  d.shared_.store(true, std::memory_order_relaxed);
  g_current_orders = &d;
}

OrdersScope::~OrdersScope() { g_current_orders = prev_; }

const DerivedOrders* OrdersScope::current(const SystemHistory& h) noexcept {
  const DerivedOrders* d = g_current_orders;
  if (d != nullptr && &d->history() == &h) return d;
  return nullptr;
}

}  // namespace ssm::order
