// The semi-causality relation of processor consistency (paper §3.3).
//
//   rwb (remote writes-before):  o1 →rwb o2  iff  o1 = w(x)v, o2 = r(y)u,
//       and there is o' = w(y)u with o1 →ppo o' and o2 reads from o'.
//   rrb (remote reads-before):   o1 →rrb o2  iff  o1 = r(x)v, o2 = w(y)u,
//       and there is o' = w(x)v' such that the write o1 reads from precedes
//       o' in x's coherence order and o' →ppo o2.  (A read of the initial
//       value precedes every write to its location.)
//   sem = (ppo ∪ rwb ∪ rrb)+.
//
// rrb depends on a chosen coherence order, so sem is parameterized by one.
#pragma once

#include "order/coherence.hpp"
#include "order/orders.hpp"

namespace ssm::order {

[[nodiscard]] Relation remote_writes_before(const SystemHistory& h,
                                            const Relation& ppo);

[[nodiscard]] Relation remote_reads_before(const SystemHistory& h,
                                           const Relation& ppo,
                                           const CoherenceOrder& coh);

/// sem = (ppo ∪ rwb ∪ rrb)+ for the given coherence choice.
[[nodiscard]] Relation semi_causal(const SystemHistory& h,
                                   const Relation& ppo,
                                   const CoherenceOrder& coh);

/// As above with rwb precomputed — rwb depends only on ppo, so callers
/// enumerating coherence orders (PC family) hoist it out of the loop
/// (typically via order::DerivedOrders::rwb()).
[[nodiscard]] Relation semi_causal(const SystemHistory& h,
                                   const Relation& ppo, const Relation& rwb,
                                   const CoherenceOrder& coh);

}  // namespace ssm::order
