#include "order/coherence.hpp"

#include <limits>

#include "relation/topo.hpp"

namespace ssm::order {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}

CoherenceOrder::CoherenceOrder(std::size_t num_ops,
                               std::vector<std::vector<OpIndex>> per_loc)
    : num_ops_(num_ops),
      per_loc_(std::move(per_loc)),
      position_(num_ops, kNpos) {
  for (const auto& seq : per_loc_) {
    for (std::size_t i = 0; i < seq.size(); ++i) position_[seq[i]] = i;
  }
}

const std::vector<OpIndex>& CoherenceOrder::writes(LocId loc) const {
  static const std::vector<OpIndex> kEmpty;
  if (loc >= per_loc_.size()) return kEmpty;
  return per_loc_[loc];
}

bool CoherenceOrder::precedes(OpIndex w1, OpIndex w2) const {
  return position_[w1] < position_[w2];
}

std::size_t CoherenceOrder::position(OpIndex w) const { return position_[w]; }

Relation CoherenceOrder::as_relation() const {
  Relation r(num_ops_);
  for (const auto& seq : per_loc_) {
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        r.add(seq[i], seq[j]);
      }
    }
  }
  return r;
}

namespace {

/// Recursively pick a linear extension for each location's writes.
struct CoherenceEnum {
  const SystemHistory& h;
  const Relation& base;
  const std::function<bool(const CoherenceOrder&)>& visit;
  std::vector<std::vector<OpIndex>> chosen;
  bool stopped = false;

  bool recurse(LocId loc) {
    if (stopped) return true;
    if (loc >= h.num_locations()) {
      CoherenceOrder order(h.size(), chosen);
      if (!visit(order)) stopped = true;
      return stopped;
    }
    const auto writes = h.writes_to(loc);
    if (writes.empty()) {
      chosen[loc].clear();
      return recurse(static_cast<LocId>(loc + 1));
    }
    rel::DynBitset universe(h.size());
    for (OpIndex w : writes) universe.set(w);
    rel::for_each_linear_extension(
        base, universe, [&](const std::vector<std::size_t>& ext) {
          chosen[loc].assign(ext.begin(), ext.end());
          recurse(static_cast<LocId>(loc + 1));
          return !stopped;
        });
    return stopped;
  }
};

}  // namespace

bool for_each_coherence_order(
    const SystemHistory& h, const Relation& base,
    const std::function<bool(const CoherenceOrder&)>& visit) {
  CoherenceEnum e{h, base, visit,
                  std::vector<std::vector<OpIndex>>(h.num_locations()),
                  false};
  e.recurse(0);
  return e.stopped;
}

}  // namespace ssm::order
