#include "order/orders.hpp"

namespace ssm::order {

Relation program_order(const SystemHistory& h) {
  Relation r(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        r.add(ops[i], ops[j]);
      }
    }
  }
  return r;
}

Relation partial_program_order(const SystemHistory& h) {
  Relation base(h.size());
  for (ProcId p = 0; p < h.num_processors(); ++p) {
    const auto ops = h.processor_ops(p);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& o1 = h.op(ops[i]);
      for (std::size_t j = i + 1; j < ops.size(); ++j) {
        const auto& o2 = h.op(ops[j]);
        const bool same_loc = o1.loc == o2.loc;
        const bool both_reads = o1.is_read() && o2.is_read();
        const bool both_writes = o1.is_write() && o2.is_write();
        const bool read_then_write = o1.is_read() && o2.is_write();
        if (same_loc || both_reads || both_writes || read_then_write) {
          base.add(ops[i], ops[j]);
        }
      }
    }
  }
  // The paper's fourth clause closes ppo transitively through intermediate
  // operations of the same processor; since all base edges are
  // intra-processor, a plain transitive closure realizes it exactly.
  return base.transitive_closure();
}

Relation writes_before(const SystemHistory& h) {
  Relation r(h.size());
  for (const auto& op : h.operations()) {
    if (!op.is_read()) continue;
    const OpIndex w = h.writer_of(op.index);
    if (w != kNoOp) r.add(w, op.index);
  }
  return r;
}

Relation causal_order(const SystemHistory& h) {
  Relation r = program_order(h);
  r |= writes_before(h);
  return r.transitive_closure();
}

}  // namespace ssm::order
