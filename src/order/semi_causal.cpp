#include "order/semi_causal.hpp"

namespace ssm::order {

Relation remote_writes_before(const SystemHistory& h, const Relation& ppo) {
  Relation r(h.size());
  for (const auto& o2 : h.operations()) {
    if (!o2.is_read()) continue;
    const OpIndex oprime = h.writer_of(o2.index);
    if (oprime == kNoOp) continue;  // read of initial value: no source write
    // Every write o1 with o1 →ppo o' is remotely-before the read o2.
    for (const auto& o1 : h.operations()) {
      if (!o1.is_write()) continue;
      if (ppo.test(o1.index, oprime)) r.add(o1.index, o2.index);
    }
  }
  return r;
}

Relation remote_reads_before(const SystemHistory& h, const Relation& ppo,
                             const CoherenceOrder& coh) {
  Relation r(h.size());
  for (const auto& o1 : h.operations()) {
    if (!o1.is_read()) continue;
    const OpIndex from = h.writer_of(o1.index);
    for (const auto& oprime : h.operations()) {
      if (!oprime.is_write() || oprime.loc != o1.loc) continue;
      // o1's source must precede o' in coherence order; a read of the
      // initial value is superseded by every write to the location.
      const bool old_before_new =
          (from == kNoOp) ||
          (from != oprime.index && coh.precedes(from, oprime.index));
      if (!old_before_new) continue;
      for (const auto& o2 : h.operations()) {
        if (!o2.is_write()) continue;
        if (ppo.test(oprime.index, o2.index)) r.add(o1.index, o2.index);
      }
    }
  }
  return r;
}

Relation semi_causal(const SystemHistory& h, const Relation& ppo,
                     const CoherenceOrder& coh) {
  return semi_causal(h, ppo, remote_writes_before(h, ppo), coh);
}

Relation semi_causal(const SystemHistory& h, const Relation& ppo,
                     const Relation& rwb, const CoherenceOrder& coh) {
  Relation r = ppo;
  r |= rwb;
  r |= remote_reads_before(h, ppo, coh);
  return r.transitive_closure();
}

}  // namespace ssm::order
