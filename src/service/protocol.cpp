#include "service/protocol.hpp"

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "service/cache.hpp"

namespace ssm::service {

namespace json = common::json;

namespace {

/// Converts one already-parsed JSON object into a Request.  Throws
/// ProtocolError ("bad_request") with the element's id attached whenever
/// one was extractable — shared by the single-object and batch paths.
Request request_from_json(const json::Value& doc) {
  std::string frame_id;
  try {
    if (!doc.is_object()) {
      throw ProtocolError("bad_request", "request frame must be an object");
    }
    Request req;
    if (const json::Value* id = doc.find("id")) req.id = id->as_string();
    frame_id = req.id;
    const std::string& op = doc.at("op").as_string();
    if (op == "ping") {
      req.op = Request::Op::Ping;
    } else if (op == "stats") {
      req.op = Request::Op::Stats;
    } else if (op == "shutdown") {
      req.op = Request::Op::Shutdown;
    } else if (op == "check") {
      req.op = Request::Op::Check;
      req.check.program = doc.at("program").as_string();
      if (req.check.program.empty()) {
        throw ProtocolError("bad_request", "empty program");
      }
      if (const json::Value* models = doc.find("models")) {
        for (const json::Value& m : models->items()) {
          req.check.models.push_back(m.as_string());
        }
        if (req.check.models.empty()) {
          throw ProtocolError("bad_request",
                              "models, when present, must be non-empty");
        }
      }
      if (const json::Value* v = doc.find("max_nodes")) {
        req.check.budget.max_nodes = v->as_u64();
      }
      if (const json::Value* v = doc.find("timeout_ms")) {
        req.check.budget.timeout_ms = v->as_u64();
      }
      if (const json::Value* v = doc.find("no_cache")) {
        req.check.no_cache = v->as_bool();
      }
      if (const json::Value* v = doc.find("backend")) {
        const std::string& b = v->as_string();
        const auto parsed = checker::backend_from_string(b);
        if (!parsed) {
          throw ProtocolError(
              "bad_request", "unknown backend '" + b + "' (search|encode|race)");
        }
        req.check.backend = *parsed;
      }
    } else if (op == "trace") {
      req.op = Request::Op::Trace;
      const std::string& phase = doc.at("phase").as_string();
      if (phase == "begin") {
        req.trace.phase = TraceRequest::Phase::Begin;
        req.trace.header_line = doc.at("header").as_string();
        if (req.trace.header_line.empty()) {
          throw ProtocolError("bad_request", "empty trace header");
        }
        if (const json::Value* v = doc.find("model")) {
          req.trace.model = v->as_string();
        }
        if (const json::Value* v = doc.find("window")) {
          req.trace.window = v->as_u64();
        }
      } else if (phase == "ops") {
        req.trace.phase = TraceRequest::Phase::Ops;
        req.trace.lines = doc.at("lines").as_string();
        if (req.trace.lines.empty()) {
          throw ProtocolError("bad_request", "empty trace ops chunk");
        }
      } else if (phase == "end") {
        req.trace.phase = TraceRequest::Phase::End;
      } else {
        throw ProtocolError("bad_request", "unknown trace phase '" + phase +
                                               "' (begin|ops|end)");
      }
    } else {
      throw ProtocolError("bad_request", "unknown op '" + op + "'");
    }
    return req;
  } catch (ProtocolError& e) {
    e.set_id(frame_id);
    throw;
  } catch (const InvalidInput& e) {
    // Missing keys / kind mismatches from the JSON accessors.
    ProtocolError err("bad_request", e.what());
    err.set_id(frame_id);
    throw err;
  }
}

}  // namespace

Request parse_request(std::string_view frame) {
  json::Value doc;
  try {
    doc = json::parse(frame);
  } catch (const InvalidInput& e) {
    throw ProtocolError("parse_error", e.what());
  }
  return request_from_json(doc);
}

std::vector<FrameItem> parse_frame(std::string_view frame) {
  json::Value doc;
  try {
    doc = json::parse(frame);
  } catch (const InvalidInput& e) {
    throw ProtocolError("parse_error", e.what());
  }
  std::vector<FrameItem> items;
  if (doc.is_array()) {
    const auto& elems = doc.items();
    if (elems.empty()) {
      throw ProtocolError("bad_request", "batch frame must not be empty");
    }
    items.reserve(elems.size());
    for (const json::Value& elem : elems) {
      FrameItem item;
      try {
        item.request = request_from_json(elem);
      } catch (const ProtocolError& e) {
        item.ok = false;
        item.error_type = e.type();
        item.error_message = e.what();
        item.error_id = e.id();
      }
      items.push_back(std::move(item));
    }
    return items;
  }
  FrameItem item;
  item.request = request_from_json(doc);  // whole-frame errors propagate
  items.push_back(std::move(item));
  return items;
}

std::string serialize_results(const std::vector<ModelResult>& results) {
  std::string out = "[";
  bool first = true;
  for (const ModelResult& r : results) {
    out += first ? "{" : ", {";
    first = false;
    out += "\"model\": ";
    json::append_quoted(out, r.model);
    out += ", \"verdict\": ";
    json::append_quoted(out, r.verdict);
    if (!r.witness_json.empty()) {
      out += ", \"witness\": ";
      out += r.witness_json;  // serializer bytes, embedded verbatim
      out += ", \"witness_fnv1a\": ";
      json::append_quoted(out, hex16(fnv1a64(r.witness_json)));
    }
    if (!r.note.empty()) {
      out += ", \"note\": ";
      json::append_quoted(out, r.note);
    }
    out += '}';
  }
  out += ']';
  return out;
}

namespace {

void open_frame(std::string& out, std::string_view id, bool ok) {
  out += "{\"id\": ";
  json::append_quoted(out, id);
  out += ok ? ", \"ok\": true" : ", \"ok\": false";
}

}  // namespace

std::string serialize_check_response(const CheckResponse& r) {
  std::string out;
  open_frame(out, r.id, true);
  out += ", \"results\": [";
  bool first = true;
  for (const ModelResult& m : r.results) {
    out += first ? "{" : ", {";
    first = false;
    out += "\"model\": ";
    json::append_quoted(out, m.model);
    out += ", \"verdict\": ";
    json::append_quoted(out, m.verdict);
    out += ", \"source\": ";
    json::append_quoted(out, m.source);
    if (!m.witness_json.empty()) {
      out += ", \"witness\": ";
      out += m.witness_json;
      out += ", \"witness_fnv1a\": ";
      json::append_quoted(out, hex16(fnv1a64(m.witness_json)));
    }
    if (!m.note.empty()) {
      out += ", \"note\": ";
      json::append_quoted(out, m.note);
    }
    out += '}';
  }
  out += "], \"meta\": {\"latency_us\": " + std::to_string(r.latency_us);
  out += ", \"cache_hits\": " + std::to_string(r.cache_hits);
  out += ", \"solved\": " + std::to_string(r.solved);
  out += ", \"dedup_waits\": " + std::to_string(r.dedup_waits);
  out += "}}\n";
  return out;
}

std::string serialize_error(std::string_view id, std::string_view type,
                            std::string_view message) {
  std::string out;
  open_frame(out, id, false);
  out += ", \"error\": {\"type\": ";
  json::append_quoted(out, type);
  out += ", \"message\": ";
  json::append_quoted(out, message);
  out += "}}\n";
  return out;
}

namespace {

void append_identity(std::string& out, std::string_view node) {
  if (!node.empty()) {
    out += ", \"node\": ";
    json::append_quoted(out, node);
  }
  out += ", \"proto\": " + std::to_string(kProtocolVersion);
}

}  // namespace

std::string serialize_stats(std::string_view id, std::string_view node) {
  std::string out;
  open_frame(out, id, true);
  append_identity(out, node);
  out += ", \"stats\": ";
  out += common::metrics::compact_global_snapshot();
  out += "}\n";
  return out;
}

std::string serialize_pong(std::string_view id, std::string_view node) {
  std::string out;
  open_frame(out, id, true);
  out += ", \"pong\": true";
  append_identity(out, node);
  out += "}\n";
  return out;
}

std::string serialize_drain_ack(std::string_view id) {
  std::string out;
  open_frame(out, id, true);
  out += ", \"draining\": true}\n";
  return out;
}

std::string serialize_request(const Request& req) {
  std::string out = "{\"op\": ";
  switch (req.op) {
    case Request::Op::Ping:
      out += "\"ping\"";
      break;
    case Request::Op::Stats:
      out += "\"stats\"";
      break;
    case Request::Op::Shutdown:
      out += "\"shutdown\"";
      break;
    case Request::Op::Check:
      out += "\"check\"";
      break;
    case Request::Op::Trace:
      out += "\"trace\"";
      break;
  }
  if (!req.id.empty()) {
    out += ", \"id\": ";
    json::append_quoted(out, req.id);
  }
  if (req.op == Request::Op::Check) {
    out += ", \"program\": ";
    json::append_quoted(out, req.check.program);
    if (!req.check.models.empty()) {
      out += ", \"models\": [";
      bool first = true;
      for (const std::string& m : req.check.models) {
        if (!first) out += ", ";
        first = false;
        json::append_quoted(out, m);
      }
      out += ']';
    }
    if (req.check.budget.max_nodes != 0) {
      out += ", \"max_nodes\": " + std::to_string(req.check.budget.max_nodes);
    }
    if (req.check.budget.timeout_ms != 0) {
      out += ", \"timeout_ms\": " + std::to_string(req.check.budget.timeout_ms);
    }
    if (req.check.no_cache) out += ", \"no_cache\": true";
    if (req.check.backend != checker::Backend::Search) {
      out += ", \"backend\": ";
      json::append_quoted(out, checker::to_string(req.check.backend));
    }
  } else if (req.op == Request::Op::Trace) {
    switch (req.trace.phase) {
      case TraceRequest::Phase::Begin:
        out += ", \"phase\": \"begin\", \"header\": ";
        json::append_quoted(out, req.trace.header_line);
        if (!req.trace.model.empty()) {
          out += ", \"model\": ";
          json::append_quoted(out, req.trace.model);
        }
        if (req.trace.window != 0) {
          out += ", \"window\": " + std::to_string(req.trace.window);
        }
        break;
      case TraceRequest::Phase::Ops:
        out += ", \"phase\": \"ops\", \"lines\": ";
        json::append_quoted(out, req.trace.lines);
        break;
      case TraceRequest::Phase::End:
        out += ", \"phase\": \"end\"";
        break;
    }
  }
  out += "}\n";
  return out;
}

std::string serialize_trace_response(std::string_view id,
                                     const std::vector<std::string>& verdicts,
                                     std::string_view summary) {
  std::string out;
  open_frame(out, id, true);
  out += ", \"verdicts\": [";
  bool first = true;
  for (const std::string& v : verdicts) {
    if (!first) out += ", ";
    first = false;
    out += v;  // verdict_line bytes: a complete JSON object
  }
  out += ']';
  if (!summary.empty()) {
    out += ", \"summary\": ";
    out += summary;
  }
  out += "}\n";
  return out;
}

}  // namespace ssm::service
