// Verdict cache: the content-addressed heart of the check service.
//
// The checking engine is deterministic — the same (program, model,
// budget) triple always yields the same verdict and, for a positive one,
// the same witness certificate bytes (docs/PARALLELISM.md).  That makes
// verdicts perfectly cacheable: the key is the *canonical* litmus program
// (litmus::canonicalize — name, origin and expectations stripped, then
// processors, locations and write values canonically renamed, so every
// isomorphic variant of one program shares an entry), the model name, and
// the effective budget caps.  Cached witnesses are in canonical
// coordinates; the server remaps them back per response
// (litmus::remap_witness_from_canonical) and re-verifies the result.
//
// Two layers:
//   * a sharded in-memory LRU sized by `capacity`.  Reads are LOCK-FREE:
//     each shard publishes an open-addressed table of immutable entry
//     nodes through atomic slots, and get/get_many probe it under an
//     epoch guard (common/epoch.hpp) — zero mutex acquisitions on hits
//     AND misses, cold or warm (`service.cache_lockfree_reads` counts
//     them; `service.shard_lock_acquisitions` now counts only the write
//     side).  Writers serialize on the shard mutex and retire replaced
//     nodes/tables through the epoch domain.  Recency is a per-node
//     atomic access tick; eviction picks the minimum tick, which
//     reproduces exact LRU order for deterministic sequences;
//   * an optional persistent directory (`dir`): every conclusive verdict
//     is written through as a versioned one-record JSON file, atomically
//     (temp file + rename), and `load_persistent()` re-populates the
//     memory layer at startup.  A loaded *allowed* entry is only accepted
//     after its witness certificate re-validates against the
//     independently implemented checker::verify_witness — a corrupt or
//     stale disk record can therefore never resurface as a wrong positive
//     verdict.  Forbidden entries carry no certificate; they are guarded
//     by a content checksum (detects corruption, not forgery — the cache
//     directory is a trust boundary, see docs/SERVICE.md).
//   * INCONCLUSIVE verdicts are cached in memory (the node-budget that
//     produced them is part of the key) but never persisted: a timeout-
//     induced '?' is a statement about one machine's wall clock, not
//     about the program.
//   * DEFINITE verdicts are additionally mirrored under a budget- and
//     backend-independent alias key (see alias_key): the engine is
//     deterministic, so "allowed"/"forbidden" cannot depend on how much
//     budget the solve happened to have.  A primary-key miss re-probes the
//     alias, letting a verdict solved under one budget retire requests
//     made under any other (`service.cache_budget_upgrades`).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "litmus/test.hpp"

namespace ssm::service {

/// Identity of one cached cell.  `program` must be the canonical DSL text
/// (see canonical_program); the budget caps are the *effective* ones the
/// solve ran under, so differently-budgeted answers never alias.
struct CacheKey {
  std::string program;
  std::string model;
  std::uint64_t max_nodes = 0;
  std::uint64_t timeout_ms = 0;
  /// Decision backend (checker::to_string(Backend)).  Keyed because an
  /// INCONCLUSIVE verdict is a statement about one backend's budget, not
  /// about the program; definite verdicts transcend it via the alias layer.
  std::string backend = "search";

  bool operator==(const CacheKey&) const = default;
};

/// The budget- and backend-independent ALIAS of a key: budget axes set to
/// the UINT64_MAX sentinel, backend cleared.  A DEFINITE verdict does not
/// depend on the budget that produced it (the search is deterministic and
/// both backends provably agree — docs/PORTFOLIO.md), so every conclusive
/// put is mirrored under this key and a primary-key miss re-probes it.  A
/// hit there — a verdict solved under one budget answering a request made
/// under another — counts into `service.cache_budget_upgrades`.
[[nodiscard]] CacheKey alias_key(const CacheKey& k);

/// Canonical cache text for a litmus test: the symmetry-canonical form
/// (litmus::canonicalize — name, origin and expectations stripped, then
/// processors/locations/write-values canonically renamed).  Every program
/// in one isomorphism class hashes to the same entry, not just renamed
/// copies with identical structure.
[[nodiscard]] std::string canonical_program(const litmus::LitmusTest& t);

/// Canonical flat rendering of all key fields (length-prefixed, so field
/// boundaries cannot be confused); the exact identity used by the
/// single-flight table.
[[nodiscard]] std::string key_string(const CacheKey& k);

/// fnv1a-64 of key_string (the content address; also the persistent
/// file stem).
[[nodiscard]] std::uint64_t key_hash(const CacheKey& k);

/// 16-hex-digit rendering of a 64-bit hash (file stems, witness refs).
[[nodiscard]] std::string hex16(std::uint64_t v);

/// fnv1a-64 of a string (shared by the key hash, record checksums, and
/// the load generator's verdict-identity check).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// One cached verdict.  `witness_json` is the PR-2 serializer's output
/// (checker::to_json) for Allowed entries, empty otherwise.
struct CachedVerdict {
  enum class Status : std::uint8_t { Allowed, Forbidden, Inconclusive };
  Status status = Status::Forbidden;
  std::string witness_json;
  std::string note;

  bool operator==(const CachedVerdict&) const = default;
};

[[nodiscard]] const char* to_string(CachedVerdict::Status s) noexcept;

class VerdictCache {
 public:
  struct Options {
    std::size_t capacity = 4096;  ///< total in-memory entries across shards
    std::string dir;              ///< persistent directory; empty = off
  };

  struct Stats {
    std::size_t entries = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  struct LoadReport {
    std::size_t loaded = 0;   ///< records accepted into the memory layer
    std::size_t skipped = 0;  ///< corrupt / stale / failed re-verification
    /// Subset of `skipped`: well-formed records written by an older
    /// kRecordVersion (e.g. v1 records keyed on non-canonical program
    /// text).  Expected after an upgrade; they re-materialize at v2 as
    /// programs are re-checked.
    std::size_t stale_version = 0;
  };

  explicit VerdictCache(Options options);
  ~VerdictCache();  // frees tables/nodes directly; no readers may be live
  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  /// Memory-layer lookup; promotes the entry to most-recently-used.
  /// Lock-free: probes the shard's published table under an epoch guard
  /// and never touches the shard mutex (on hit or miss).
  [[nodiscard]] std::optional<CachedVerdict> get(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail past
  /// capacity.  Conclusive verdicts are also written through to `dir`
  /// when persistence is on.
  void put(const CacheKey& key, const CachedVerdict& value);

  /// One cell of a batched lookup/insert.  The caller fills `key` (and may
  /// pre-compute `hash` = key_hash(*key); 0 means "compute for me" — a real
  /// key never hashes to 0 in practice, but 0 is simply the sentinel for
  /// "not yet computed" and is recomputed harmlessly).
  struct BatchCell {
    const CacheKey* key = nullptr;
    std::uint64_t hash = 0;
    std::optional<CachedVerdict> result;  ///< get_many output
    const CachedVerdict* value = nullptr;  ///< put_many input
  };

  /// Batched lookup.  Every probe (primary and the alias re-probe for
  /// primary misses) is lock-free: an all-hit warm batch takes ZERO shard
  /// locks — `service.shard_lock_acquisitions` stays flat and
  /// `service.cache_lockfree_reads` advances by the probe count (pinned
  /// by a counter assertion in tests/service/cache_test.cpp).  Fills
  /// `cell.result`; misses stay nullopt.
  void get_many(std::vector<BatchCell>& cells);

  /// Batched insert, same shard-grouped single-lock discipline.  Reads
  /// `cell.value`; cells with a null value are skipped.  Persistence
  /// write-through happens outside the shard locks, after every memory
  /// insert has landed.
  void put_many(const std::vector<BatchCell>& cells);

  static constexpr std::size_t shard_count() noexcept { return kShards; }
  [[nodiscard]] static std::size_t shard_id(std::uint64_t hash) noexcept {
    return hash % kShards;
  }

  /// Scans `dir` for record files and loads every valid one (witnesses
  /// re-verified, checksums checked).  No-op when persistence is off.
  LoadReport load_persistent();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The persistent record path for a key (exposed for tests that corrupt
  /// records deliberately).
  [[nodiscard]] std::string record_path(const CacheKey& key) const;

 private:
  static constexpr std::size_t kShards = 16;

  /// One cached entry.  Immutable after publication except the recency
  /// tick; replaced (never mutated) on refresh, with the old node retired
  /// through the epoch domain.
  struct Node {
    std::uint64_t hash = 0;
    CacheKey key;
    CachedVerdict value;
    mutable std::atomic<std::uint64_t> tick{0};
  };

  /// Power-of-two open-addressed slot array published via Shard::table.
  /// Slots hold null (empty), a tombstone sentinel (evicted), or a Node*.
  struct Table {
    explicit Table(std::size_t n);
    std::size_t mask;
    std::unique_ptr<std::atomic<Node*>[]> slots;
  };

  struct Shard {
    mutable std::mutex mu;             // writers + evictions + stats scan
    std::atomic<Table*> table{nullptr};
    std::size_t live = 0;              // nodes (mu)
    std::size_t used = 0;              // nodes + tombstones (mu)
    std::uint64_t evictions = 0;       // (mu)
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> tick_src{0};
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) noexcept {
    return shards_[hash % kShards];
  }

  /// The lock-free read path shared by get/get_many: epoch-guarded probe
  /// of the shard's published table, full-key compare on candidate hits,
  /// relaxed tick bump for recency.  Never takes s.mu.
  [[nodiscard]] std::optional<CachedVerdict> probe(Shard& s,
                                                   std::uint64_t hash,
                                                   const CacheKey& key);

  /// The tombstone sentinel stored in slots of evicted entries: probes
  /// skip it, inserts may reuse it.  A distinct static address, never
  /// dereferenced.
  [[nodiscard]] static Node* tombstone_sentinel() noexcept;

  /// Write side, shard mutex held.
  void insert_locked(Shard& s, std::uint64_t hash, const CacheKey& key,
                     const CachedVerdict& value);
  void evict_one_locked(Shard& s, Table& t);
  void rebuild_locked(Shard& s);

  void insert_memory(const CacheKey& key, const CachedVerdict& value);
  void write_record(const CacheKey& key, const CachedVerdict& value) const;
  void destroy_shards() noexcept;

  Options options_;
  std::size_t per_shard_capacity_;
  Shard shards_[kShards];
};

/// Serializes one persistent record (versioned, checksummed, one JSON
/// object per file).  Exposed for tests.
[[nodiscard]] std::string encode_record(const CacheKey& key,
                                        const CachedVerdict& value);

/// Parses and validates one persistent record: version check, checksum
/// check, program parse, and — for Allowed entries — independent witness
/// re-verification.  Returns std::nullopt (never throws) on any defect.
[[nodiscard]] std::optional<std::pair<CacheKey, CachedVerdict>> decode_record(
    std::string_view text);

}  // namespace ssm::service
