// Blocking NDJSON client for the check service: one socket, one frame out,
// one frame back, strictly in order (the server answers per-connection in
// request order).  Shared by `ssm client`, the smoke test, the
// bench/service_load generator, and the cluster router's backend pools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ssm::service {

/// Connection-establishment and per-call I/O bounds.  0 = unbounded (the
/// pre-cluster behavior).  The router always sets both: a dead or wedged
/// backend must surface as a typed failure it can retry, never hang a
/// client's request forever.
struct ClientDeadlines {
  std::uint32_t connect_ms = 0;  ///< connect() cap (TCP and unix)
  std::uint32_t io_ms = 0;       ///< per-send/per-recv cap once connected
};

class Client {
 public:
  /// Connects to a unix-domain socket.  Throws InvalidInput on failure
  /// (including "connect timed out" when deadlines.connect_ms elapses).
  [[nodiscard]] static Client connect_unix(const std::string& path,
                                           ClientDeadlines deadlines = {});

  /// Connects to 127.0.0.1:`port` with no deadline (legacy single-node
  /// shape, kept for the existing tests/benches).
  [[nodiscard]] static Client connect_tcp(std::uint16_t port);

  /// Connects to `host`:`port`.  `host` may be a numeric IPv4/IPv6 address
  /// or a name (resolved via getaddrinfo; every resolved address is tried
  /// in order).  Throws InvalidInput on failure or connect timeout.
  [[nodiscard]] static Client connect_tcp(const std::string& host,
                                          std::uint16_t port,
                                          ClientDeadlines deadlines = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Writes one frame ('\n' appended when missing).  Throws InvalidInput
  /// when the connection is gone or a send exceeds the io deadline.
  void send_frame(std::string_view frame);

  /// Reads one frame (without the trailing '\n').  Returns std::nullopt on
  /// a clean EOF at a frame boundary; throws InvalidInput on an EOF that
  /// truncates a frame or on an io-deadline expiry.
  [[nodiscard]] std::optional<std::string> read_frame();

  /// send_frame + read_frame; throws InvalidInput when the server hung up
  /// instead of answering.
  [[nodiscard]] std::string call(std::string_view frame);

  /// Half-closes the write side (tells the server "no more requests")
  /// while leaving reads open for the remaining responses.
  void shutdown_write() noexcept;

 private:
  explicit Client(int fd, ClientDeadlines deadlines = {}) noexcept
      : fd_(fd), deadlines_(deadlines) {}

  int fd_ = -1;
  ClientDeadlines deadlines_;
  std::string buf_;
};

}  // namespace ssm::service
