// Blocking NDJSON client for the check service: one socket, one frame out,
// one frame back, strictly in order (the server answers per-connection in
// request order).  Shared by `ssm client`, the smoke test, and the
// bench/service_load generator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace ssm::service {

class Client {
 public:
  /// Connects to a unix-domain socket.  Throws InvalidInput on failure.
  [[nodiscard]] static Client connect_unix(const std::string& path);

  /// Connects to 127.0.0.1:`port`.  Throws InvalidInput on failure.
  [[nodiscard]] static Client connect_tcp(std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Writes one frame ('\n' appended when missing).  Throws InvalidInput
  /// when the connection is gone.
  void send_frame(std::string_view frame);

  /// Reads one frame (without the trailing '\n').  Returns std::nullopt on
  /// a clean EOF at a frame boundary; throws InvalidInput on an EOF that
  /// truncates a frame.
  [[nodiscard]] std::optional<std::string> read_frame();

  /// send_frame + read_frame; throws InvalidInput when the server hung up
  /// instead of answering.
  [[nodiscard]] std::string call(std::string_view frame);

  /// Half-closes the write side (tells the server "no more requests")
  /// while leaving reads open for the remaining responses.
  void shutdown_write() noexcept;

 private:
  explicit Client(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
  std::string buf_;
};

}  // namespace ssm::service
