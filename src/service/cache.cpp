#include "service/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "solve/portfolio.hpp"

namespace ssm::service {

namespace fs = std::filesystem;
namespace json = common::json;

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string canonical_program(const litmus::LitmusTest& t) {
  // Full symmetry canonicalization (litmus/canonical.hpp): processor
  // permutations, location renamings, and write-value renamings of one
  // program all share a single cache entry.  Verdicts transport along the
  // isomorphism, so the entry is correct for every member of the class;
  // witnesses are stored in canonical coordinates and remapped per
  // response (server.cpp).
  return litmus::canonicalize(t).key;
}

namespace {

// Version 3: the key grew a `backend` field (docs/PORTFOLIO.md).  A v2
// record has no backend and would decode into a key that never matches a
// lookup, so reload skips older versions (counted in
// LoadReport::stale_version); they re-materialize at v3 as programs are
// re-checked.  (Version 2 made `program` the full symmetry-canonical form.)
constexpr std::uint64_t kRecordVersion = 3;

/// Length-prefixes each field so boundaries cannot be confused by crafted
/// contents; shared by the key hash and the record checksum.
void append_field(std::string& s, std::string_view f) {
  s += std::to_string(f.size());
  s += ':';
  s += f;
}

std::string checksum_payload(const CacheKey& k, const CachedVerdict& v) {
  std::string s = key_string(k);
  append_field(s, to_string(v.status));
  append_field(s, v.witness_json);
  append_field(s, v.note);
  return s;
}

}  // namespace

std::string key_string(const CacheKey& k) {
  std::string s;
  append_field(s, k.program);
  append_field(s, k.model);
  append_field(s, std::to_string(k.max_nodes));
  append_field(s, std::to_string(k.timeout_ms));
  append_field(s, k.backend);
  return s;
}

CacheKey alias_key(const CacheKey& k) {
  CacheKey a = k;
  // UINT64_MAX (not 0) so the alias can never collide with a real
  // effective budget: 0 means "unlimited", which IS a key budgets resolve
  // to.  The empty backend likewise never occurs as a primary key.
  a.max_nodes = UINT64_MAX;
  a.timeout_ms = UINT64_MAX;
  a.backend.clear();
  return a;
}

namespace {

bool is_alias_key(const CacheKey& k) noexcept {
  return k.max_nodes == UINT64_MAX && k.timeout_ms == UINT64_MAX &&
         k.backend.empty();
}

}  // namespace

std::uint64_t key_hash(const CacheKey& k) { return fnv1a64(key_string(k)); }

const char* to_string(CachedVerdict::Status s) noexcept {
  switch (s) {
    case CachedVerdict::Status::Allowed:
      return "allowed";
    case CachedVerdict::Status::Forbidden:
      return "forbidden";
    case CachedVerdict::Status::Inconclusive:
      return "inconclusive";
  }
  return "?";
}

VerdictCache::VerdictCache(Options options)
    : options_(std::move(options)),
      per_shard_capacity_(std::max<std::size_t>(
          1, (options_.capacity + kShards - 1) / kShards)) {}

namespace {

/// Counts every shard-mutex acquisition on the get/put paths — the
/// observable that lets tests assert a batch took each shard's lock at
/// most once (docs/SERVICE.md, `service.shard_lock_acquisitions`).
common::metrics::Counter& shard_lock_counter() {
  static auto& c = common::metrics::Registry::global().counter(
      "service.shard_lock_acquisitions");
  return c;
}

/// Alias-key hits: a definite verdict solved under one (budget, backend)
/// answering a request made under another (docs/SERVICE.md).
common::metrics::Counter& budget_upgrade_counter() {
  static auto& c = common::metrics::Registry::global().counter(
      "service.cache_budget_upgrades");
  return c;
}

}  // namespace

std::optional<CachedVerdict> VerdictCache::get_locked(Shard& s,
                                                      std::uint64_t hash,
                                                      const CacheKey& key) {
  const auto it = s.index.find(hash);
  // The index is hash-addressed; a hit must still compare the full key so
  // a 64-bit collision can never alias one program's verdict to another
  // (the PR-1 memo lesson, applied here from day one).
  if (it == s.index.end() || !(it->second->key == key)) {
    ++s.misses;
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.hits;
  return it->second->value;
}

std::optional<CachedVerdict> VerdictCache::get(const CacheKey& key) {
  const std::uint64_t h = key_hash(key);
  {
    Shard& s = shard_for(h);
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    if (auto hit = get_locked(s, h, key)) return hit;
  }
  // Primary miss: re-probe the budget-independent alias.  Definite
  // verdicts don't depend on the budget (or backend) that produced them,
  // so a verdict solved under any other key retires this lookup too.
  if (is_alias_key(key)) return std::nullopt;
  const CacheKey alias = alias_key(key);
  const std::uint64_t ah = key_hash(alias);
  Shard& as = shard_for(ah);
  shard_lock_counter().add();
  std::lock_guard<std::mutex> lock(as.mu);
  auto hit = get_locked(as, ah, alias);
  if (hit) budget_upgrade_counter().add();
  return hit;
}

void VerdictCache::insert_locked(Shard& s, std::uint64_t hash,
                                 const CacheKey& key,
                                 const CachedVerdict& value) {
  const auto it = s.index.find(hash);
  if (it != s.index.end()) {
    // Refresh (or displace a hash-colliding key — harmless: correctness
    // lives in the full-key compare on the read side).
    it->second->key = key;
    it->second->value = value;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, value});
  s.index.emplace(hash, s.lru.begin());
  while (s.lru.size() > per_shard_capacity_) {
    s.index.erase(key_hash(s.lru.back().key));
    s.lru.pop_back();
    ++s.evictions;
  }
}

void VerdictCache::insert_memory(const CacheKey& key,
                                 const CachedVerdict& value) {
  const std::uint64_t h = key_hash(key);
  Shard& s = shard_for(h);
  shard_lock_counter().add();
  std::lock_guard<std::mutex> lock(s.mu);
  insert_locked(s, h, key, value);
}

void VerdictCache::get_many(std::vector<BatchCell>& cells) {
  // Group cell indices by shard, then visit each populated shard exactly
  // once — a batch of N cells costs at most kShards lock acquisitions, and
  // each shard's lock is taken once no matter how many cells map to it.
  std::vector<std::uint32_t> by_shard[kShards];
  for (std::uint32_t i = 0; i < cells.size(); ++i) {
    if (cells[i].hash == 0) cells[i].hash = key_hash(*cells[i].key);
    by_shard[shard_id(cells[i].hash)].push_back(i);
  }
  for (std::size_t sid = 0; sid < kShards; ++sid) {
    if (by_shard[sid].empty()) continue;
    Shard& s = shards_[sid];
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const std::uint32_t i : by_shard[sid]) {
      cells[i].result = get_locked(s, cells[i].hash, *cells[i].key);
    }
  }
  // Second, alias sweep — ONLY over cells that missed the primary probe,
  // so a fully warm batch still costs at most kShards acquisitions total.
  // Same shard-grouped single-lock discipline for the misses.
  std::vector<std::uint32_t> miss_idx;
  std::vector<CacheKey> aliases;  // stable storage for the sweep
  std::vector<std::uint64_t> alias_hashes;
  for (std::uint32_t i = 0; i < cells.size(); ++i) {
    if (cells[i].result.has_value() || is_alias_key(*cells[i].key)) continue;
    miss_idx.push_back(i);
    aliases.push_back(alias_key(*cells[i].key));
    alias_hashes.push_back(key_hash(aliases.back()));
  }
  if (miss_idx.empty()) return;
  std::vector<std::uint32_t> alias_by_shard[kShards];
  for (std::uint32_t k = 0; k < miss_idx.size(); ++k) {
    alias_by_shard[shard_id(alias_hashes[k])].push_back(k);
  }
  for (std::size_t sid = 0; sid < kShards; ++sid) {
    if (alias_by_shard[sid].empty()) continue;
    Shard& s = shards_[sid];
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const std::uint32_t k : alias_by_shard[sid]) {
      auto hit = get_locked(s, alias_hashes[k], aliases[k]);
      if (hit) {
        budget_upgrade_counter().add();
        cells[miss_idx[k]].result = std::move(hit);
      }
    }
  }
}

void VerdictCache::put_many(const std::vector<BatchCell>& cells) {
  // Flatten into (key, hash, value) items, mirroring every DEFINITE
  // verdict under its alias key, then do ONE shard-grouped sweep over the
  // whole set — primaries and aliases alike obey the at-most-one-lock-per-
  // shard discipline.
  struct Item {
    const CacheKey* key;
    std::uint64_t hash;
    const CachedVerdict* value;
  };
  std::vector<Item> items;
  std::vector<CacheKey> aliases;  // stable storage: reserve before taking &
  aliases.reserve(cells.size());
  for (const BatchCell& cell : cells) {
    if (cell.value == nullptr) continue;
    const std::uint64_t h = cell.hash != 0 ? cell.hash : key_hash(*cell.key);
    items.push_back({cell.key, h, cell.value});
    if (cell.value->status != CachedVerdict::Status::Inconclusive &&
        !is_alias_key(*cell.key)) {
      aliases.push_back(alias_key(*cell.key));
      items.push_back({&aliases.back(), key_hash(aliases.back()), cell.value});
    }
  }
  std::vector<std::uint32_t> by_shard[kShards];
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    by_shard[shard_id(items[i].hash)].push_back(i);
  }
  for (std::size_t sid = 0; sid < kShards; ++sid) {
    if (by_shard[sid].empty()) continue;
    Shard& s = shards_[sid];
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const std::uint32_t i : by_shard[sid]) {
      insert_locked(s, items[i].hash, *items[i].key, *items[i].value);
    }
  }
  // Persistence outside the shard locks: write-through is filesystem I/O
  // and must never extend the memory layer's critical sections.
  if (options_.dir.empty()) return;
  for (const BatchCell& cell : cells) {
    if (cell.value != nullptr &&
        cell.value->status != CachedVerdict::Status::Inconclusive) {
      write_record(*cell.key, *cell.value);
    }
  }
}

void VerdictCache::put(const CacheKey& key, const CachedVerdict& value) {
  insert_memory(key, value);
  if (value.status != CachedVerdict::Status::Inconclusive) {
    // Mirror the definite verdict under the budget-independent alias (in
    // memory only — on disk one record per primary key suffices, since
    // load_persistent re-mirrors).
    if (!is_alias_key(key)) insert_memory(alias_key(key), value);
    if (!options_.dir.empty()) write_record(key, value);
  }
}

std::string VerdictCache::record_path(const CacheKey& key) const {
  return (fs::path(options_.dir) / (hex16(key_hash(key)) + ".json")).string();
}

std::string encode_record(const CacheKey& key, const CachedVerdict& value) {
  std::string out = "{\"version\": " + std::to_string(kRecordVersion);
  out += ", \"model\": ";
  json::append_quoted(out, key.model);
  out += ", \"max_nodes\": " + std::to_string(key.max_nodes);
  out += ", \"timeout_ms\": " + std::to_string(key.timeout_ms);
  out += ", \"backend\": ";
  json::append_quoted(out, key.backend);
  out += ", \"status\": ";
  json::append_quoted(out, to_string(value.status));
  out += ", \"program\": ";
  json::append_quoted(out, key.program);
  if (!value.note.empty()) {
    out += ", \"note\": ";
    json::append_quoted(out, value.note);
  }
  if (!value.witness_json.empty()) {
    // Stored as a JSON *string* (not an embedded object) so the exact
    // serializer bytes survive the round trip: a cached response must be
    // byte-identical to a freshly solved one.
    out += ", \"witness\": ";
    json::append_quoted(out, value.witness_json);
  }
  out += ", \"check\": ";
  json::append_quoted(out, hex16(fnv1a64(checksum_payload(key, value))));
  out += "}\n";
  return out;
}

std::optional<std::pair<CacheKey, CachedVerdict>> decode_record(
    std::string_view text) {
  try {
    const json::Value doc = json::parse(text);
    if (!doc.is_object() || doc.at("version").as_u64() != kRecordVersion) {
      return std::nullopt;
    }
    CacheKey key;
    key.model = doc.at("model").as_string();
    key.max_nodes = doc.at("max_nodes").as_u64();
    key.timeout_ms = doc.at("timeout_ms").as_u64();
    key.backend = doc.at("backend").as_string();
    // The backend must be a real one — a record carrying a fabricated
    // backend string would occupy a key no lookup can ever form.
    if (!checker::backend_from_string(key.backend).has_value()) {
      return std::nullopt;
    }
    key.program = doc.at("program").as_string();
    CachedVerdict value;
    const std::string& status = doc.at("status").as_string();
    if (status == "allowed") {
      value.status = CachedVerdict::Status::Allowed;
    } else if (status == "forbidden") {
      value.status = CachedVerdict::Status::Forbidden;
    } else {
      return std::nullopt;  // inconclusive records are never written
    }
    if (const json::Value* note = doc.find("note")) {
      value.note = note->as_string();
    }
    if (const json::Value* witness = doc.find("witness")) {
      value.witness_json = witness->as_string();
    }
    // Integrity first: the checksum covers every field above, so a
    // bit-flipped or truncated record is rejected before any semantic
    // work.
    if (doc.at("check").as_string() !=
        hex16(fnv1a64(checksum_payload(key, value)))) {
      return std::nullopt;
    }
    // The program must parse, be a single test, and re-canonicalize to
    // itself (a drifted program would never be hit and would alias
    // lookups).
    const auto tests = litmus::parse_suite(key.program);
    if (tests.size() != 1 || canonical_program(tests[0]) != key.program) {
      return std::nullopt;
    }
    if (value.status == CachedVerdict::Status::Allowed) {
      // A positive verdict is only as good as its certificate: re-verify
      // it with the independent witness verifier against the program's
      // history, and require the stored bytes to be the serializer's
      // canonical form (so cached responses stay byte-identical to fresh
      // solves).
      if (value.witness_json.empty()) return std::nullopt;
      const checker::Witness w =
          checker::witness_from_json(value.witness_json);
      if (checker::to_json(w) != value.witness_json) return std::nullopt;
      if (w.model != key.model) return std::nullopt;
      if (checker::verify_witness(tests[0].hist, w).has_value()) {
        return std::nullopt;
      }
    } else if (!value.witness_json.empty()) {
      return std::nullopt;  // a forbidden entry must not smuggle one in
    }
    return std::make_pair(std::move(key), std::move(value));
  } catch (const InvalidInput&) {
    return std::nullopt;
  }
}

void VerdictCache::write_record(const CacheKey& key,
                                const CachedVerdict& value) const {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  const fs::path path = record_path(key);
  // Atomic publish: write the full record to a sibling temp file, then
  // rename over the final name.  A reader (or a crash) can therefore
  // never observe a half-written record — it sees the old file or the
  // new one.
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // persistence is best-effort; memory layer is live
    out << encode_record(key, value);
    if (!out.flush()) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

VerdictCache::LoadReport VerdictCache::load_persistent() {
  LoadReport report;
  if (options_.dir.empty()) return report;
  std::error_code ec;
  if (!fs::is_directory(options_.dir, ec)) return report;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    if (!in || !(text << in.rdbuf())) {
      ++report.skipped;
      continue;
    }
    if (auto record = decode_record(text.str())) {
      insert_memory(record->first, record->second);
      // Persisted records are definite by construction; restore the
      // budget-independent alias mirror the original put() created.
      if (!is_alias_key(record->first)) {
        insert_memory(alias_key(record->first), record->second);
      }
      ++report.loaded;
    } else {
      ++report.skipped;
      // Distinguish upgrade churn from corruption: a well-formed record
      // whose version predates kRecordVersion is the expected aftermath of
      // a cache-format bump, not a damaged file.
      try {
        const json::Value doc = json::parse(text.str());
        if (doc.is_object()) {
          if (const json::Value* v = doc.find("version");
              v != nullptr && v->as_u64() != kRecordVersion) {
            ++report.stale_version;
          }
        }
      } catch (const InvalidInput&) {
      }
    }
  }
  return report;
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.entries += s.lru.size();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

std::size_t VerdictCache::size() const { return stats().entries; }

}  // namespace ssm::service
