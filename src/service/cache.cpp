#include "service/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/epoch.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "solve/portfolio.hpp"

namespace ssm::service {

namespace fs = std::filesystem;
namespace json = common::json;

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string canonical_program(const litmus::LitmusTest& t) {
  // Full symmetry canonicalization (litmus/canonical.hpp): processor
  // permutations, location renamings, and write-value renamings of one
  // program all share a single cache entry.  Verdicts transport along the
  // isomorphism, so the entry is correct for every member of the class;
  // witnesses are stored in canonical coordinates and remapped per
  // response (server.cpp).
  return litmus::canonicalize(t).key;
}

namespace {

// Version 3: the key grew a `backend` field (docs/PORTFOLIO.md).  A v2
// record has no backend and would decode into a key that never matches a
// lookup, so reload skips older versions (counted in
// LoadReport::stale_version); they re-materialize at v3 as programs are
// re-checked.  (Version 2 made `program` the full symmetry-canonical form.)
constexpr std::uint64_t kRecordVersion = 3;

/// Length-prefixes each field so boundaries cannot be confused by crafted
/// contents; shared by the key hash and the record checksum.
void append_field(std::string& s, std::string_view f) {
  s += std::to_string(f.size());
  s += ':';
  s += f;
}

std::string checksum_payload(const CacheKey& k, const CachedVerdict& v) {
  std::string s = key_string(k);
  append_field(s, to_string(v.status));
  append_field(s, v.witness_json);
  append_field(s, v.note);
  return s;
}

}  // namespace

std::string key_string(const CacheKey& k) {
  std::string s;
  append_field(s, k.program);
  append_field(s, k.model);
  append_field(s, std::to_string(k.max_nodes));
  append_field(s, std::to_string(k.timeout_ms));
  append_field(s, k.backend);
  return s;
}

CacheKey alias_key(const CacheKey& k) {
  CacheKey a = k;
  // UINT64_MAX (not 0) so the alias can never collide with a real
  // effective budget: 0 means "unlimited", which IS a key budgets resolve
  // to.  The empty backend likewise never occurs as a primary key.
  a.max_nodes = UINT64_MAX;
  a.timeout_ms = UINT64_MAX;
  a.backend.clear();
  return a;
}

namespace {

bool is_alias_key(const CacheKey& k) noexcept {
  return k.max_nodes == UINT64_MAX && k.timeout_ms == UINT64_MAX &&
         k.backend.empty();
}

}  // namespace

std::uint64_t key_hash(const CacheKey& k) { return fnv1a64(key_string(k)); }

const char* to_string(CachedVerdict::Status s) noexcept {
  switch (s) {
    case CachedVerdict::Status::Allowed:
      return "allowed";
    case CachedVerdict::Status::Forbidden:
      return "forbidden";
    case CachedVerdict::Status::Inconclusive:
      return "inconclusive";
  }
  return "?";
}

namespace epoch = common::epoch;

VerdictCache::Table::Table(std::size_t n)
    : mask(n - 1), slots(new std::atomic<Node*>[n]) {
  for (std::size_t i = 0; i < n; ++i) {
    slots[i].store(nullptr, std::memory_order_relaxed);
  }
}

namespace {

/// Tombstone sentinel for evicted slots: probes skip it, inserts may
/// reuse it.  A distinct static address, never dereferenced.
alignas(64) char g_tombstone_storage[1];

/// Counts every shard-mutex acquisition on the put paths — the
/// observable that lets tests assert a batch took each shard's lock at
/// most once (docs/SERVICE.md, `service.shard_lock_acquisitions`).
/// Since the read path went lock-free this counts ONLY writes/evictions.
common::metrics::Counter& shard_lock_counter() {
  static auto& c = common::metrics::Registry::global().counter(
      "service.shard_lock_acquisitions");
  return c;
}

/// Every lock-free read-side probe (primary or alias, hit or miss).  A
/// warm all-hit get_many advances this by the probe count while
/// service.shard_lock_acquisitions stays flat.
common::metrics::Counter& lockfree_reads_counter() {
  static auto& c = common::metrics::Registry::global().counter(
      "service.cache_lockfree_reads");
  return c;
}

/// Alias-key hits: a definite verdict solved under one (budget, backend)
/// answering a request made under another (docs/SERVICE.md).
common::metrics::Counter& budget_upgrade_counter() {
  static auto& c = common::metrics::Registry::global().counter(
      "service.cache_budget_upgrades");
  return c;
}

}  // namespace

VerdictCache::Node* VerdictCache::tombstone_sentinel() noexcept {
  return reinterpret_cast<Node*>(g_tombstone_storage);
}

VerdictCache::VerdictCache(Options options)
    : options_(std::move(options)),
      per_shard_capacity_(std::max<std::size_t>(
          1, (options_.capacity + kShards - 1) / kShards)) {
  // Slot count: smallest power of two keeping live entries at or below
  // half the table (tombstones use the rest up to the 3/4 rebuild bound).
  std::size_t slots = 16;
  while (slots < per_shard_capacity_ * 2) slots *= 2;
  for (Shard& s : shards_) {
    s.table.store(new Table(slots), std::memory_order_release);
  }
}

void VerdictCache::destroy_shards() noexcept {
  // Destruction contract: no concurrent readers or writers (same as the
  // old mutex design, whose mutexes died here too).  Nodes retired before
  // destruction belong to the epoch domain and are freed by its collector.
  for (Shard& s : shards_) {
    Table* t = s.table.load(std::memory_order_acquire);
    if (t == nullptr) continue;
    for (std::size_t i = 0; i <= t->mask; ++i) {
      Node* n = t->slots[i].load(std::memory_order_relaxed);
      if (n != nullptr && n != tombstone_sentinel()) delete n;
    }
    delete t;
    s.table.store(nullptr, std::memory_order_relaxed);
  }
}

VerdictCache::~VerdictCache() { destroy_shards(); }

std::optional<CachedVerdict> VerdictCache::probe(Shard& s, std::uint64_t hash,
                                                 const CacheKey& key) {
  lockfree_reads_counter().add();
  Node* const tomb = tombstone_sentinel();
  // The epoch guard keeps every node and table we can observe alive until
  // we unpin; the acquire loads pair with the writers' release stores, so
  // a published node's key/value bytes are fully visible.
  epoch::Guard guard;
  const Table* t = s.table.load(std::memory_order_acquire);
  std::size_t idx = static_cast<std::size_t>(hash) & t->mask;
  for (std::size_t step = 0; step <= t->mask; ++step) {
    Node* n = t->slots[idx].load(std::memory_order_acquire);
    if (n == nullptr) break;
    if (n != tomb && n->hash == hash && n->key == key) {
      // Recency bump: a relaxed store to the node's own line.  Ticks are
      // monotone per shard, so min-tick eviction reproduces LRU order.
      n->tick.store(s.tick_src.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
      s.hits.fetch_add(1, std::memory_order_relaxed);
      return n->value;
    }
    idx = (idx + 1) & t->mask;
  }
  s.misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::optional<CachedVerdict> VerdictCache::get(const CacheKey& key) {
  const std::uint64_t h = key_hash(key);
  if (auto hit = probe(shard_for(h), h, key)) return hit;
  // Primary miss: re-probe the budget-independent alias.  Definite
  // verdicts don't depend on the budget (or backend) that produced them,
  // so a verdict solved under any other key retires this lookup too.
  if (is_alias_key(key)) return std::nullopt;
  const CacheKey alias = alias_key(key);
  const std::uint64_t ah = key_hash(alias);
  auto hit = probe(shard_for(ah), ah, alias);
  if (hit) budget_upgrade_counter().add();
  return hit;
}

void VerdictCache::evict_one_locked(Shard& s, Table& t) {
  // Min-tick scan = the LRU tail.  O(table) per eviction, amortized fine
  // at the shard sizes the service runs (and only on the write path).
  Node* const tomb = tombstone_sentinel();
  std::size_t victim = t.mask + 1;
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i <= t.mask; ++i) {
    Node* n = t.slots[i].load(std::memory_order_relaxed);
    if (n == nullptr || n == tomb) continue;
    const std::uint64_t tick = n->tick.load(std::memory_order_relaxed);
    if (tick <= best) {
      best = tick;
      victim = i;
    }
  }
  if (victim > t.mask) return;
  Node* n = t.slots[victim].load(std::memory_order_relaxed);
  t.slots[victim].store(tomb, std::memory_order_release);
  epoch::retire(n, [](void* p) { delete static_cast<Node*>(p); });
  --s.live;
  ++s.evictions;
}

void VerdictCache::rebuild_locked(Shard& s) {
  // Drop accumulated tombstones: copy live nodes into a fresh table of
  // the same size, publish it, retire the old one.  Readers mid-probe on
  // the old table still see every live node (only the table object is
  // retired, not the nodes).
  Table* old = s.table.load(std::memory_order_relaxed);
  Node* const tomb = tombstone_sentinel();
  auto* fresh = new Table(old->mask + 1);
  for (std::size_t i = 0; i <= old->mask; ++i) {
    Node* n = old->slots[i].load(std::memory_order_relaxed);
    if (n == nullptr || n == tomb) continue;
    std::size_t idx = static_cast<std::size_t>(n->hash) & fresh->mask;
    while (fresh->slots[idx].load(std::memory_order_relaxed) != nullptr) {
      idx = (idx + 1) & fresh->mask;
    }
    fresh->slots[idx].store(n, std::memory_order_relaxed);
  }
  s.table.store(fresh, std::memory_order_release);
  s.used = s.live;
  epoch::retire(old, [](void* p) { delete static_cast<Table*>(p); });
}

void VerdictCache::insert_locked(Shard& s, std::uint64_t hash,
                                 const CacheKey& key,
                                 const CachedVerdict& value) {
  Table* t = s.table.load(std::memory_order_relaxed);
  Node* const tomb = tombstone_sentinel();
  // Pass 1: replace an existing entry for this key (full-key compare — a
  // 64-bit collision can never alias one program's verdict to another,
  // the PR-1 memo lesson applied here from day one).
  std::size_t idx = static_cast<std::size_t>(hash) & t->mask;
  std::size_t first_tomb = t->mask + 1;
  std::size_t insert_at = t->mask + 1;
  for (std::size_t step = 0; step <= t->mask; ++step) {
    Node* n = t->slots[idx].load(std::memory_order_relaxed);
    if (n == nullptr) {
      insert_at = idx;
      break;
    }
    if (n == tomb) {
      if (first_tomb > t->mask) first_tomb = idx;
    } else if (n->hash == hash && n->key == key) {
      // Refresh: publish an immutable replacement node at MRU recency and
      // retire the old one (readers holding it still see a consistent
      // value).
      Node* repl = new Node{hash, key, value, {}};
      repl->tick.store(s.tick_src.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
      t->slots[idx].store(repl, std::memory_order_release);
      epoch::retire(n, [](void* p) { delete static_cast<Node*>(p); });
      return;
    }
    idx = (idx + 1) & t->mask;
  }
  if (s.live >= per_shard_capacity_) evict_one_locked(s, *t);
  Node* node = new Node{hash, key, value, {}};
  node->tick.store(s.tick_src.fetch_add(1, std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  // Prefer reusing a tombstone in this key's probe chain; otherwise take
  // the terminating null slot.  Both lie before the chain's first null,
  // so the lock-free probe always finds the node.
  if (first_tomb <= t->mask) {
    t->slots[first_tomb].store(node, std::memory_order_release);
  } else {
    t->slots[insert_at].store(node, std::memory_order_release);
    ++s.used;
  }
  ++s.live;
  if (s.used * 4 > (t->mask + 1) * 3) rebuild_locked(s);
}

void VerdictCache::insert_memory(const CacheKey& key,
                                 const CachedVerdict& value) {
  const std::uint64_t h = key_hash(key);
  Shard& s = shard_for(h);
  shard_lock_counter().add();
  std::lock_guard<std::mutex> lock(s.mu);
  insert_locked(s, h, key, value);
}

void VerdictCache::get_many(std::vector<BatchCell>& cells) {
  // Every probe is lock-free, so there is no shard grouping to do: a
  // warm all-hit batch costs ZERO lock acquisitions (it used to cost up
  // to kShards — the commutativity rule made concrete: reads commute, so
  // their implementation shares no write).
  for (BatchCell& cell : cells) {
    if (cell.hash == 0) cell.hash = key_hash(*cell.key);
    cell.result = probe(shard_for(cell.hash), cell.hash, *cell.key);
  }
  // Alias sweep — ONLY over cells that missed the primary probe.
  for (BatchCell& cell : cells) {
    if (cell.result.has_value() || is_alias_key(*cell.key)) continue;
    const CacheKey alias = alias_key(*cell.key);
    const std::uint64_t ah = key_hash(alias);
    auto hit = probe(shard_for(ah), ah, alias);
    if (hit) {
      budget_upgrade_counter().add();
      cell.result = std::move(hit);
    }
  }
}

void VerdictCache::put_many(const std::vector<BatchCell>& cells) {
  // Flatten into (key, hash, value) items, mirroring every DEFINITE
  // verdict under its alias key, then do ONE shard-grouped sweep over the
  // whole set — primaries and aliases alike obey the at-most-one-lock-per-
  // shard discipline.
  struct Item {
    const CacheKey* key;
    std::uint64_t hash;
    const CachedVerdict* value;
  };
  std::vector<Item> items;
  std::vector<CacheKey> aliases;  // stable storage: reserve before taking &
  aliases.reserve(cells.size());
  for (const BatchCell& cell : cells) {
    if (cell.value == nullptr) continue;
    const std::uint64_t h = cell.hash != 0 ? cell.hash : key_hash(*cell.key);
    items.push_back({cell.key, h, cell.value});
    if (cell.value->status != CachedVerdict::Status::Inconclusive &&
        !is_alias_key(*cell.key)) {
      aliases.push_back(alias_key(*cell.key));
      items.push_back({&aliases.back(), key_hash(aliases.back()), cell.value});
    }
  }
  std::vector<std::uint32_t> by_shard[kShards];
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    by_shard[shard_id(items[i].hash)].push_back(i);
  }
  for (std::size_t sid = 0; sid < kShards; ++sid) {
    if (by_shard[sid].empty()) continue;
    Shard& s = shards_[sid];
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const std::uint32_t i : by_shard[sid]) {
      insert_locked(s, items[i].hash, *items[i].key, *items[i].value);
    }
  }
  // Persistence outside the shard locks: write-through is filesystem I/O
  // and must never extend the memory layer's critical sections.
  if (options_.dir.empty()) return;
  for (const BatchCell& cell : cells) {
    if (cell.value != nullptr &&
        cell.value->status != CachedVerdict::Status::Inconclusive) {
      write_record(*cell.key, *cell.value);
    }
  }
}

void VerdictCache::put(const CacheKey& key, const CachedVerdict& value) {
  insert_memory(key, value);
  if (value.status != CachedVerdict::Status::Inconclusive) {
    // Mirror the definite verdict under the budget-independent alias (in
    // memory only — on disk one record per primary key suffices, since
    // load_persistent re-mirrors).
    if (!is_alias_key(key)) insert_memory(alias_key(key), value);
    if (!options_.dir.empty()) write_record(key, value);
  }
}

std::string VerdictCache::record_path(const CacheKey& key) const {
  return (fs::path(options_.dir) / (hex16(key_hash(key)) + ".json")).string();
}

std::string encode_record(const CacheKey& key, const CachedVerdict& value) {
  std::string out = "{\"version\": " + std::to_string(kRecordVersion);
  out += ", \"model\": ";
  json::append_quoted(out, key.model);
  out += ", \"max_nodes\": " + std::to_string(key.max_nodes);
  out += ", \"timeout_ms\": " + std::to_string(key.timeout_ms);
  out += ", \"backend\": ";
  json::append_quoted(out, key.backend);
  out += ", \"status\": ";
  json::append_quoted(out, to_string(value.status));
  out += ", \"program\": ";
  json::append_quoted(out, key.program);
  if (!value.note.empty()) {
    out += ", \"note\": ";
    json::append_quoted(out, value.note);
  }
  if (!value.witness_json.empty()) {
    // Stored as a JSON *string* (not an embedded object) so the exact
    // serializer bytes survive the round trip: a cached response must be
    // byte-identical to a freshly solved one.
    out += ", \"witness\": ";
    json::append_quoted(out, value.witness_json);
  }
  out += ", \"check\": ";
  json::append_quoted(out, hex16(fnv1a64(checksum_payload(key, value))));
  out += "}\n";
  return out;
}

std::optional<std::pair<CacheKey, CachedVerdict>> decode_record(
    std::string_view text) {
  try {
    const json::Value doc = json::parse(text);
    if (!doc.is_object() || doc.at("version").as_u64() != kRecordVersion) {
      return std::nullopt;
    }
    CacheKey key;
    key.model = doc.at("model").as_string();
    key.max_nodes = doc.at("max_nodes").as_u64();
    key.timeout_ms = doc.at("timeout_ms").as_u64();
    key.backend = doc.at("backend").as_string();
    // The backend must be a real one — a record carrying a fabricated
    // backend string would occupy a key no lookup can ever form.
    if (!checker::backend_from_string(key.backend).has_value()) {
      return std::nullopt;
    }
    key.program = doc.at("program").as_string();
    CachedVerdict value;
    const std::string& status = doc.at("status").as_string();
    if (status == "allowed") {
      value.status = CachedVerdict::Status::Allowed;
    } else if (status == "forbidden") {
      value.status = CachedVerdict::Status::Forbidden;
    } else {
      return std::nullopt;  // inconclusive records are never written
    }
    if (const json::Value* note = doc.find("note")) {
      value.note = note->as_string();
    }
    if (const json::Value* witness = doc.find("witness")) {
      value.witness_json = witness->as_string();
    }
    // Integrity first: the checksum covers every field above, so a
    // bit-flipped or truncated record is rejected before any semantic
    // work.
    if (doc.at("check").as_string() !=
        hex16(fnv1a64(checksum_payload(key, value)))) {
      return std::nullopt;
    }
    // The program must parse, be a single test, and re-canonicalize to
    // itself (a drifted program would never be hit and would alias
    // lookups).
    const auto tests = litmus::parse_suite(key.program);
    if (tests.size() != 1 || canonical_program(tests[0]) != key.program) {
      return std::nullopt;
    }
    if (value.status == CachedVerdict::Status::Allowed) {
      // A positive verdict is only as good as its certificate: re-verify
      // it with the independent witness verifier against the program's
      // history, and require the stored bytes to be the serializer's
      // canonical form (so cached responses stay byte-identical to fresh
      // solves).
      if (value.witness_json.empty()) return std::nullopt;
      const checker::Witness w =
          checker::witness_from_json(value.witness_json);
      if (checker::to_json(w) != value.witness_json) return std::nullopt;
      if (w.model != key.model) return std::nullopt;
      if (checker::verify_witness(tests[0].hist, w).has_value()) {
        return std::nullopt;
      }
    } else if (!value.witness_json.empty()) {
      return std::nullopt;  // a forbidden entry must not smuggle one in
    }
    return std::make_pair(std::move(key), std::move(value));
  } catch (const InvalidInput&) {
    return std::nullopt;
  }
}

void VerdictCache::write_record(const CacheKey& key,
                                const CachedVerdict& value) const {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  const fs::path path = record_path(key);
  // Atomic publish: write the full record to a sibling temp file, then
  // rename over the final name.  A reader (or a crash) can therefore
  // never observe a half-written record — it sees the old file or the
  // new one.
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // persistence is best-effort; memory layer is live
    out << encode_record(key, value);
    if (!out.flush()) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

VerdictCache::LoadReport VerdictCache::load_persistent() {
  LoadReport report;
  if (options_.dir.empty()) return report;
  std::error_code ec;
  if (!fs::is_directory(options_.dir, ec)) return report;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    if (!in || !(text << in.rdbuf())) {
      ++report.skipped;
      continue;
    }
    if (auto record = decode_record(text.str())) {
      insert_memory(record->first, record->second);
      // Persisted records are definite by construction; restore the
      // budget-independent alias mirror the original put() created.
      if (!is_alias_key(record->first)) {
        insert_memory(alias_key(record->first), record->second);
      }
      ++report.loaded;
    } else {
      ++report.skipped;
      // Distinguish upgrade churn from corruption: a well-formed record
      // whose version predates kRecordVersion is the expected aftermath of
      // a cache-format bump, not a damaged file.
      try {
        const json::Value doc = json::parse(text.str());
        if (doc.is_object()) {
          if (const json::Value* v = doc.find("version");
              v != nullptr && v->as_u64() != kRecordVersion) {
            ++report.stale_version;
          }
        }
      } catch (const InvalidInput&) {
      }
    }
  }
  return report;
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.entries += s.live;
    total.hits += s.hits.load(std::memory_order_relaxed);
    total.misses += s.misses.load(std::memory_order_relaxed);
    total.evictions += s.evictions;
  }
  return total;
}

std::size_t VerdictCache::size() const { return stats().entries; }

}  // namespace ssm::service
