#include "service/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"

namespace ssm::service {

namespace fs = std::filesystem;
namespace json = common::json;

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string canonical_program(const litmus::LitmusTest& t) {
  // Full symmetry canonicalization (litmus/canonical.hpp): processor
  // permutations, location renamings, and write-value renamings of one
  // program all share a single cache entry.  Verdicts transport along the
  // isomorphism, so the entry is correct for every member of the class;
  // witnesses are stored in canonical coordinates and remapped per
  // response (server.cpp).
  return litmus::canonicalize(t).key;
}

namespace {

// Version 2: `program` is the full symmetry-canonical form, not just the
// name/expectation-stripped emit.  Version-1 records are keyed on
// non-canonical text — a v1 key would never be looked up again and, worse,
// its witness is in the old coordinates — so reload skips them (counted in
// LoadReport::stale_version).
constexpr std::uint64_t kRecordVersion = 2;

/// Length-prefixes each field so boundaries cannot be confused by crafted
/// contents; shared by the key hash and the record checksum.
void append_field(std::string& s, std::string_view f) {
  s += std::to_string(f.size());
  s += ':';
  s += f;
}

std::string checksum_payload(const CacheKey& k, const CachedVerdict& v) {
  std::string s = key_string(k);
  append_field(s, to_string(v.status));
  append_field(s, v.witness_json);
  append_field(s, v.note);
  return s;
}

}  // namespace

std::string key_string(const CacheKey& k) {
  std::string s;
  append_field(s, k.program);
  append_field(s, k.model);
  append_field(s, std::to_string(k.max_nodes));
  append_field(s, std::to_string(k.timeout_ms));
  return s;
}

std::uint64_t key_hash(const CacheKey& k) { return fnv1a64(key_string(k)); }

const char* to_string(CachedVerdict::Status s) noexcept {
  switch (s) {
    case CachedVerdict::Status::Allowed:
      return "allowed";
    case CachedVerdict::Status::Forbidden:
      return "forbidden";
    case CachedVerdict::Status::Inconclusive:
      return "inconclusive";
  }
  return "?";
}

VerdictCache::VerdictCache(Options options)
    : options_(std::move(options)),
      per_shard_capacity_(std::max<std::size_t>(
          1, (options_.capacity + kShards - 1) / kShards)) {}

namespace {

/// Counts every shard-mutex acquisition on the get/put paths — the
/// observable that lets tests assert a batch took each shard's lock at
/// most once (docs/SERVICE.md, `service.shard_lock_acquisitions`).
common::metrics::Counter& shard_lock_counter() {
  static auto& c = common::metrics::Registry::global().counter(
      "service.shard_lock_acquisitions");
  return c;
}

}  // namespace

std::optional<CachedVerdict> VerdictCache::get_locked(Shard& s,
                                                      std::uint64_t hash,
                                                      const CacheKey& key) {
  const auto it = s.index.find(hash);
  // The index is hash-addressed; a hit must still compare the full key so
  // a 64-bit collision can never alias one program's verdict to another
  // (the PR-1 memo lesson, applied here from day one).
  if (it == s.index.end() || !(it->second->key == key)) {
    ++s.misses;
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.hits;
  return it->second->value;
}

std::optional<CachedVerdict> VerdictCache::get(const CacheKey& key) {
  const std::uint64_t h = key_hash(key);
  Shard& s = shard_for(h);
  shard_lock_counter().add();
  std::lock_guard<std::mutex> lock(s.mu);
  return get_locked(s, h, key);
}

void VerdictCache::insert_locked(Shard& s, std::uint64_t hash,
                                 const CacheKey& key,
                                 const CachedVerdict& value) {
  const auto it = s.index.find(hash);
  if (it != s.index.end()) {
    // Refresh (or displace a hash-colliding key — harmless: correctness
    // lives in the full-key compare on the read side).
    it->second->key = key;
    it->second->value = value;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  s.lru.push_front(Entry{key, value});
  s.index.emplace(hash, s.lru.begin());
  while (s.lru.size() > per_shard_capacity_) {
    s.index.erase(key_hash(s.lru.back().key));
    s.lru.pop_back();
    ++s.evictions;
  }
}

void VerdictCache::insert_memory(const CacheKey& key,
                                 const CachedVerdict& value) {
  const std::uint64_t h = key_hash(key);
  Shard& s = shard_for(h);
  shard_lock_counter().add();
  std::lock_guard<std::mutex> lock(s.mu);
  insert_locked(s, h, key, value);
}

void VerdictCache::get_many(std::vector<BatchCell>& cells) {
  // Group cell indices by shard, then visit each populated shard exactly
  // once — a batch of N cells costs at most kShards lock acquisitions, and
  // each shard's lock is taken once no matter how many cells map to it.
  std::vector<std::uint32_t> by_shard[kShards];
  for (std::uint32_t i = 0; i < cells.size(); ++i) {
    if (cells[i].hash == 0) cells[i].hash = key_hash(*cells[i].key);
    by_shard[shard_id(cells[i].hash)].push_back(i);
  }
  for (std::size_t sid = 0; sid < kShards; ++sid) {
    if (by_shard[sid].empty()) continue;
    Shard& s = shards_[sid];
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const std::uint32_t i : by_shard[sid]) {
      cells[i].result = get_locked(s, cells[i].hash, *cells[i].key);
    }
  }
}

void VerdictCache::put_many(const std::vector<BatchCell>& cells) {
  std::vector<std::uint32_t> by_shard[kShards];
  for (std::uint32_t i = 0; i < cells.size(); ++i) {
    if (cells[i].value == nullptr) continue;
    const std::uint64_t h =
        cells[i].hash != 0 ? cells[i].hash : key_hash(*cells[i].key);
    by_shard[h % kShards].push_back(i);
  }
  for (std::size_t sid = 0; sid < kShards; ++sid) {
    if (by_shard[sid].empty()) continue;
    Shard& s = shards_[sid];
    shard_lock_counter().add();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const std::uint32_t i : by_shard[sid]) {
      const std::uint64_t h =
          cells[i].hash != 0 ? cells[i].hash : key_hash(*cells[i].key);
      insert_locked(s, h, *cells[i].key, *cells[i].value);
    }
  }
  // Persistence outside the shard locks: write-through is filesystem I/O
  // and must never extend the memory layer's critical sections.
  if (options_.dir.empty()) return;
  for (const BatchCell& cell : cells) {
    if (cell.value != nullptr &&
        cell.value->status != CachedVerdict::Status::Inconclusive) {
      write_record(*cell.key, *cell.value);
    }
  }
}

void VerdictCache::put(const CacheKey& key, const CachedVerdict& value) {
  insert_memory(key, value);
  if (!options_.dir.empty() &&
      value.status != CachedVerdict::Status::Inconclusive) {
    write_record(key, value);
  }
}

std::string VerdictCache::record_path(const CacheKey& key) const {
  return (fs::path(options_.dir) / (hex16(key_hash(key)) + ".json")).string();
}

std::string encode_record(const CacheKey& key, const CachedVerdict& value) {
  std::string out = "{\"version\": " + std::to_string(kRecordVersion);
  out += ", \"model\": ";
  json::append_quoted(out, key.model);
  out += ", \"max_nodes\": " + std::to_string(key.max_nodes);
  out += ", \"timeout_ms\": " + std::to_string(key.timeout_ms);
  out += ", \"status\": ";
  json::append_quoted(out, to_string(value.status));
  out += ", \"program\": ";
  json::append_quoted(out, key.program);
  if (!value.note.empty()) {
    out += ", \"note\": ";
    json::append_quoted(out, value.note);
  }
  if (!value.witness_json.empty()) {
    // Stored as a JSON *string* (not an embedded object) so the exact
    // serializer bytes survive the round trip: a cached response must be
    // byte-identical to a freshly solved one.
    out += ", \"witness\": ";
    json::append_quoted(out, value.witness_json);
  }
  out += ", \"check\": ";
  json::append_quoted(out, hex16(fnv1a64(checksum_payload(key, value))));
  out += "}\n";
  return out;
}

std::optional<std::pair<CacheKey, CachedVerdict>> decode_record(
    std::string_view text) {
  try {
    const json::Value doc = json::parse(text);
    if (!doc.is_object() || doc.at("version").as_u64() != kRecordVersion) {
      return std::nullopt;
    }
    CacheKey key;
    key.model = doc.at("model").as_string();
    key.max_nodes = doc.at("max_nodes").as_u64();
    key.timeout_ms = doc.at("timeout_ms").as_u64();
    key.program = doc.at("program").as_string();
    CachedVerdict value;
    const std::string& status = doc.at("status").as_string();
    if (status == "allowed") {
      value.status = CachedVerdict::Status::Allowed;
    } else if (status == "forbidden") {
      value.status = CachedVerdict::Status::Forbidden;
    } else {
      return std::nullopt;  // inconclusive records are never written
    }
    if (const json::Value* note = doc.find("note")) {
      value.note = note->as_string();
    }
    if (const json::Value* witness = doc.find("witness")) {
      value.witness_json = witness->as_string();
    }
    // Integrity first: the checksum covers every field above, so a
    // bit-flipped or truncated record is rejected before any semantic
    // work.
    if (doc.at("check").as_string() !=
        hex16(fnv1a64(checksum_payload(key, value)))) {
      return std::nullopt;
    }
    // The program must parse, be a single test, and re-canonicalize to
    // itself (a drifted program would never be hit and would alias
    // lookups).
    const auto tests = litmus::parse_suite(key.program);
    if (tests.size() != 1 || canonical_program(tests[0]) != key.program) {
      return std::nullopt;
    }
    if (value.status == CachedVerdict::Status::Allowed) {
      // A positive verdict is only as good as its certificate: re-verify
      // it with the independent witness verifier against the program's
      // history, and require the stored bytes to be the serializer's
      // canonical form (so cached responses stay byte-identical to fresh
      // solves).
      if (value.witness_json.empty()) return std::nullopt;
      const checker::Witness w =
          checker::witness_from_json(value.witness_json);
      if (checker::to_json(w) != value.witness_json) return std::nullopt;
      if (w.model != key.model) return std::nullopt;
      if (checker::verify_witness(tests[0].hist, w).has_value()) {
        return std::nullopt;
      }
    } else if (!value.witness_json.empty()) {
      return std::nullopt;  // a forbidden entry must not smuggle one in
    }
    return std::make_pair(std::move(key), std::move(value));
  } catch (const InvalidInput&) {
    return std::nullopt;
  }
}

void VerdictCache::write_record(const CacheKey& key,
                                const CachedVerdict& value) const {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  const fs::path path = record_path(key);
  // Atomic publish: write the full record to a sibling temp file, then
  // rename over the final name.  A reader (or a crash) can therefore
  // never observe a half-written record — it sees the old file or the
  // new one.
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // persistence is best-effort; memory layer is live
    out << encode_record(key, value);
    if (!out.flush()) {
      fs::remove(tmp, ec);
      return;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

VerdictCache::LoadReport VerdictCache::load_persistent() {
  LoadReport report;
  if (options_.dir.empty()) return report;
  std::error_code ec;
  if (!fs::is_directory(options_.dir, ec)) return report;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    if (!in || !(text << in.rdbuf())) {
      ++report.skipped;
      continue;
    }
    if (auto record = decode_record(text.str())) {
      insert_memory(record->first, record->second);
      ++report.loaded;
    } else {
      ++report.skipped;
      // Distinguish upgrade churn from corruption: a well-formed record
      // whose version predates kRecordVersion is the expected aftermath of
      // a cache-format bump, not a damaged file.
      try {
        const json::Value doc = json::parse(text.str());
        if (doc.is_object()) {
          if (const json::Value* v = doc.find("version");
              v != nullptr && v->as_u64() != kRecordVersion) {
            ++report.stale_version;
          }
        }
      } catch (const InvalidInput&) {
      }
    }
  }
  return report;
}

VerdictCache::Stats VerdictCache::stats() const {
  Stats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.entries += s.lru.size();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

std::size_t VerdictCache::size() const { return stats().entries; }

}  // namespace ssm::service
