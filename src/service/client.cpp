#include "service/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/types.hpp"

namespace ssm::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw InvalidInput(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw InvalidInput("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw_errno("connect " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    throw_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_frame(std::string_view frame) {
  std::string line(frame);
  if (line.empty() || line.back() != '\n') line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::read_frame() {
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      std::string frame = buf_.substr(0, pos);
      buf_.erase(0, pos + 1);
      return frame;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (!buf_.empty()) {
        throw InvalidInput("connection closed mid-frame");
      }
      return std::nullopt;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::call(std::string_view frame) {
  send_frame(frame);
  auto reply = read_frame();
  if (!reply) throw InvalidInput("server closed the connection");
  return *std::move(reply);
}

void Client::shutdown_write() noexcept { ::shutdown(fd_, SHUT_WR); }

}  // namespace ssm::service
