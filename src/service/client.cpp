#include "service/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/types.hpp"

namespace ssm::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw InvalidInput(what + ": " + std::strerror(errno));
}

/// Applies per-call send/recv deadlines.  SO_RCVTIMEO/SO_SNDTIMEO keep the
/// fast path a plain blocking recv/send; an expiry surfaces as
/// EAGAIN/EWOULDBLOCK, which the frame loops turn into a typed throw.
void apply_io_deadline(int fd, std::uint32_t io_ms) {
  if (io_ms == 0) return;
  timeval tv{};
  tv.tv_sec = io_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(io_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Bounded connect: non-blocking connect + poll(POLLOUT) + SO_ERROR, then
/// back to blocking mode.  With connect_ms == 0 this is the plain
/// unbounded connect the pre-cluster callers relied on.  Returns 0 on
/// success, the failure errno otherwise (the caller owns the message).
int bounded_connect(int fd, const sockaddr* addr, socklen_t len,
                    std::uint32_t connect_ms) {
  if (connect_ms == 0) {
    return ::connect(fd, addr, len) == 0 ? 0 : errno;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  if (rc != 0 && errno != EINPROGRESS) {
    const int saved = errno;
    (void)::fcntl(fd, F_SETFL, flags);
    return saved;
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(connect_ms));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      (void)::fcntl(fd, F_SETFL, flags);
      return ETIMEDOUT;
    }
    if (rc < 0) {
      const int saved = errno;
      (void)::fcntl(fd, F_SETFL, flags);
      return saved;
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      err = errno;
    }
    if (err != 0) {
      (void)::fcntl(fd, F_SETFL, flags);
      return err;
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);
  return 0;
}

}  // namespace

Client Client::connect_unix(const std::string& path,
                            ClientDeadlines deadlines) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw InvalidInput("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int err =
      bounded_connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr, deadlines.connect_ms);
  if (err != 0) {
    ::close(fd);
    errno = err;
    throw_errno("connect " + path);
  }
  apply_io_deadline(fd, deadlines.io_ms);
  return Client(fd, deadlines);
}

Client Client::connect_tcp(std::uint16_t port) {
  return connect_tcp("127.0.0.1", port, ClientDeadlines{});
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port,
                           ClientDeadlines deadlines) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int gai = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (gai != 0) {
    throw InvalidInput("resolve " + host + ": " + ::gai_strerror(gai));
  }
  int last_err = ECONNREFUSED;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    const int err = bounded_connect(fd, ai->ai_addr, ai->ai_addrlen,
                                    deadlines.connect_ms);
    if (err == 0) {
      ::freeaddrinfo(res);
      apply_io_deadline(fd, deadlines.io_ms);
      return Client(fd, deadlines);
    }
    last_err = err;
    ::close(fd);
  }
  ::freeaddrinfo(res);
  errno = last_err;
  throw_errno("connect " + host + ":" + port_str);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      deadlines_(other.deadlines_),
      buf_(std::move(other.buf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    deadlines_ = other.deadlines_;
    buf_ = std::move(other.buf_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_frame(std::string_view frame) {
  std::string line(frame);
  if (line.empty() || line.back() != '\n') line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && deadlines_.io_ms > 0) {
        throw InvalidInput("send timed out after " +
                           std::to_string(deadlines_.io_ms) + "ms");
      }
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::read_frame() {
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      std::string frame = buf_.substr(0, pos);
      buf_.erase(0, pos + 1);
      return frame;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && deadlines_.io_ms > 0) {
        throw InvalidInput("recv timed out after " +
                           std::to_string(deadlines_.io_ms) + "ms");
      }
      throw_errno("recv");
    }
    if (n == 0) {
      if (!buf_.empty()) {
        throw InvalidInput("connection closed mid-frame");
      }
      return std::nullopt;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::call(std::string_view frame) {
  send_frame(frame);
  auto reply = read_frame();
  if (!reply) throw InvalidInput("server closed the connection");
  return *std::move(reply);
}

void Client::shutdown_write() noexcept { ::shutdown(fd_, SHUT_WR); }

}  // namespace ssm::service
