// Wire protocol for the check service: newline-delimited JSON frames.
//
// One request per line, one response per line, strictly in request order
// per connection.  The full grammar, error taxonomy, and examples live in
// docs/SERVICE.md; the shapes:
//
//   {"op":"check","id":"r1","program":"name: t\np: w(x)1 r(y)0\n...",
//    "models":["SC","TSO"],"max_nodes":0,"timeout_ms":0,"backend":"race"}
//   {"op":"stats"} | {"op":"ping"} | {"op":"shutdown"}
//
//   {"id":"r1","ok":true,"results":[{"model":"SC","verdict":"forbidden",
//    "source":"solved"},...],"meta":{"latency_us":412,"cache_hits":1,
//    "solved":1,"dedup_waits":0}}
//   {"id":"r1","ok":false,"error":{"type":"overloaded","message":"..."}}
//
// Error types are part of the contract: "parse_error" (frame is not
// valid JSON), "bad_request" (valid JSON, invalid request: unknown op,
// malformed program, unknown model), "overloaded" (admission queue full
// — retry later), "draining" (server shutting down), "internal" (a
// checker invariant failed; never expected).  A malformed frame gets a
// typed error response, never a disconnect.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "checker/budget.hpp"
#include "common/types.hpp"
#include "solve/portfolio.hpp"

namespace ssm::service {

/// Wire protocol version, advertised by every `ping`/`stats` response as
/// `"proto"`.  The cluster router refuses to pool a backend whose `proto`
/// differs from its own (docs/CLUSTER.md) — bump this whenever a change
/// would make a router and a node disagree about frame semantics.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// A protocol-level failure that should become a typed error frame.
/// Carries the request id (when one was successfully extracted before the
/// failure) so the error frame can echo it back.
class ProtocolError : public InvalidInput {
 public:
  ProtocolError(std::string type, const std::string& message)
      : InvalidInput(message), type_(std::move(type)) {}
  [[nodiscard]] const std::string& type() const noexcept { return type_; }
  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

 private:
  std::string type_;
  std::string id_;
};

struct CheckRequest {
  std::string program;              ///< litmus DSL text (exactly one test)
  std::vector<std::string> models;  ///< empty = every registered model
  checker::BudgetSpec budget;       ///< 0 = server default / cap
  bool no_cache = false;            ///< bypass lookup (still populates)
  /// Optional "backend" field: "search" (default) | "encode" | "race"
  /// (docs/PORTFOLIO.md).  Part of the cache key — an INCONCLUSIVE from
  /// one backend must never answer for another.
  checker::Backend backend = checker::Backend::Search;
};

/// One chunk of a streamed trace check (docs/TRACES.md).  A trace session
/// is a per-connection phase sequence — begin, any number of ops chunks,
/// end — each chunk an ordinary request frame answered in order, so trace
/// streaming inherits the batch, admission and drain semantics unchanged:
///
///   {"op":"trace","id":"t0","phase":"begin","model":"SC","window":256,
///    "header":"{\"ssm_trace\":1,\"procs\":2,\"locs\":4}"}
///   {"op":"trace","id":"t1","phase":"ops","lines":"{...}\n{...}"}
///   {"op":"trace","id":"t2","phase":"end"}
///
/// Responses carry the window verdicts completed by that chunk; the end
/// response adds the stream summary (with the verdict-stream digest).
///
/// "lines" chunks are arbitrary byte splits of the NDJSON op stream:
/// chunk boundaries need NOT align with line boundaries.  The server
/// buffers a trailing fragment with no terminating '\n' and prepends it
/// to the next chunk; at "end", a non-empty fragment is parsed as the
/// final op line.  A complete line must therefore be '\n'-terminated
/// unless it is the very last line of the stream.
struct TraceRequest {
  enum class Phase : std::uint8_t { Begin, Ops, End };
  Phase phase = Phase::Begin;
  std::string model;         ///< begin: model name (default "SC")
  std::uint64_t window = 0;  ///< begin: window cap (0 = server default)
  std::string header_line;   ///< begin: the trace's NDJSON header line
  std::string lines;         ///< ops: newline-separated op lines
};

struct Request {
  enum class Op : std::uint8_t { Check, Stats, Ping, Shutdown, Trace };
  Op op = Op::Ping;
  std::string id;
  CheckRequest check;  ///< meaningful when op == Check
  TraceRequest trace;  ///< meaningful when op == Trace
};

/// Parses one request frame.  Throws ProtocolError ("parse_error" or
/// "bad_request") on anything outside the contract.
[[nodiscard]] Request parse_request(std::string_view frame);

/// One element of a parsed frame: a request, or a per-element error that
/// should become a typed error frame in the element's response position.
struct FrameItem {
  bool ok = true;
  Request request;            ///< meaningful when ok
  std::string error_type;     ///< meaningful when !ok
  std::string error_message;  ///< meaningful when !ok
  std::string error_id;       ///< id echo when one was extractable
};

/// Parses one NDJSON frame into its request items.  A frame is either a
/// single request object, or a BATCH — a bare JSON array of request
/// objects, answered with one response frame per element in array order.
/// Elements parse independently: one malformed element yields an error
/// item in its position and never rejects its siblings.  Throws
/// ProtocolError only when the whole frame is unusable (invalid JSON,
/// neither object nor array, or an empty array).
[[nodiscard]] std::vector<FrameItem> parse_frame(std::string_view frame);

/// One model's verdict within a check response.
struct ModelResult {
  std::string model;
  std::string verdict;       ///< "allowed" | "forbidden" | "inconclusive"
  std::string source;        ///< "solved" | "cache" | "dedup"
  std::string witness_json;  ///< serializer bytes when allowed, else empty
  std::string note;          ///< diagnostic for inconclusive cells
};

struct CheckResponse {
  std::string id;
  std::vector<ModelResult> results;
  std::uint64_t latency_us = 0;
  std::uint32_t cache_hits = 0;
  std::uint32_t solved = 0;
  std::uint32_t dedup_waits = 0;
};

/// Canonical serialization of the results array alone — the payload the
/// byte-identity acceptance check hashes (it excludes the per-request
/// `source`/`meta` fields, which legitimately differ between a cold and a
/// warm run).
[[nodiscard]] std::string serialize_results(
    const std::vector<ModelResult>& results);

/// Full response frames (single line, '\n'-terminated).  `node` is the
/// responder's identity (`--node-id`, default `node-<pid>`); empty omits
/// the field.  Pong/stats always carry `"proto": kProtocolVersion`.
[[nodiscard]] std::string serialize_check_response(const CheckResponse& r);
[[nodiscard]] std::string serialize_error(std::string_view id,
                                          std::string_view type,
                                          std::string_view message);
[[nodiscard]] std::string serialize_stats(std::string_view id,
                                          std::string_view node = {});
[[nodiscard]] std::string serialize_pong(std::string_view id,
                                         std::string_view node = {});
[[nodiscard]] std::string serialize_drain_ack(std::string_view id);

/// Re-serializes a parsed request into a wire frame that parses back to
/// the same Request (round-trip property, tested).  The cluster router
/// uses this to forward batch elements to their home node as fresh
/// single-element frames without keeping raw byte slices of the original
/// client frame alive across retries.
[[nodiscard]] std::string serialize_request(const Request& req);

/// Trace-chunk response: the verdict lines (each already a complete JSON
/// object, embedded verbatim) completed by this chunk, plus — on the end
/// phase — the summary line.  Empty `summary` omits the field.
[[nodiscard]] std::string serialize_trace_response(
    std::string_view id, const std::vector<std::string>& verdicts,
    std::string_view summary);

}  // namespace ssm::service
