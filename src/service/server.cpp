#include "service/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "models/registry.hpp"
#include "solve/portfolio.hpp"
#include "trace/format.hpp"
#include "trace/streaming.hpp"

namespace ssm::service {

namespace fs = std::filesystem;
namespace metrics = common::metrics;

namespace {

metrics::Gauge& queue_depth_gauge() {
  static auto& g = metrics::Registry::global().gauge("service.queue_depth");
  return g;
}

metrics::Gauge& open_conns_gauge() {
  static auto& g =
      metrics::Registry::global().gauge("service.open_connections");
  return g;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw InvalidInput(what + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckService
// ---------------------------------------------------------------------------

CheckService::CheckService(Options options, Solver solver_override)
    : options_(std::move(options)),
      solver_(std::move(solver_override)),
      cache_(options_.cache) {}

checker::BudgetSpec CheckService::effective_budget(
    checker::BudgetSpec req) const noexcept {
  const auto clamp = [](std::uint64_t r, std::uint64_t cap) {
    if (cap == 0) return r;        // no server cap on this axis
    if (r == 0 || r > cap) return cap;  // unset or over-ask inherits the cap
    return r;
  };
  req.max_nodes = clamp(req.max_nodes, options_.default_budget.max_nodes);
  req.timeout_ms = clamp(req.timeout_ms, options_.default_budget.timeout_ms);
  return req;
}

CachedVerdict CheckService::solve(const litmus::LitmusTest& test,
                                  const std::string& model,
                                  const checker::BudgetSpec& budget,
                                  checker::Backend backend) {
  static auto& solve_us =
      metrics::Registry::global().histogram("service.solve_us");
  const auto start = std::chrono::steady_clock::now();
  if (solver_) return solver_(test, model, budget);
  // One entry point for all three backends: search and encode run under a
  // fresh budget of `budget`; race gives each backend its own
  // (docs/PORTFOLIO.md).
  const checker::Verdict v =
      checker::Portfolio::check(test.hist, model, backend, budget);
  CachedVerdict out;
  if (v.inconclusive) {
    out.status = CachedVerdict::Status::Inconclusive;
    out.note = v.note;
  } else if (v.allowed) {
    out.status = CachedVerdict::Status::Allowed;
    // Certify before caching or shipping: a witness the independent
    // verifier rejects is a checker bug and must surface as `internal`,
    // never be served (same policy as the CLI's exit 3).
    const auto w = checker::witness_from_verdict(test.hist, model, v);
    if (const auto err = checker::verify_witness(test.hist, w)) {
      throw ProtocolError(
          "internal", "witness failed independent re-verification: " + *err);
    }
    out.witness_json = checker::to_json(w);
  } else {
    out.status = CachedVerdict::Status::Forbidden;
  }
  solve_us.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return out;
}

std::vector<CheckService::Outcome> CheckService::handle_checks(
    const std::vector<const CheckRequest*>& reqs) {
  static auto& requests_ctr =
      metrics::Registry::global().counter("service.requests");
  static auto& latency =
      metrics::Registry::global().histogram("service.latency_us");
  static auto& hits = metrics::Registry::global().counter("service.cache_hits");
  static auto& misses =
      metrics::Registry::global().counter("service.cache_misses");
  static auto& dedup =
      metrics::Registry::global().counter("service.inflight_dedup");
  static auto& canonical_hits =
      metrics::Registry::global().counter("service.cache_canonical_hits");

  const auto start = std::chrono::steady_clock::now();
  std::vector<Outcome> outcomes(reqs.size());
  if (reqs.empty()) return outcomes;

  struct ReqInfo {
    bool failed = false;
    litmus::LitmusTest test;
    litmus::Canonical canon;
    std::vector<std::string> models;
    checker::BudgetSpec budget;
    checker::Backend backend = checker::Backend::Search;
    std::vector<std::size_t> cells;  ///< distinct-cell index, one per model
  };
  enum class How : std::uint8_t { Unresolved, Cache, Lead, Follow };
  // One DISTINCT (canonical program, model, budget) cell of the batch.
  // Repeated occurrences across the batch's requests share one cell: one
  // cache probe, at most one solve.
  struct Cell {
    CacheKey key;
    std::uint64_t hash = 0;
    std::string flight_id;  // key_string(key): the single-flight identity
    const litmus::LitmusTest* canon_test = nullptr;
    checker::Backend backend = checker::Backend::Search;
    bool no_cache = false;
    How how = How::Unresolved;
    std::shared_ptr<Inflight> flight;
    CachedVerdict result;
    bool have = false;
    bool failed = false;
    std::string error_type;
    std::string error;
    bool first_occurrence_taken = false;  // "solved" vs "dedup" attribution
    std::size_t occurrences = 0;  // request-cells referencing this cell
  };

  std::vector<ReqInfo> info(reqs.size());
  std::vector<Cell> cells;
  std::unordered_map<std::string, std::size_t> cell_index;

  // Pass 1 — per-request parse/validate/canonicalize; build distinct cells.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    requests_ctr.add();
    const CheckRequest& req = *reqs[i];
    ReqInfo& ri = info[i];
    const auto fail = [&](std::string type, std::string msg) {
      ri.failed = true;
      outcomes[i].ok = false;
      outcomes[i].error_type = std::move(type);
      outcomes[i].error_message = std::move(msg);
    };
    std::vector<litmus::LitmusTest> tests;
    try {
      tests = litmus::parse_suite(req.program);
    } catch (const InvalidInput& e) {
      fail("bad_request", std::string("program: ") + e.what());
      continue;
    }
    if (tests.size() != 1) {
      fail("bad_request", "program must contain exactly one litmus test");
      continue;
    }
    ri.test = std::move(tests[0]);
    ri.models = req.models.empty() ? models::model_names() : req.models;
    // Validate every model up front: a typo'd name rejects the whole
    // request before any solving starts (no partial answers).
    bool bad_model = false;
    for (const std::string& name : ri.models) {
      try {
        (void)models::make_model(name);
      } catch (const InvalidInput& e) {
        fail("bad_request", e.what());
        bad_model = true;
        break;
      }
    }
    if (bad_model) continue;
    ri.budget = effective_budget(req.budget);
    ri.backend = req.backend;
    // Solve (and cache) the canonical clone: every isomorphic variant of
    // this program maps to the same cell, so permuted/renamed batchmates
    // collapse into one probe/solve.  Witnesses are remapped back per
    // request in pass 5.
    ri.canon = litmus::canonicalize(ri.test);
    ri.cells.reserve(ri.models.size());
    for (const std::string& name : ri.models) {
      CacheKey key;
      key.program = ri.canon.key;
      key.model = name;
      key.max_nodes = ri.budget.max_nodes;
      key.timeout_ms = ri.budget.timeout_ms;
      key.backend = checker::to_string(ri.backend);
      std::string fid = key_string(key);
      // no_cache requests get their own cell (they must not be satisfied
      // by a batchmate's cache hit), but SHARE the flight id, so they
      // still join an in-progress solve instead of duplicating it.
      std::string map_key = (req.no_cache ? "n:" : "c:") + fid;
      const auto [it, inserted] = cell_index.try_emplace(map_key, cells.size());
      if (inserted) {
        Cell c;
        c.key = std::move(key);
        c.hash = key_hash(c.key);
        c.flight_id = std::move(fid);
        c.canon_test = &ri.canon.test;
        c.backend = ri.backend;
        c.no_cache = req.no_cache;
        cells.push_back(std::move(c));
      }
      ++cells[it->second].occurrences;
      ri.cells.push_back(it->second);
    }
  }

  // Pass 2 — shard-grouped batched lookup: each of the cache's shard locks
  // is taken at most once for the whole batch.
  {
    std::vector<VerdictCache::BatchCell> lookups;
    std::vector<std::size_t> lookup_cell;
    for (std::size_t j = 0; j < cells.size(); ++j) {
      if (cells[j].no_cache) continue;  // bypass lookup (still populates)
      VerdictCache::BatchCell bc;
      bc.key = &cells[j].key;
      bc.hash = cells[j].hash;
      lookups.push_back(bc);
      lookup_cell.push_back(j);
    }
    if (!lookups.empty()) cache_.get_many(lookups);
    for (std::size_t k = 0; k < lookups.size(); ++k) {
      if (!lookups[k].result) continue;
      Cell& c = cells[lookup_cell[k]];
      c.result = std::move(*lookups[k].result);
      c.have = true;
      c.how = How::Cache;
    }
  }

  // Pass 3 — single-flight election, ONE inflight-table lock for the whole
  // batch: missing cells either open a flight (leader) or join one another
  // batch already opened (follower).
  std::vector<std::size_t> leaders;
  std::vector<std::size_t> followers;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (std::size_t j = 0; j < cells.size(); ++j) {
      Cell& c = cells[j];
      if (c.how == How::Cache) continue;
      const auto it = inflight_.find(c.flight_id);
      if (it == inflight_.end()) {
        c.flight = std::make_shared<Inflight>();
        inflight_.emplace(c.flight_id, c.flight);
        c.how = How::Lead;
        leaders.push_back(j);
      } else {
        c.flight = it->second;
        c.how = How::Follow;
        followers.push_back(j);
      }
      // Dedup is counted at election time (a follower is a dedup the
      // moment it joins a flight, observably before the flight resolves);
      // a leader's extra occurrences ride its own solve — dedups too.
      const std::size_t riders =
          c.how == How::Follow ? c.occurrences : c.occurrences - 1;
      if (riders > 0) dedup.add(riders);
    }
  }

  // Pass 4 — leaders solve.  ALL leader cells finish (and their flights
  // retire) before ANY follower wait below: two batches leading disjoint
  // cells and following each other's can therefore never deadlock.
  for (const std::size_t j : leaders) {
    Cell& c = cells[j];
    checker::BudgetSpec budget;
    budget.max_nodes = c.key.max_nodes;
    budget.timeout_ms = c.key.timeout_ms;
    try {
      c.result = solve(*c.canon_test, c.key.model, budget, c.backend);
      c.have = true;
    } catch (const ProtocolError& e) {
      c.failed = true;
      c.error_type = e.type();
      c.error = e.what();
    } catch (const std::exception& e) {
      c.failed = true;
      c.error_type = "internal";
      c.error = e.what();
    }
  }
  // Publish to the cache BEFORE retiring the flights: a request arriving
  // in between hits the cache instead of opening a duplicate solve window.
  {
    std::vector<VerdictCache::BatchCell> puts;
    for (const std::size_t j : leaders) {
      if (!cells[j].have) continue;
      VerdictCache::BatchCell bc;
      bc.key = &cells[j].key;
      bc.hash = cells[j].hash;
      bc.value = &cells[j].result;
      puts.push_back(bc);
    }
    if (!puts.empty()) cache_.put_many(puts);
  }
  if (!leaders.empty()) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      for (const std::size_t j : leaders) inflight_.erase(cells[j].flight_id);
    }
    for (const std::size_t j : leaders) {
      Cell& c = cells[j];
      {
        std::lock_guard<std::mutex> lock(c.flight->mu);
        if (c.failed) {
          c.flight->failed = true;
          c.flight->error = c.error;
        } else {
          c.flight->result = c.result;
        }
        c.flight->done = true;
      }
      c.flight->cv.notify_all();
    }
  }
  for (const std::size_t j : followers) {
    Cell& c = cells[j];
    std::unique_lock<std::mutex> lock(c.flight->mu);
    c.flight->cv.wait(lock, [&] { return c.flight->done; });
    if (c.flight->failed) {
      c.failed = true;
      c.error_type = "internal";
      c.error = c.flight->error;
    } else {
      c.result = c.flight->result;
      c.have = true;
    }
  }

  // Pass 5 — assemble per-request responses in request order, remapping
  // witnesses from canonical coordinates and re-verifying each remap.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ReqInfo& ri = info[i];
    if (ri.failed) continue;
    CheckResponse resp;
    bool failed = false;
    for (std::size_t m = 0; m < ri.models.size(); ++m) {
      Cell& c = cells[ri.cells[m]];
      if (c.failed) {
        outcomes[i].ok = false;
        outcomes[i].error_type =
            c.error_type.empty() ? "internal" : c.error_type;
        outcomes[i].error_message = c.error;
        failed = true;
        break;
      }
      std::string source;
      if (c.how == How::Cache) {
        source = "cache";
      } else if (c.how == How::Follow) {
        source = "dedup";
      } else {
        // The leader's solve serves its first occurrence; further
        // occurrences in the same batch rode along — that's a dedup.
        source = c.first_occurrence_taken ? "dedup" : "solved";
        c.first_occurrence_taken = true;
      }
      if (source == "cache") {
        hits.add();
      } else {
        misses.add();  // dedup was already counted at election time
      }
      ModelResult r;
      r.model = ri.models[m];
      r.verdict = to_string(c.result.status);
      r.source = source;
      r.witness_json = c.result.witness_json;
      r.note = c.result.note;
      if (!ri.canon.is_identity() && !c.result.witness_json.empty()) {
        // The cached certificate proves the canonical clone; transport it
        // along the inverse isomorphism and re-verify against the program
        // the client actually sent — a remap bug must surface as
        // `internal`, never ship as a wrong certificate.
        try {
          const checker::Witness remapped =
              litmus::remap_witness_from_canonical(
                  checker::witness_from_json(c.result.witness_json), ri.canon);
          if (const auto err = checker::verify_witness(ri.test.hist, remapped)) {
            throw ProtocolError("internal",
                                "remapped witness failed independent "
                                "re-verification: " +
                                    *err);
          }
          r.witness_json = checker::to_json(remapped);
        } catch (const ProtocolError& e) {
          outcomes[i].ok = false;
          outcomes[i].error_type = e.type();
          outcomes[i].error_message = e.what();
          failed = true;
          break;
        } catch (const std::exception& e) {
          outcomes[i].ok = false;
          outcomes[i].error_type = "internal";
          outcomes[i].error_message = e.what();
          failed = true;
          break;
        }
      }
      if (source == "cache") {
        ++resp.cache_hits;
        if (!ri.canon.is_identity()) canonical_hits.add();
      } else if (source == "dedup") {
        ++resp.dedup_waits;
      } else {
        ++resp.solved;
      }
      resp.results.push_back(std::move(r));
    }
    if (failed) continue;
    resp.latency_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    latency.observe(resp.latency_us);
    outcomes[i].ok = true;
    outcomes[i].response = std::move(resp);
  }
  return outcomes;
}

CheckResponse CheckService::handle_check(const CheckRequest& req) {
  const std::vector<const CheckRequest*> one{&req};
  std::vector<Outcome> out = handle_checks(one);
  Outcome& oc = out[0];
  if (!oc.ok) throw ProtocolError(oc.error_type, oc.error_message);
  return std::move(oc.response);
}

CheckService::PreloadReport CheckService::preload(
    const std::string& corpus_dir) {
  PreloadReport report;
  std::error_code ec;
  if (!fs::is_directory(corpus_dir, ec)) {
    throw InvalidInput("preload: not a directory: " + corpus_dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".litmus") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  const checker::BudgetSpec budget = effective_budget({});
  const std::vector<std::string> names = models::model_names();
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    std::vector<litmus::LitmusTest> tests;
    try {
      if (!in || !(text << in.rdbuf())) throw InvalidInput("unreadable");
      tests = litmus::parse_suite(text.str());
    } catch (const InvalidInput&) {
      ++report.skipped;  // one bad file never aborts the warm-up
      continue;
    }
    ++report.files;
    for (const litmus::LitmusTest& test : tests) {
      // Warm the canonical clone — the same entry handle_checks will look
      // up for any isomorphic variant of this corpus program.
      const litmus::Canonical canon = litmus::canonicalize(test);
      CacheKey key;
      key.program = canon.key;
      key.max_nodes = budget.max_nodes;
      key.timeout_ms = budget.timeout_ms;
      for (const std::string& name : names) {
        key.model = name;
        if (cache_.get(key).has_value()) {
          ++report.skipped;  // already warm (e.g. from the persistent layer)
          continue;
        }
        cache_.put(key,
                   solve(canon.test, name, budget, checker::Backend::Search));
        ++report.loaded;
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Server: connection and event-loop state
// ---------------------------------------------------------------------------

/// One accepted, non-blocking socket and its state machine.
///
/// Ownership/locking model:
///   * The read side (`rbuf`, `discarding`) is touched ONLY by the owning
///     io thread — no lock.
///   * Everything else is guarded by `mu`, shared between the io thread
///     (flush on EPOLLOUT, retire) and workers (response writes, strand
///     continuation).
///   * The fd is registered/closed only by the owning io thread; workers
///     observe `closed` under `mu` before touching it.
/// Per-connection trace-stream state (docs/TRACES.md).  Owned by the
/// connection, but touched exclusively by the worker currently holding the
/// connection's strand — the strand's one-worker-at-a-time FIFO is what
/// orders begin/ops/end chunks, so no extra lock is needed.
struct TraceSession {
  /// An op line longer than this with no '\n' in sight is a protocol
  /// error, not a partial line — canonical op lines are < 100 bytes, and
  /// the cap keeps a newline-less client from growing `partial` forever.
  static constexpr std::size_t kMaxOpLine = 4096;

  std::unique_ptr<trace::StreamingChecker> checker;
  /// Verdict lines completed since the last chunk response.
  std::vector<std::string> pending;
  /// Trailing bytes of the last ops chunk with no terminating '\n' yet:
  /// chunk boundaries are arbitrary byte splits of the op stream, so a
  /// line may straddle chunks; it is parsed only once the next chunk (or
  /// the end phase) completes it.
  std::string partial;
  /// Physical line number within the client's trace (header = line 1).
  std::uint64_t line_no = 1;
};

struct Server::Connection
    : std::enable_shared_from_this<Server::Connection> {
  int fd = -1;
  int epfd = -1;              ///< owning loop's epoll fd
  std::size_t loop_index = 0;

  // Reader-side state — owning io thread only.
  std::string rbuf;
  bool discarding = false;  ///< oversized frame: skip to its terminator

  std::mutex mu;
  std::string out;          ///< response bytes not yet accepted by the socket
  std::size_t out_off = 0;  ///< flushed prefix of `out`
  std::deque<Batch> batches;   ///< parsed, unprocessed batches (strand FIFO)
  bool strand_active = false;  ///< a worker currently owns this strand
  bool peer_eof = false;       ///< read side saw EOF (responses still flush)
  bool dead = false;           ///< write error: the peer is gone
  bool closed = false;
  bool shed = false;  ///< picked as the EMFILE victim; owner loop confirms
  bool want_read = true;
  bool want_write = false;
  std::uint32_t reg_events = 0;  ///< mask currently registered with epoll

  /// Strand-owned (see TraceSession): null when no trace stream is open.
  std::unique_ptr<TraceSession> trace_session;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Owning io thread, `mu` held: deregister and close the socket.  The
  /// object stays alive (and inert) until the conns list drops it.
  void close_locked() noexcept {
    if (closed) return;
    closed = true;
    if (fd >= 0) {
      ::epoll_ctl(epfd, EPOLL_CTL_DEL, fd, nullptr);
      ::close(fd);
      fd = -1;
    }
    open_conns_gauge().add(-1);
  }
};

/// One epoll event loop: an epoll instance, an eventfd for cross-thread
/// wakeups (drain, worker flush nudges), and the connections it owns.
struct Server::IoLoop {
  std::size_t index = 0;
  int epfd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mu;  ///< guards `conns` (adoption and shed scans cross threads)
  std::vector<std::shared_ptr<Connection>> conns;
  std::atomic<bool> reads_stopped{false};
  std::atomic<bool> flush_mode{false};
};

// ---------------------------------------------------------------------------
// Server: lifecycle
// ---------------------------------------------------------------------------

Server::Server(ServerOptions options, CheckService::Solver solver_override)
    : options_(std::move(options)),
      service_(options_.service, std::move(solver_override)) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    begin_drain();
    wait();
  } else if (drain_pipe_[0] >= 0) {
    ::close(drain_pipe_[0]);
    ::close(drain_pipe_[1]);
  }
}

void Server::start() {
  if (options_.node_id.empty()) {
    options_.node_id = "node-" + std::to_string(::getpid());
  }
  if (::pipe(drain_pipe_) != 0) throw_errno("pipe");
  if (options_.use_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  } else {
    if (options_.unix_socket.empty()) {
      throw InvalidInput("server needs a unix socket path or --tcp");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof addr.sun_path) {
      throw InvalidInput("unix socket path too long: " + options_.unix_socket);
    }
    std::memcpy(addr.sun_path, options_.unix_socket.c_str(),
                options_.unix_socket.size() + 1);
    ::unlink(options_.unix_socket.c_str());  // stale socket from a crash
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind " + options_.unix_socket);
    }
  }
  if (::listen(listen_fd_, 256) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen");
  }
  // The listener must be non-blocking: accept() is driven by level-
  // triggered EPOLLIN on loop 0 and must never park the event loop.
  const int lflags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, lflags | O_NONBLOCK);

  const unsigned nio = std::max(1u, options_.io_threads);
  loops_.reserve(nio);
  for (unsigned i = 0; i < nio; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->index = i;
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epfd < 0) throw_errno("epoll_create1");
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) throw_errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = loop.get();  // wake tag: the loop itself
    if (::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wake_fd, &ev) != 0) {
      throw_errno("epoll_ctl wakeup");
    }
    loops_.push_back(std::move(loop));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = this;  // listener tag: the server itself
    if (::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      throw_errno("epoll_ctl listener");
    }
  }

  const unsigned workers = std::max(1u, options_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread(&Server::io_loop_main, this, i);
  }
  started_.store(true, std::memory_order_release);
}

void Server::begin_drain() noexcept {
  if (drain_requested_.exchange(true, std::memory_order_acq_rel)) return;
  // One byte through a pre-opened pipe (for wait()), one eventfd tick per
  // loop (to pop them out of epoll_wait): plain write() calls, so a
  // SIGINT/SIGTERM handler may call this directly.
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(drain_pipe_[1], &byte, 1);
  if (started_.load(std::memory_order_acquire)) {
    const std::uint64_t one = 1;
    for (const auto& loop : loops_) {
      n = ::write(loop->wake_fd, &one, sizeof one);
    }
  }
}

void Server::wake_loop(std::size_t index) noexcept {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(loops_[index]->wake_fd, &one, sizeof one);
}

void Server::wait() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (drained_) return;
  }
  if (!draining()) {
    // poll (not read) so concurrent waiters all see the signal byte.
    pollfd p{drain_pipe_[0], POLLIN, 0};
    while (::poll(&p, 1, -1) < 0 && errno == EINTR) {
    }
  }
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!drained_) {
    do_drain();
    drained_ = true;
  }
}

void Server::do_drain() {
  // 1. Every loop observes the drain flag (begin_drain woke them all),
  //    deregisters the listener (loop 0), half-closes every connection's
  //    read side, and acknowledges.  Once acknowledged, that loop can
  //    never create another batch.
  for (const auto& loop : loops_) {
    while (!loop->reads_stopped.load(std::memory_order_acquire)) {
      wake_loop(loop->index);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // 2. Finish every admitted request: workers exit only once the strand
  //    queue is empty (a worker with a non-empty connection re-enqueues it
  //    before returning to the queue, so no batch is stranded).
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_should_exit_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // 3. Flush mode: every response has been produced; the loops push the
  //    remaining bytes out and close the sockets.
  for (const auto& loop : loops_) {
    loop->flush_mode.store(true, std::memory_order_release);
    wake_loop(loop->index);
  }
  for (const auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (const auto& loop : loops_) {
    ::close(loop->wake_fd);
    ::close(loop->epfd);
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.use_tcp && !options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
  if (drain_pipe_[0] >= 0) {
    ::close(drain_pipe_[0]);
    ::close(drain_pipe_[1]);
    drain_pipe_[0] = drain_pipe_[1] = -1;
  }
}

// ---------------------------------------------------------------------------
// Server: event loop
// ---------------------------------------------------------------------------

void Server::io_loop_main(std::size_t index) {
  static auto& wakeups =
      metrics::Registry::global().counter("service.epoll_wakeups");
  IoLoop& loop = *loops_[index];
  std::vector<epoll_event> events(256);
  bool reads_stopped = false;
  for (;;) {
    const bool flushing = loop.flush_mode.load(std::memory_order_acquire);
    const int n = ::epoll_wait(loop.epfd, events.data(),
                               static_cast<int>(events.size()),
                               flushing ? 100 : -1);
    if (n < 0 && errno != EINTR) return;  // epoll fd gone: bail out
    if (n > 0) wakeups.add();
    for (int i = 0; i < n; ++i) {
      void* tag = events[i].data.ptr;
      if (tag == &loop) {
        std::uint64_t v;
        while (::read(loop.wake_fd, &v, sizeof v) > 0) {
        }
        continue;
      }
      if (tag == this) {
        handle_accept(loop);
        continue;
      }
      auto* cp = static_cast<Connection*>(tag);
      // `closed` is only ever set by this thread, so the unlocked read is
      // safe; it guards against later events for an already-shed socket
      // in this same events array (the object outlives the array — conns
      // are only erased in retire_eligible, after the array is done).
      if (cp->closed) continue;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        handle_readable(loop, cp->shared_from_this());
      }
      if (cp->closed) continue;
      if (events[i].events & EPOLLOUT) {
        handle_writable(cp->shared_from_this());
      }
    }
    if (draining() && !reads_stopped) {
      stop_reads(loop);
      reads_stopped = true;
      loop.reads_stopped.store(true, std::memory_order_release);
    }
    retire_eligible(loop);
    if (loop.flush_mode.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(loop.mu);
      if (loop.conns.empty()) return;
    }
  }
}

void Server::handle_accept(IoLoop& loop) {
  static auto& connections =
      metrics::Registry::global().counter("service.connections");
  static auto& accept_errors =
      metrics::Registry::global().counter("service.accept_errors");
  bool shed_this_event = false;
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (draining()) return;
      accept_errors.add();
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: shed one idle connection (no admitted work,
        // nothing buffered) and retry immediately instead of going deaf.
        // At most one shed per listener event: with a full fd table the
        // kernel reports EMFILE before it looks at the backlog, so once
        // the pending queue is drained the would-be EAGAIN surfaces as a
        // second EMFILE — shedding again would evict an idle connection
        // for no waiting client.  If connections really are still
        // queued, level-triggered epoll re-reports the listener and the
        // next event sheds the next victim.
        if (shed_this_event) return;
        if (shed_one_idle_connection(loop)) {
          shed_this_event = true;
          continue;
        }
        // Nothing sheddable right now: brief backoff so the level-
        // triggered listener doesn't busy-spin the loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return;
      }
      if (errno == ECONNABORTED || errno == EPROTO) continue;  // per-conn
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return;
    }
    if (draining()) {
      ::close(fd);
      continue;
    }
    connections.add();
    open_conns_gauge().add(1);
    adopt_connection(fd);
  }
}

void Server::adopt_connection(int fd) {
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  IoLoop& target = *loops_[next_loop_++ % loops_.size()];
  conn->epfd = target.epfd;
  conn->loop_index = target.index;
  {
    std::lock_guard<std::mutex> lock(target.mu);
    target.conns.push_back(conn);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn.get();
  conn->reg_events = EPOLLIN;
  if (::epoll_ctl(target.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard<std::mutex> lock(target.mu);
    std::lock_guard<std::mutex> clock(conn->mu);
    conn->close_locked();
    target.conns.erase(
        std::remove(target.conns.begin(), target.conns.end(), conn),
        target.conns.end());
  }
}

bool Server::shed_one_idle_connection(IoLoop& self) {
  const auto idle_locked = [](const Connection& c) {
    return !c.closed && !c.shed && !c.dead && !c.peer_eof &&
           !c.strand_active && c.batches.empty() && c.out_off >= c.out.size();
  };
  // Own loop first: this thread owns these sockets, so the victim can be
  // closed right here and the freed fd used by the accept() retry.
  {
    std::lock_guard<std::mutex> lock(self.mu);
    for (const auto& c : self.conns) {
      std::lock_guard<std::mutex> clock(c->mu);
      if (idle_locked(*c) && c->rbuf.empty()) {
        c->close_locked();  // erased by retire_eligible after this array
        return true;
      }
    }
  }
  // Other loops: flag a victim and wake its owner; the fd frees
  // asynchronously, so the caller backs off instead of retrying.
  for (const auto& lp : loops_) {
    if (lp.get() == &self) continue;
    std::lock_guard<std::mutex> lock(lp->mu);
    for (const auto& c : lp->conns) {
      std::lock_guard<std::mutex> clock(c->mu);
      if (idle_locked(*c)) {  // rbuf is owner-thread state: owner re-checks
        c->shed = true;
        wake_loop(lp->index);
        return false;
      }
    }
  }
  return false;
}

void Server::stop_reads(IoLoop& loop) {
  if (loop.index == 0 && listen_fd_ >= 0) {
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  }
  std::lock_guard<std::mutex> lock(loop.mu);
  for (const auto& c : loop.conns) {
    std::lock_guard<std::mutex> clock(c->mu);
    if (c->closed) continue;
    ::shutdown(c->fd, SHUT_RD);
    c->rbuf.clear();
    c->discarding = false;
    c->want_read = false;
    update_interest_locked(*c);
  }
}

void Server::retire_eligible(IoLoop& loop) {
  const bool flushing = loop.flush_mode.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(loop.mu);
  auto it = loop.conns.begin();
  while (it != loop.conns.end()) {
    Connection& c = **it;
    bool erase_now;
    {
      std::lock_guard<std::mutex> clock(c.mu);
      if (!c.closed) {
        if (flushing) (void)try_flush_locked(c);
        const bool idle = !c.strand_active && c.batches.empty();
        const bool flushed = c.out_off >= c.out.size();
        // The shed flag was set by another loop's accept path from
        // lock-guarded state only; this (owning) thread is the arbiter —
        // veto if the connection has become active since.
        if (c.shed && !(idle && flushed && c.rbuf.empty() && !c.peer_eof)) {
          c.shed = false;
        }
        const bool kill =
            idle && (c.dead || ((c.peer_eof || c.shed || flushing) && flushed));
        if (kill) c.close_locked();
      }
      erase_now = c.closed;
    }
    if (erase_now) {
      it = loop.conns.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Server: read path (io threads)
// ---------------------------------------------------------------------------

void Server::handle_readable(IoLoop& loop,
                             const std::shared_ptr<Connection>& conn) {
  (void)loop;
  // Per-event drain cap: a firehose client cannot monopolize the loop or
  // grow rbuf unboundedly in one event; level-triggered epoll re-arms for
  // the remainder.
  constexpr std::size_t kChunk = 64 * 1024;
  constexpr std::size_t kEventCap = 256 * 1024;
  std::string& rbuf = conn->rbuf;
  std::size_t drained = 0;
  bool eof = false;
  while (drained < kEventCap) {
    const std::size_t old = rbuf.size();
    rbuf.resize(old + kChunk);
    const ssize_t n = ::recv(conn->fd, rbuf.data() + old, kChunk, 0);
    if (n < 0) {
      rbuf.resize(old);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;  // hard error: treat like EOF; pending responses flush
      break;
    }
    rbuf.resize(old + static_cast<std::size_t>(n));
    if (n == 0) {
      eof = true;
      break;
    }
    drained += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < kChunk) break;  // socket drained
  }
  if (drained > 0) scan_frames(conn);
  if (eof) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->peer_eof = true;
    conn->want_read = false;
    update_interest_locked(*conn);
    // Eligible-for-retire decision happens in the post-events sweep.
  }
}

void Server::scan_frames(const std::shared_ptr<Connection>& conn) {
  std::string& buf = conn->rbuf;
  Batch batch;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t nl = buf.find('\n', pos);
    if (nl == std::string::npos) break;
    if (conn->discarding) {
      // Tail of an oversized frame: drop through its terminator.
      conn->discarding = false;
      pos = nl + 1;
      continue;
    }
    const std::string_view frame(buf.data() + pos, nl - pos);
    pos = nl + 1;
    if (!frame.empty()) frame_to_items(conn, frame, batch);
  }
  if (conn->discarding) {
    buf.clear();  // everything unconsumed belongs to the oversized frame
  } else {
    if (pos > 0) buf.erase(0, pos);  // keep the partial frame for next event
    if (buf.size() > options_.max_frame_bytes) {
      // A frame this large with no terminator in sight would otherwise
      // grow server memory without bound.  Answer once, drop the buffered
      // bytes, and skip the rest of the frame — the typed-error-never-
      // disconnect contract holds even here.
      BatchItem item;
      item.preformatted = true;
      item.text = serialize_error(
          "", "parse_error",
          "frame exceeds " + std::to_string(options_.max_frame_bytes) +
              " bytes without a newline; discarded");
      batch.push_back(std::move(item));
      buf.clear();
      buf.shrink_to_fit();
      conn->discarding = true;
    }
  }
  finish_event_batch(conn, std::move(batch));
}

void Server::frame_to_items(const std::shared_ptr<Connection>& conn,
                            std::string_view frame, Batch& batch) {
  (void)conn;
  static auto& rejected =
      metrics::Registry::global().counter("service.rejected");
  std::vector<FrameItem> items;
  try {
    items = parse_frame(frame);
  } catch (const ProtocolError& e) {
    // A malformed frame gets a typed error, never a disconnect.
    BatchItem item;
    item.preformatted = true;
    item.text = serialize_error(e.id(), e.type(), e.what());
    batch.push_back(std::move(item));
    return;
  }
  for (FrameItem& fi : items) {
    BatchItem item;
    if (!fi.ok) {
      item.preformatted = true;
      item.text =
          serialize_error(fi.error_id, fi.error_type, fi.error_message);
      batch.push_back(std::move(item));
      continue;
    }
    Request& req = fi.request;
    switch (req.op) {
      case Request::Op::Ping:
        item.preformatted = true;
        item.text = serialize_pong(req.id, options_.node_id);
        break;
      case Request::Op::Stats:
        item.preformatted = true;
        item.text = serialize_stats(req.id, options_.node_id);
        break;
      case Request::Op::Shutdown:
        // Flag first (atomic + fd writes, no teardown), then ack: a client
        // that has read the ack must observe the server as draining.
        begin_drain();
        item.preformatted = true;
        item.text = serialize_drain_ack(req.id);
        break;
      case Request::Op::Check:
      case Request::Op::Trace: {
        if (draining()) {
          item.preformatted = true;
          item.text = serialize_error(req.id, "draining",
                                      "server is draining; not admitting");
          break;
        }
        // Per-request admission: every element of a pipelined burst or
        // batch frame is accounted individually, so a giant batch can
        // never bypass the bounded-admission guarantee.  Overflow is
        // rejected per request, id echoed, in response position.  Trace
        // chunks count exactly like checks — streaming inherits the
        // bounded-admission and drain contracts unchanged.
        std::size_t cur = admitted_.load(std::memory_order_relaxed);
        bool admitted = false;
        while (cur < options_.queue_capacity) {
          if (admitted_.compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_relaxed)) {
            admitted = true;
            break;
          }
        }
        if (!admitted) {
          rejected.add();
          item.preformatted = true;
          item.text = serialize_error(
              req.id, "overloaded",
              "admission queue full (capacity " +
                  std::to_string(options_.queue_capacity) + "); retry later");
          break;
        }
        queue_depth_gauge().set(
            static_cast<std::int64_t>(admitted_.load(std::memory_order_relaxed)));
        item.request = std::move(req);
        break;
      }
    }
    batch.push_back(std::move(item));
  }
}

void Server::finish_event_batch(const std::shared_ptr<Connection>& conn,
                                Batch&& batch) {
  static auto& batch_size =
      metrics::Registry::global().histogram("service.batch_size");
  if (batch.empty()) return;
  std::size_t checks = 0;
  for (const BatchItem& item : batch) {
    if (!item.preformatted) ++checks;
  }
  bool need_enqueue = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (checks == 0 && conn->batches.empty() && !conn->strand_active) {
      // Control-only fast path: nothing is pending on this connection, so
      // ordering is trivial — write straight from the io thread.
      if (!conn->closed && !conn->dead) {
        for (BatchItem& item : batch) conn->out += item.text;
        (void)try_flush_locked(*conn);
      }
      return;
    }
    if (checks > 0) batch_size.observe(checks);
    conn->batches.push_back(std::move(batch));
    if (!conn->strand_active) {
      conn->strand_active = true;
      need_enqueue = true;
    }
  }
  if (need_enqueue) enqueue_strand(conn);
}

// ---------------------------------------------------------------------------
// Server: write path (shared)
// ---------------------------------------------------------------------------

bool Server::try_flush_locked(Connection& conn) {
  if (conn.closed || conn.fd < 0 || conn.dead) {
    conn.out.clear();
    conn.out_off = 0;
    return true;
  }
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          update_interest_locked(conn);
        }
        return false;  // the owning loop finishes this on EPOLLOUT
      }
      conn.dead = true;  // client went away; its answers are undeliverable
      break;
    }
    conn.out_off += static_cast<std::size_t>(n);
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    update_interest_locked(conn);
  }
  return true;
}

void Server::update_interest_locked(Connection& conn) {
  if (conn.closed || conn.fd < 0) return;
  std::uint32_t ev = 0;
  if (conn.want_read) ev |= EPOLLIN;
  if (conn.want_write) ev |= EPOLLOUT;
  if (ev == conn.reg_events) return;
  epoll_event e{};
  e.events = ev;
  e.data.ptr = &conn;
  if (::epoll_ctl(conn.epfd, EPOLL_CTL_MOD, conn.fd, &e) == 0) {
    conn.reg_events = ev;
  }
}

void Server::conn_write(const std::shared_ptr<Connection>& conn,
                        std::string_view data) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed || conn->dead) return;
  conn->out.append(data);
  (void)try_flush_locked(*conn);
}

void Server::handle_writable(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed) return;
  (void)try_flush_locked(*conn);
}

// ---------------------------------------------------------------------------
// Server: worker side
// ---------------------------------------------------------------------------

void Server::enqueue_strand(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    strand_queue_.push_back(conn);
  }
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return !strand_queue_.empty() || workers_should_exit_;
      });
      if (strand_queue_.empty()) return;  // drained: only with an empty queue
      conn = std::move(strand_queue_.front());
      strand_queue_.pop_front();
    }
    process_strand(conn);
  }
}

std::string Server::handle_trace(Connection& conn, const Request& req) {
  // Any protocol-level failure destroys the session: a stream whose bytes
  // the server refused cannot be meaningfully continued.
  const auto fail = [&](std::string_view message) {
    conn.trace_session.reset();
    return serialize_error(req.id, "bad_request", message);
  };
  try {
    switch (req.trace.phase) {
      case TraceRequest::Phase::Begin: {
        if (conn.trace_session) {
          return fail(
              "trace session already active on this connection (end it "
              "first)");
        }
        const trace::TraceHeader header =
            trace::parse_header_line(req.trace.header_line);
        trace::StreamOptions opts;
        if (!req.trace.model.empty()) opts.model = req.trace.model;
        if (req.trace.window != 0) {
          opts.window_ops = static_cast<std::size_t>(req.trace.window);
        }
        opts.window_budget = service_.effective_budget(opts.window_budget);
        auto session = std::make_unique<TraceSession>();
        auto* pending = &session->pending;
        session->checker =
            std::make_unique<trace::StreamingChecker>(header, opts);
        session->checker->set_verdict_sink(
            [pending](const trace::WindowVerdict& v) {
              pending->push_back(trace::verdict_line(v));
            });
        conn.trace_session = std::move(session);
        return serialize_trace_response(req.id, {}, "");
      }
      case TraceRequest::Phase::Ops: {
        if (!conn.trace_session) {
          return fail("no active trace session (send phase \"begin\" first)");
        }
        TraceSession& s = *conn.trace_session;
        s.partial += req.trace.lines;
        std::string_view rest = s.partial;
        std::size_t consumed = 0;
        for (std::size_t nl = rest.find('\n'); nl != std::string_view::npos;
             nl = rest.find('\n')) {
          const std::string_view line = rest.substr(0, nl);
          rest.remove_prefix(nl + 1);
          consumed += nl + 1;
          ++s.line_no;
          if (!line.empty()) {
            s.checker->feed(trace::parse_op_line(line, s.line_no));
          }
        }
        s.partial.erase(0, consumed);
        if (s.partial.size() > TraceSession::kMaxOpLine) {
          return fail("trace op line exceeds " +
                      std::to_string(TraceSession::kMaxOpLine) +
                      " bytes with no newline (line " +
                      std::to_string(s.line_no + 1) + ")");
        }
        std::vector<std::string> verdicts = std::move(s.pending);
        s.pending.clear();
        return serialize_trace_response(req.id, verdicts, "");
      }
      case TraceRequest::Phase::End: {
        if (!conn.trace_session) {
          return fail("no active trace session (send phase \"begin\" first)");
        }
        TraceSession& s = *conn.trace_session;
        if (!s.partial.empty()) {
          // The stream ended, so the buffered fragment IS the last line
          // (a final op line need not be newline-terminated).
          s.checker->feed(trace::parse_op_line(s.partial, ++s.line_no));
          s.partial.clear();
        }
        const trace::StreamSummary summary = s.checker->finish();
        const std::string out = serialize_trace_response(
            req.id, s.pending, summary.to_json_line());
        conn.trace_session.reset();
        return out;
      }
    }
    return fail("unknown trace phase");
  } catch (const InvalidInput& e) {
    return fail(e.what());
  } catch (const std::exception& e) {
    conn.trace_session.reset();
    return serialize_error(req.id, "internal", e.what());
  }
}

void Server::process_strand(const std::shared_ptr<Connection>& conn) {
  Batch batch;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    batch = std::move(conn->batches.front());
    conn->batches.pop_front();
  }
  std::vector<const CheckRequest*> checks;
  std::size_t picked_up = 0;
  for (const BatchItem& item : batch) {
    if (item.preformatted) continue;
    ++picked_up;
    if (item.request.op == Request::Op::Check) {
      checks.push_back(&item.request.check);
    }
  }
  if (picked_up != 0) {
    // Picked up: these requests no longer occupy admission capacity (the
    // PR-4 contract — capacity bounds WAITING requests).
    admitted_.fetch_sub(picked_up, std::memory_order_relaxed);
    queue_depth_gauge().set(
        static_cast<std::int64_t>(admitted_.load(std::memory_order_relaxed)));
  }
  std::vector<CheckService::Outcome> outcomes;
  if (!checks.empty()) {
    try {
      outcomes = service_.handle_checks(checks);
    } catch (const std::exception& e) {
      outcomes.assign(checks.size(), {});
      for (CheckService::Outcome& oc : outcomes) {
        oc.ok = false;
        oc.error_type = "internal";
        oc.error_message = e.what();
      }
    }
  }
  // One gathered write for the whole batch, responses in request order.
  std::string out;
  std::size_t ci = 0;
  for (BatchItem& item : batch) {
    if (item.preformatted) {
      out += item.text;
      continue;
    }
    if (item.request.op == Request::Op::Trace) {
      out += handle_trace(*conn, item.request);
      continue;
    }
    CheckService::Outcome& oc = outcomes[ci++];
    if (oc.ok) {
      oc.response.id = item.request.id;
      out += serialize_check_response(oc.response);
    } else {
      out += serialize_error(item.request.id, oc.error_type, oc.error_message);
    }
  }
  conn_write(conn, out);

  bool requeue = false;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->batches.empty()) {
      requeue = true;  // strand stays active; keep FIFO order
    } else {
      conn->strand_active = false;
      if (conn->peer_eof || conn->dead) wake = true;  // owner may retire it
    }
  }
  if (requeue) enqueue_strand(conn);
  if (wake) wake_loop(conn->loop_index);
}

}  // namespace ssm::service
