#include "service/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/metrics.hpp"
#include "common/types.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "models/registry.hpp"

namespace ssm::service {

namespace fs = std::filesystem;
namespace metrics = common::metrics;

namespace {

metrics::Gauge& queue_depth_gauge() {
  static auto& g = metrics::Registry::global().gauge("service.queue_depth");
  return g;
}

metrics::Gauge& open_conns_gauge() {
  static auto& g =
      metrics::Registry::global().gauge("service.open_connections");
  return g;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw InvalidInput(what + ": " + std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckService
// ---------------------------------------------------------------------------

CheckService::CheckService(Options options, Solver solver_override)
    : options_(std::move(options)),
      solver_(std::move(solver_override)),
      cache_(options_.cache) {}

checker::BudgetSpec CheckService::effective_budget(
    checker::BudgetSpec req) const noexcept {
  const auto clamp = [](std::uint64_t r, std::uint64_t cap) {
    if (cap == 0) return r;        // no server cap on this axis
    if (r == 0 || r > cap) return cap;  // unset or over-ask inherits the cap
    return r;
  };
  req.max_nodes = clamp(req.max_nodes, options_.default_budget.max_nodes);
  req.timeout_ms = clamp(req.timeout_ms, options_.default_budget.timeout_ms);
  return req;
}

CachedVerdict CheckService::solve(const litmus::LitmusTest& test,
                                  const std::string& model,
                                  const checker::BudgetSpec& budget) {
  static auto& solve_us =
      metrics::Registry::global().histogram("service.solve_us");
  const auto start = std::chrono::steady_clock::now();
  if (solver_) return solver_(test, model, budget);
  const auto m = models::make_model(model);
  checker::Verdict v;
  if (budget.unlimited()) {
    v = m->check(test.hist);
  } else {
    checker::SearchBudget b(budget);
    const checker::BudgetScope scope(&b);
    v = m->check(test.hist);
  }
  CachedVerdict out;
  if (v.inconclusive) {
    out.status = CachedVerdict::Status::Inconclusive;
    out.note = v.note;
  } else if (v.allowed) {
    out.status = CachedVerdict::Status::Allowed;
    // Certify before caching or shipping: a witness the independent
    // verifier rejects is a checker bug and must surface as `internal`,
    // never be served (same policy as the CLI's exit 3).
    const auto w = checker::witness_from_verdict(test.hist, m->name(), v);
    if (const auto err = checker::verify_witness(test.hist, w)) {
      throw ProtocolError(
          "internal", "witness failed independent re-verification: " + *err);
    }
    out.witness_json = checker::to_json(w);
  } else {
    out.status = CachedVerdict::Status::Forbidden;
  }
  solve_us.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return out;
}

CachedVerdict CheckService::lookup_or_solve(const CacheKey& key,
                                            const litmus::LitmusTest& test,
                                            bool no_cache,
                                            const checker::BudgetSpec& budget,
                                            std::string& source) {
  static auto& hits = metrics::Registry::global().counter("service.cache_hits");
  static auto& misses =
      metrics::Registry::global().counter("service.cache_misses");
  static auto& dedup =
      metrics::Registry::global().counter("service.inflight_dedup");
  if (!no_cache) {
    if (auto hit = cache_.get(key)) {
      hits.add();
      source = "cache";
      return *hit;
    }
  }
  misses.add();

  const std::string id = key_string(key);
  std::shared_ptr<Inflight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(id, flight);
      leader = true;
    } else {
      flight = it->second;
    }
  }

  if (!leader) {
    dedup.add();
    source = "dedup";
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->failed) throw ProtocolError("internal", flight->error);
    return flight->result;
  }

  source = "solved";
  CachedVerdict result;
  try {
    result = solve(test, key.model, budget);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(id);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->failed = true;
      flight->error = e.what();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }
  // Publish to the cache BEFORE retiring the flight: a request arriving in
  // between hits the cache instead of opening a duplicate solve window.
  cache_.put(key, result);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(id);
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = result;
    flight->done = true;
  }
  flight->cv.notify_all();
  return result;
}

CheckResponse CheckService::handle_check(const CheckRequest& req) {
  static auto& requests =
      metrics::Registry::global().counter("service.requests");
  static auto& latency =
      metrics::Registry::global().histogram("service.latency_us");
  const auto start = std::chrono::steady_clock::now();
  requests.add();

  std::vector<litmus::LitmusTest> tests;
  try {
    tests = litmus::parse_suite(req.program);
  } catch (const InvalidInput& e) {
    throw ProtocolError("bad_request", std::string("program: ") + e.what());
  }
  if (tests.size() != 1) {
    throw ProtocolError("bad_request",
                        "program must contain exactly one litmus test");
  }
  const litmus::LitmusTest& test = tests[0];

  std::vector<std::string> model_list = req.models;
  if (model_list.empty()) model_list = models::model_names();
  // Validate every model up front: a typo'd name rejects the whole request
  // before any solving starts (no partial answers).
  for (const std::string& name : model_list) {
    try {
      (void)models::make_model(name);
    } catch (const InvalidInput& e) {
      throw ProtocolError("bad_request", e.what());
    }
  }

  const checker::BudgetSpec budget = effective_budget(req.budget);
  // Solve (and cache) the canonical clone: every isomorphic variant of
  // this program maps to the same key, so permuted/renamed resubmissions
  // are cache hits.  Witnesses come back in canonical coordinates and are
  // remapped to the submitted program below.
  static auto& canonical_hits =
      metrics::Registry::global().counter("service.cache_canonical_hits");
  const litmus::Canonical canon = litmus::canonicalize(test);
  CacheKey key;
  key.program = canon.key;
  key.max_nodes = budget.max_nodes;
  key.timeout_ms = budget.timeout_ms;

  CheckResponse resp;
  for (const std::string& name : model_list) {
    key.model = name;
    std::string source;
    const CachedVerdict v =
        lookup_or_solve(key, canon.test, req.no_cache, budget, source);
    ModelResult r;
    r.model = name;
    r.verdict = to_string(v.status);
    r.source = source;
    r.witness_json = v.witness_json;
    r.note = v.note;
    if (!canon.is_identity() && !v.witness_json.empty()) {
      // The cached certificate proves the canonical clone; transport it
      // along the inverse isomorphism and re-verify against the program
      // the client actually sent — a remap bug must surface as `internal`,
      // never ship as a wrong certificate.
      const checker::Witness remapped = litmus::remap_witness_from_canonical(
          checker::witness_from_json(v.witness_json), canon);
      if (const auto err = checker::verify_witness(test.hist, remapped)) {
        throw ProtocolError(
            "internal",
            "remapped witness failed independent re-verification: " + *err);
      }
      r.witness_json = checker::to_json(remapped);
    }
    if (source == "cache") {
      ++resp.cache_hits;
      if (!canon.is_identity()) canonical_hits.add();
    } else if (source == "dedup") {
      ++resp.dedup_waits;
    } else {
      ++resp.solved;
    }
    resp.results.push_back(std::move(r));
  }
  resp.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  latency.observe(resp.latency_us);
  return resp;
}

CheckService::PreloadReport CheckService::preload(
    const std::string& corpus_dir) {
  PreloadReport report;
  std::error_code ec;
  if (!fs::is_directory(corpus_dir, ec)) {
    throw InvalidInput("preload: not a directory: " + corpus_dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(corpus_dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".litmus") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  const checker::BudgetSpec budget = effective_budget({});
  const std::vector<std::string> names = models::model_names();
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream text;
    std::vector<litmus::LitmusTest> tests;
    try {
      if (!in || !(text << in.rdbuf())) throw InvalidInput("unreadable");
      tests = litmus::parse_suite(text.str());
    } catch (const InvalidInput&) {
      ++report.skipped;  // one bad file never aborts the warm-up
      continue;
    }
    ++report.files;
    for (const litmus::LitmusTest& test : tests) {
      // Warm the canonical clone — the same entry handle_check will look
      // up for any isomorphic variant of this corpus program.
      const litmus::Canonical canon = litmus::canonicalize(test);
      CacheKey key;
      key.program = canon.key;
      key.max_nodes = budget.max_nodes;
      key.timeout_ms = budget.timeout_ms;
      for (const std::string& name : names) {
        key.model = name;
        if (cache_.get(key).has_value()) {
          ++report.skipped;  // already warm (e.g. from the persistent layer)
          continue;
        }
        cache_.put(key, solve(canon.test, name, budget));
        ++report.loaded;
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// One accepted socket.  Shared by its reader thread and every queued job,
/// so the fd stays open (and writable) until the last response referencing
/// it has been flushed — the mechanism behind "zero dropped in-flight".
struct Server::Connection {
  int fd = -1;
  std::mutex write_mu;
  bool dead = false;  // guarded by write_mu; set on the first write error

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_frame(std::string_view frame) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (dead) return;
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        dead = true;  // client went away; its answers are undeliverable
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  void shutdown_read() { ::shutdown(fd, SHUT_RD); }
};

Server::Server(ServerOptions options, CheckService::Solver solver_override)
    : options_(std::move(options)),
      service_(options_.service, std::move(solver_override)) {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    begin_drain();
    wait();
  } else if (drain_pipe_[0] >= 0) {
    ::close(drain_pipe_[0]);
    ::close(drain_pipe_[1]);
  }
}

void Server::start() {
  if (::pipe(drain_pipe_) != 0) throw_errno("pipe");
  if (options_.use_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind 127.0.0.1:" + std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  } else {
    if (options_.unix_socket.empty()) {
      throw InvalidInput("server needs a unix socket path or --tcp");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof addr.sun_path) {
      throw InvalidInput("unix socket path too long: " + options_.unix_socket);
    }
    std::memcpy(addr.sun_path, options_.unix_socket.c_str(),
                options_.unix_socket.size() + 1);
    ::unlink(options_.unix_socket.c_str());  // stale socket from a crash
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind " + options_.unix_socket);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("listen");
  }
  const unsigned workers = std::max(1u, options_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }
  accept_thread_ = std::thread(&Server::accept_loop, this);
  started_.store(true, std::memory_order_release);
}

void Server::begin_drain() noexcept {
  if (drain_requested_.exchange(true, std::memory_order_acq_rel)) return;
  // One byte through a pre-opened pipe: async-signal-safe, so a
  // SIGINT/SIGTERM handler may call this directly.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
}

void Server::wait() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (drained_) return;
  }
  if (!draining()) {
    // poll (not read) so concurrent waiters all see the signal byte.
    pollfd p{drain_pipe_[0], POLLIN, 0};
    while (::poll(&p, 1, -1) < 0 && errno == EINTR) {
    }
  }
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!drained_) {
    do_drain();
    drained_ = true;
  }
}

void Server::do_drain() {
  // 1. Stop accepting: half-close the listener (accept() unblocks with an
  //    error) and join the accept loop, so no new connection appears below.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // 2. Stop reading: half-close every connection's read side.  Frames
  //    already received keep flowing through the queue; readers see EOF
  //    and exit.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& c : conns_) c->shutdown_read();
  }
  // A reader joined here still runs its retire step; it finds its id gone
  // from the (swapped-out) map and leaves the handle to this join.
  std::unordered_map<std::uint64_t, std::thread> live;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    live.swap(reader_threads_);
    finished.swap(finished_readers_);
  }
  for (auto& [id, t] : live) t.join();
  for (std::thread& t : finished) t.join();
  // 3. Finish every admitted request: workers exit only once the queue is
  //    empty.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_should_exit_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // 4. Every response has been flushed; now the sockets may close.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (!options_.use_tcp && !options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
  if (drain_pipe_[0] >= 0) {
    ::close(drain_pipe_[0]);
    ::close(drain_pipe_[1]);
    drain_pipe_[0] = drain_pipe_[1] = -1;
  }
}

void Server::reap_finished_readers() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    finished.swap(finished_readers_);
  }
  for (std::thread& t : finished) t.join();
}

void Server::accept_loop() {
  static auto& connections =
      metrics::Registry::global().counter("service.connections");
  for (;;) {
    reap_finished_readers();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (draining()) return;  // listener was shut down by the drain
      // Transient failure — ECONNABORTED is routine under load, and
      // EMFILE/ENFILE mean fds are temporarily exhausted.  The listener
      // must survive all of these: back off briefly and keep accepting.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (draining()) {
      ::close(fd);
      continue;
    }
    connections.add();
    open_conns_gauge().add(1);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    const std::uint64_t id = next_reader_id_++;
    conns_.push_back(conn);
    // Emplaced under conns_mu_: a reader that exits instantly blocks on
    // the same mutex in retire_connection until its map entry exists.
    reader_threads_.emplace(id,
                            std::thread(&Server::reader_loop, this, conn, id));
  }
}

void Server::retire_connection(const std::shared_ptr<Connection>& conn,
                               std::uint64_t reader_id) {
  open_conns_gauge().add(-1);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
  const auto it = reader_threads_.find(reader_id);
  if (it != reader_threads_.end()) {
    finished_readers_.push_back(std::move(it->second));
    reader_threads_.erase(it);
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn,
                         std::uint64_t reader_id) {
  std::string buf;
  char chunk[4096];
  bool discarding = false;  // oversized frame: skip to its terminator
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or SHUT_RD from the drain
    if (discarding) {
      const char* nl = static_cast<const char*>(
          std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
      if (nl == nullptr) continue;  // still inside the oversized frame
      discarding = false;
      buf.assign(nl + 1, static_cast<std::size_t>(chunk + n - (nl + 1)));
    } else {
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    std::size_t pos;
    while ((pos = buf.find('\n')) != std::string::npos) {
      const std::string frame = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (!frame.empty()) handle_frame(conn, frame);
    }
    if (buf.size() > options_.max_frame_bytes) {
      // A frame this large with no terminator in sight would otherwise
      // grow server memory without bound.  Answer once, drop the buffered
      // bytes, and skip the rest of the frame — the typed-error-never-
      // disconnect contract holds even here.
      conn->write_frame(serialize_error(
          "", "parse_error",
          "frame exceeds " + std::to_string(options_.max_frame_bytes) +
              " bytes without a newline; discarded"));
      buf.clear();
      buf.shrink_to_fit();
      discarding = true;
    }
  }
  retire_connection(conn, reader_id);
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn,
                          std::string_view frame) {
  static auto& rejected =
      metrics::Registry::global().counter("service.rejected");
  Request req;
  try {
    req = parse_request(frame);
  } catch (const ProtocolError& e) {
    // A malformed frame gets a typed error, never a disconnect.
    conn->write_frame(serialize_error(e.id(), e.type(), e.what()));
    return;
  }
  switch (req.op) {
    case Request::Op::Ping:
      conn->write_frame(serialize_pong(req.id));
      return;
    case Request::Op::Stats:
      conn->write_frame(serialize_stats(req.id));
      return;
    case Request::Op::Shutdown:
      // Flag first (atomic + pipe write, no teardown), then ack: a client
      // that has read the ack must observe the server as draining.
      begin_drain();
      conn->write_frame(serialize_drain_ack(req.id));
      return;
    case Request::Op::Check:
      break;
  }
  if (draining()) {
    conn->write_frame(serialize_error(req.id, "draining",
                                      "server is draining; not admitting"));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      rejected.add();
      conn->write_frame(serialize_error(
          req.id, "overloaded",
          "admission queue full (capacity " +
              std::to_string(options_.queue_capacity) + "); retry later"));
      return;
    }
    queue_.push_back(Job{conn, std::move(req)});
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return !queue_.empty() || workers_should_exit_; });
      if (queue_.empty()) return;  // drained: exit only with an empty queue
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    }
    process(job);
  }
}

void Server::process(const Job& job) {
  try {
    CheckResponse resp = service_.handle_check(job.request.check);
    resp.id = job.request.id;
    job.conn->write_frame(serialize_check_response(resp));
  } catch (const ProtocolError& e) {
    job.conn->write_frame(serialize_error(job.request.id, e.type(), e.what()));
  } catch (const std::exception& e) {
    job.conn->write_frame(
        serialize_error(job.request.id, "internal", e.what()));
  }
}

}  // namespace ssm::service
