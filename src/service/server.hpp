// Check-as-a-service: a long-running, event-driven admission-check
// server (`ssm serve`, docs/SERVICE.md).
//
// Layering:
//
//   CheckService — the transport-free core.  handle_checks() answers a
//     BATCH of check requests in one call: every (program, model, budget)
//     cell in the batch is canonicalized, the distinct cells are looked up
//     through the verdict cache's shard-grouped multi-get (each of the 16
//     shard locks is taken at most once per batch, not once per cell),
//     single-flight leaders are elected once per batch under one
//     inflight-table lock, the leaders solve, the results publish through
//     one shard-grouped multi-put, and only then do followers of other
//     batches' flights get waited on — so two batches can never deadlock
//     on each other's cells.  Positive verdicts are re-checked through the
//     independent witness verifier before they are cached or shipped,
//     exactly as in the single-request path (which is now a batch of one).
//
//   Server — the socket front end, rebuilt as an epoll event loop.  A
//     small fixed set of I/O threads (ServerOptions::io_threads, default
//     1) owns every connection through level-triggered epoll on
//     non-blocking sockets — there are no per-connection reader threads,
//     so 1024 connections cost O(io_threads + workers) threads, not
//     O(connections).  Each connection is a little state machine: bytes
//     land in a reusable read buffer, complete NDJSON frames are scanned
//     incrementally and parsed as string_view slices (no per-frame substr
//     on the hot path), and ALL requests parsed from one readable event
//     coalesce into one batch.  Batches flow through a per-connection
//     strand (FIFO, one worker at a time per connection — responses stay
//     in request order even under pipelining) to the worker pool, which
//     answers the whole batch via CheckService::handle_checks and flushes
//     every response of the batch as one gathered write.  Admission is
//     accounted PER REQUEST against ServerOptions::queue_capacity — a
//     giant pipelined burst admits up to capacity and rejects the
//     overflow individually with id-echoed `overloaded` errors, so
//     batching can never bypass the bounded-admission guarantee.
//
//     The accept path survives fd exhaustion: EMFILE/ENFILE sheds one
//     idle connection (no admitted work, nothing buffered) and retries
//     instead of sleeping blind, and every transient accept failure is
//     counted in `service.accept_errors`.
//
//     begin_drain()/SIGINT stops accepting and reading, finishes every
//     admitted request, flushes the responses, and only then returns from
//     wait(): zero in-flight requests are dropped — byte-for-byte the
//     PR-4 drain contract.
//
// Metrics (common::metrics registry, exposed via the `stats` op):
//   service.requests, service.cache_hits, service.cache_misses,
//   service.inflight_dedup, service.rejected, service.queue_depth (gauge),
//   service.connections, service.open_connections (gauge),
//   service.batch_size (histogram), service.epoll_wakeups,
//   service.accept_errors, service.shard_lock_acquisitions,
//   service.latency_us / service.solve_us (log2 histograms).
//   Table: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "checker/budget.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace ssm::service {

class CheckService {
 public:
  struct Options {
    VerdictCache::Options cache;
    /// Server-side budget: the default when a request leaves an axis
    /// unset AND the cap a request cannot exceed.
    checker::BudgetSpec default_budget;
  };

  /// Test seam: replaces the real solve (budgeted Model::check + witness
  /// certification) so dedup/queue/drain tests can control solve timing
  /// deterministically.  Production code never sets it.
  using Solver = std::function<CachedVerdict(
      const litmus::LitmusTest&, const std::string& model,
      const checker::BudgetSpec&)>;

  explicit CheckService(Options options, Solver solver_override = nullptr);

  /// One request's result within a batch: either a CheckResponse or a
  /// typed error (the batch path never throws per-request failures — one
  /// bad request must not poison its batchmates).
  struct Outcome {
    bool ok = true;
    CheckResponse response;     ///< when ok
    std::string error_type;     ///< when !ok
    std::string error_message;  ///< when !ok
  };

  /// Serves a batch of check requests: shard-grouped cache multi-get,
  /// per-batch single-flight leader election, leader solves, shard-grouped
  /// multi-put, then follower waits (in that order — leaders always finish
  /// before any follower blocks, so batches cannot deadlock).  Outcomes
  /// come back in request order.
  [[nodiscard]] std::vector<Outcome> handle_checks(
      const std::vector<const CheckRequest*>& reqs);

  /// Single-request convenience wrapper over handle_checks (a batch of
  /// one).  Throws ProtocolError for malformed programs / unknown models.
  [[nodiscard]] CheckResponse handle_check(const CheckRequest& req);

  struct PreloadReport {
    std::size_t loaded = 0;   ///< cells solved (or re-read) into the cache
    std::size_t skipped = 0;  ///< already-cached cells + unparsable files
    std::size_t files = 0;
  };

  /// Warms the cache from a .litmus corpus directory: every (test ×
  /// model) cell under the server default budget.  Cells already present
  /// (e.g. from the persistent layer) are counted as skipped.
  PreloadReport preload(const std::string& corpus_dir);

  /// Clamps a request budget to the server caps (0 = unlimited request
  /// axis inherits the cap; a non-zero axis is reduced to the cap).
  [[nodiscard]] checker::BudgetSpec effective_budget(
      checker::BudgetSpec req) const noexcept;

  [[nodiscard]] VerdictCache& cache() noexcept { return cache_; }

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    CachedVerdict result;
    bool failed = false;
    std::string error;  // set when the leader's solve threw
  };

  CachedVerdict solve(const litmus::LitmusTest& test, const std::string& model,
                      const checker::BudgetSpec& budget,
                      checker::Backend backend);

  Options options_;
  Solver solver_;
  VerdictCache cache_;
  std::mutex inflight_mu_;
  /// Keyed by the full key_string — a 64-bit hash collision must degrade
  /// to an extra solve, never join two different programs' flights.
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
};

struct ServerOptions {
  /// Bind address: a unix-domain socket path, or (when empty) 127.0.0.1
  /// TCP on `tcp_port` (0 = kernel-assigned; read back via port()).
  std::string unix_socket;
  std::uint16_t tcp_port = 0;
  bool use_tcp = false;

  /// Bounded admission: check requests admitted but not yet picked up by
  /// a worker, accounted PER REQUEST (a pipelined burst or batch frame
  /// admits up to capacity; the overflow is rejected individually).
  std::size_t queue_capacity = 256;
  unsigned workers = 2;     ///< request worker threads (batch solvers)
  unsigned io_threads = 1;  ///< epoll event-loop threads

  /// A buffered, un-terminated frame exceeding this is answered with a
  /// `parse_error` and discarded up to its terminator — bounds
  /// per-connection memory against a client that streams bytes without a
  /// newline, while keeping the connection usable for later frames.
  std::size_t max_frame_bytes = 4u << 20;

  /// Node identity echoed in `ping`/`stats` responses (`--node-id`).
  /// Empty = "node-<pid>", fixed at start().  The cluster router keys
  /// health and shipping state on it, so give each node a stable id when
  /// running a ring (docs/CLUSTER.md).
  std::string node_id;

  CheckService::Options service;
};

class Server {
 public:
  explicit Server(ServerOptions options,
                  CheckService::Solver solver_override = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the event loops + workers.  Throws
  /// InvalidInput when the socket cannot be bound.
  void start();

  /// Requests a graceful drain.  Async-signal-safe (atomic exchange plus
  /// writes to pre-opened fds): callable directly from a SIGINT/SIGTERM
  /// handler.
  void begin_drain() noexcept;

  /// Blocks until a drain completes: every admitted request answered,
  /// every response flushed, all threads joined.
  void wait();

  /// True once begin_drain has been requested.
  [[nodiscard]] bool draining() const noexcept {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// Bound TCP port (after start(); 0 for unix-domain servers).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  [[nodiscard]] CheckService& service() noexcept { return service_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Connection;
  struct IoLoop;

  /// One element of a connection batch: either a pre-serialized response
  /// frame (control ops, typed errors — written verbatim in position, so
  /// responses stay in request order) or an admitted check request.
  struct BatchItem {
    bool preformatted = false;
    std::string text;  ///< response frame when preformatted
    Request request;   ///< check request otherwise
  };
  using Batch = std::vector<BatchItem>;

  // --- event-loop side (io threads) ---
  void io_loop_main(std::size_t index);
  void handle_accept(IoLoop& loop);
  void adopt_connection(int fd);
  void handle_readable(IoLoop& loop, const std::shared_ptr<Connection>& conn);
  void handle_writable(const std::shared_ptr<Connection>& conn);
  void scan_frames(const std::shared_ptr<Connection>& conn);
  void frame_to_items(const std::shared_ptr<Connection>& conn,
                      std::string_view frame, Batch& batch);
  void finish_event_batch(const std::shared_ptr<Connection>& conn,
                          Batch&& batch);
  void stop_reads(IoLoop& loop);
  void retire_eligible(IoLoop& loop);
  bool shed_one_idle_connection(IoLoop& loop);
  void wake_loop(std::size_t index) noexcept;

  // --- worker side ---
  void worker_loop();
  void process_strand(const std::shared_ptr<Connection>& conn);
  /// Serves one trace-stream chunk against the connection's trace session
  /// (strand-ordered: only the single worker owning the strand touches
  /// session state).  Returns the response frame.
  std::string handle_trace(Connection& conn, const Request& req);

  // --- shared write path ---
  /// Appends to the connection's output buffer and flushes as much as the
  /// socket accepts (one gathered write per batch); the remainder is
  /// flushed by the owning event loop on EPOLLOUT.
  void conn_write(const std::shared_ptr<Connection>& conn,
                  std::string_view data);
  /// Flush under conn->mu; updates EPOLLOUT interest.  Returns true when
  /// the output buffer is empty (or the peer is gone).
  bool try_flush_locked(Connection& conn);
  void update_interest_locked(Connection& conn);

  void enqueue_strand(const std::shared_ptr<Connection>& conn);
  void do_drain();

  ServerOptions options_;
  CheckService service_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int drain_pipe_[2] = {-1, -1};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> started_{false};
  bool drained_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::size_t next_loop_ = 0;  // round-robin connection placement (io 0 only)

  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// Connections with at least one unprocessed batch (each appears at
  /// most once: the per-connection strand keeps one worker per
  /// connection, which is what keeps pipelined responses in order).
  std::deque<std::shared_ptr<Connection>> strand_queue_;
  bool workers_should_exit_ = false;  // guarded by queue_mu_

  /// Check requests admitted but not yet picked up by a worker — the
  /// per-request bounded-admission count (queue_capacity).
  std::atomic<std::size_t> admitted_{0};
};

}  // namespace ssm::service
