// Check-as-a-service: a long-running, multi-threaded admission-check
// server (`ssm serve`, docs/SERVICE.md).
//
// Layering:
//
//   CheckService — the transport-free core.  One handle_check() call
//     resolves a request's models, clamps its budget to the server caps,
//     and answers each (program, model, budget) cell from three tiers:
//       1. the content-addressed VerdictCache (cache.hpp);
//       2. single-flight deduplication — if an identical cell is already
//          being solved by another worker, wait for that solve instead of
//          duplicating it (N identical concurrent requests → 1 solve);
//       3. a fresh budgeted solve, whose positive verdicts are re-checked
//          through the independent witness verifier before they are
//          cached or shipped.
//     Solves run on the calling worker thread and fan out internally
//     across the PR-1 common::ThreadPool (per-processor views, exactly
//     like the CLI path).
//
//   Server — the socket front end.  Accepts connections on a unix-domain
//     or 127.0.0.1 TCP socket, reads newline-delimited JSON frames, and
//     feeds check requests through a BOUNDED admission queue drained by a
//     fixed set of worker threads.  A full queue rejects immediately with
//     a typed `overloaded` error — the server never queues unboundedly,
//     and a frame larger than ServerOptions::max_frame_bytes gets a typed
//     `parse_error` and is discarded up to its terminator instead of
//     growing the read buffer without bound.  A client disconnect
//     retires its connection
//     immediately (fd closed once the last queued response has flushed,
//     reader thread reaped by the accept loop) — a long-running server
//     does not accumulate dead fds or threads.
//     begin_drain()/SIGINT stops accepting and reading, finishes every
//     admitted request, flushes the responses, and only then returns from
//     wait(): zero in-flight requests are dropped.
//
// Metrics (common::metrics registry, exposed via the `stats` op):
//   service.requests, service.cache_hits, service.cache_misses,
//   service.inflight_dedup, service.rejected, service.queue_depth (gauge),
//   service.connections, service.open_connections (gauge),
//   service.latency_us / service.solve_us
//   (log2 histograms).  Table: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "checker/budget.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace ssm::service {

class CheckService {
 public:
  struct Options {
    VerdictCache::Options cache;
    /// Server-side budget: the default when a request leaves an axis
    /// unset AND the cap a request cannot exceed.
    checker::BudgetSpec default_budget;
  };

  /// Test seam: replaces the real solve (budgeted Model::check + witness
  /// certification) so dedup/queue/drain tests can control solve timing
  /// deterministically.  Production code never sets it.
  using Solver = std::function<CachedVerdict(
      const litmus::LitmusTest&, const std::string& model,
      const checker::BudgetSpec&)>;

  explicit CheckService(Options options, Solver solver_override = nullptr);

  /// Serves one check request (cache → single-flight → solve).  Throws
  /// ProtocolError for malformed programs / unknown models.
  [[nodiscard]] CheckResponse handle_check(const CheckRequest& req);

  struct PreloadReport {
    std::size_t loaded = 0;   ///< cells solved (or re-read) into the cache
    std::size_t skipped = 0;  ///< already-cached cells + unparsable files
    std::size_t files = 0;
  };

  /// Warms the cache from a .litmus corpus directory: every (test ×
  /// model) cell under the server default budget.  Cells already present
  /// (e.g. from the persistent layer) are counted as skipped.
  PreloadReport preload(const std::string& corpus_dir);

  /// Clamps a request budget to the server caps (0 = unlimited request
  /// axis inherits the cap; a non-zero axis is reduced to the cap).
  [[nodiscard]] checker::BudgetSpec effective_budget(
      checker::BudgetSpec req) const noexcept;

  [[nodiscard]] VerdictCache& cache() noexcept { return cache_; }

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    CachedVerdict result;
    bool failed = false;
    std::string error;  // set when the leader's solve threw
  };

  /// Cache → single-flight → solve for one cell.  `source` is set to
  /// "cache" | "dedup" | "solved".
  CachedVerdict lookup_or_solve(const CacheKey& key,
                                const litmus::LitmusTest& test, bool no_cache,
                                const checker::BudgetSpec& budget,
                                std::string& source);

  CachedVerdict solve(const litmus::LitmusTest& test, const std::string& model,
                      const checker::BudgetSpec& budget);

  Options options_;
  Solver solver_;
  VerdictCache cache_;
  std::mutex inflight_mu_;
  /// Keyed by the full key_string — a 64-bit hash collision must degrade
  /// to an extra solve, never join two different programs' flights.
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;
};

struct ServerOptions {
  /// Bind address: a unix-domain socket path, or (when empty) 127.0.0.1
  /// TCP on `tcp_port` (0 = kernel-assigned; read back via port()).
  std::string unix_socket;
  std::uint16_t tcp_port = 0;
  bool use_tcp = false;

  std::size_t queue_capacity = 256;  ///< bounded admission queue
  unsigned workers = 2;              ///< request worker threads

  /// A buffered, un-terminated frame exceeding this is answered with a
  /// `parse_error` and discarded up to its terminator — bounds
  /// per-connection memory against a client that streams bytes without a
  /// newline, while keeping the connection usable for later frames.
  std::size_t max_frame_bytes = 4u << 20;

  CheckService::Options service;
};

class Server {
 public:
  explicit Server(ServerOptions options,
                  CheckService::Solver solver_override = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop + workers.  Throws
  /// InvalidInput when the socket cannot be bound.
  void start();

  /// Requests a graceful drain.  Async-signal-safe (one write to an
  /// internal pipe): callable directly from a SIGINT/SIGTERM handler.
  void begin_drain() noexcept;

  /// Blocks until a drain completes: every admitted request answered,
  /// every response flushed, all threads joined.
  void wait();

  /// True once begin_drain has been requested.
  [[nodiscard]] bool draining() const noexcept {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// Bound TCP port (after start(); 0 for unix-domain servers).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  [[nodiscard]] CheckService& service() noexcept { return service_; }
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> conn;
    Request request;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn, std::uint64_t reader_id);
  void worker_loop();
  void handle_frame(const std::shared_ptr<Connection>& conn,
                    std::string_view frame);
  void process(const Job& job);
  void do_drain();

  /// Called by a reader on exit: drops the connection from conns_ (queued
  /// jobs keep the fd alive via their shared_ptr until the last response
  /// flushes) and moves the reader's own thread handle to finished_readers_
  /// for the accept loop (or the drain) to join.
  void retire_connection(const std::shared_ptr<Connection>& conn,
                         std::uint64_t reader_id);
  void reap_finished_readers();

  ServerOptions options_;
  CheckService service_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int drain_pipe_[2] = {-1, -1};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> started_{false};
  bool drained_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  /// Live readers by id; a reader that exits moves its own handle to
  /// finished_readers_ (it cannot join itself).  Both guarded by conns_mu_.
  std::unordered_map<std::uint64_t, std::thread> reader_threads_;
  std::vector<std::thread> finished_readers_;
  std::uint64_t next_reader_id_ = 0;  // guarded by conns_mu_

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool workers_should_exit_ = false;  // guarded by queue_mu_
};

}  // namespace ssm::service
