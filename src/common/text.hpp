// Small string utilities used by the litmus parser and the printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ssm {

/// Split on a delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` consists only of [A-Za-z_][A-Za-z0-9_]* (a valid location or
/// processor name in the litmus DSL).
[[nodiscard]] bool is_identifier(std::string_view s);

/// Parse a decimal integer (with optional leading '-'); throws InvalidInput
/// on malformed input.
[[nodiscard]] long long parse_int(std::string_view s);

/// Join strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace ssm
