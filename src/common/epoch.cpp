#include "common/epoch.hpp"

namespace ssm::common::epoch {

namespace {

// Free retired objects once this many accumulate (amortizes the scan).
constexpr std::size_t kCollectThreshold = 64;

}  // namespace

Domain& Domain::global() {
  static Domain domain;
  return domain;
}

Domain::~Domain() {
  // No readers may be live here (static-destruction order: the global
  // domain outlives every cache/table that publishes into it).
  for (auto& r : limbo_) r.del(r.p);
  limbo_.clear();
  Rec* rec = recs_.load(std::memory_order_acquire);
  while (rec != nullptr) {
    Rec* next = rec->next;
    delete rec;
    rec = next;
  }
}

Domain::Rec* Domain::acquire_rec() {
  // Reuse a released record if one exists; records are never freed while
  // the domain lives, so this scan is safe against concurrent claims.
  for (Rec* r = recs_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    bool expected = false;
    if (!r->owned.load(std::memory_order_relaxed) &&
        r->owned.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      return r;
    }
  }
  Rec* r = new Rec();
  r->owned.store(true, std::memory_order_relaxed);
  Rec* head = recs_.load(std::memory_order_relaxed);
  do {
    r->next = head;
  } while (!recs_.compare_exchange_weak(head, r, std::memory_order_release,
                                        std::memory_order_relaxed));
  return r;
}

Domain::ThreadRec::~ThreadRec() {
  if (rec != nullptr) {
    rec->state.store(0, std::memory_order_release);
    rec->owned.store(false, std::memory_order_release);
  }
}

Domain::ThreadRec& Domain::thread_rec() noexcept {
  static thread_local ThreadRec t_rec;
  return t_rec;
}

Domain::Guard::Guard() {
  Domain& d = Domain::global();
  ThreadRec& t_rec = thread_rec();
  if (t_rec.rec == nullptr) t_rec.rec = d.acquire_rec();
  rec_ = t_rec.rec;
  if (rec_->depth++ == 0) {
    // seq_cst exchange gives the StoreLoad barrier between publishing the
    // pin and the subsequent reads of shared slots: a reclaimer that fails
    // to observe this pin is guaranteed its unlink happened-before our
    // first slot read, so we cannot fetch the retired object.
    const std::uint64_t e = d.epoch_.load(std::memory_order_relaxed);
    rec_->state.exchange((e << 1) | 1, std::memory_order_seq_cst);
  }
}

Domain::Guard::~Guard() {
  if (--rec_->depth == 0) {
    rec_->state.store(0, std::memory_order_release);
  }
}

void Domain::retire(void* p, void (*del)(void*)) {
  std::lock_guard<std::mutex> lock(limbo_mu_);
  limbo_.push_back(Retired{p, del, epoch_.load(std::memory_order_relaxed)});
  if (limbo_.size() >= kCollectThreshold) collect_locked();
}

void Domain::collect() {
  std::lock_guard<std::mutex> lock(limbo_mu_);
  collect_locked();
}

void Domain::collect_locked() {
  // Advance the epoch if no reader is pinned at an older one.  A pinned
  // reader with a stale epoch simply blocks the advance (safe,
  // conservative); the acquire load of each state synchronizes with the
  // reader's release unpin, so the frees below happen-after every read the
  // unpinned reader performed.
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  bool can_advance = true;
  for (Rec* r = recs_.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    const std::uint64_t s = r->state.load(std::memory_order_seq_cst);
    if ((s & 1u) != 0 && (s >> 1) != e) {
      can_advance = false;
      break;
    }
  }
  std::uint64_t current = e;
  if (can_advance) {
    std::uint64_t expected = e;
    if (epoch_.compare_exchange_strong(expected, e + 1,
                                       std::memory_order_acq_rel)) {
      current = e + 1;
    } else {
      current = expected;
    }
  }
  // An object retired in epoch E is unreachable for readers pinned at
  // E+1 (the unlink preceded their pin), so once the epoch reaches E+2
  // every possible holder has unpinned.
  std::size_t kept = 0;
  for (auto& r : limbo_) {
    if (r.epoch + 2 <= current) {
      r.del(r.p);
      reclaimed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      limbo_[kept++] = r;
    }
  }
  limbo_.resize(kept);
}

}  // namespace ssm::common::epoch
