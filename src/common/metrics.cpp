#include "common/metrics.hpp"

#include <algorithm>
#include <bit>

#include "common/json.hpp"
#include "common/types.hpp"

namespace ssm::common::metrics {

void Histogram::observe(std::uint64_t v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = sum_.fetch_add(v, std::memory_order_relaxed);
  if (prev + v < prev) {
    // The running total wrapped past 2^64-1.  Count the wrap so readers
    // can tell an aliased sum from a genuine one (the value itself keeps
    // accumulating mod 2^64, which preserves deltas between snapshots).
    overflow_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  // bit_width(uint64) is always <= 64 < kBuckets; the clamp guards the
  // array bound against any future widening of the sample type.
  const std::size_t bucket = std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(v)), kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

template <typename Map, typename... OtherMaps>
auto& lookup(std::mutex& mu, Map& map, std::string_view name,
             const char* kind, const OtherMaps&... others) {
  std::lock_guard<std::mutex> lock(mu);
  if ((... || (others.find(name) != others.end()))) {
    throw InvalidInput("metric '" + std::string(name) +
                       "' already registered with a different kind than " +
                       kind);
  }
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

void append_json_escaped(std::string& out, std::string_view s) {
  json::escape(out, s);
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return lookup(mu_, counters_, name, "counter", gauges_, histograms_);
}

Gauge& Registry::gauge(std::string_view name) {
  return lookup(mu_, gauges_, name, "gauge", counters_, histograms_);
}

Histogram& Registry::histogram(std::string_view name) {
  return lookup(mu_, histograms_, name, "histogram", counters_, gauges_);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": " + std::to_string(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_json_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + std::to_string(h->sum()) +
           ", \"max\": " + std::to_string(h->max());
    // Emitted only when non-zero so snapshots without wraps keep their
    // historical byte-exact shape (pinned digests depend on it).
    if (const std::uint64_t ov = h->overflow(); ov != 0) {
      out += ", \"overflow\": " + std::to_string(ov);
    }
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + std::to_string(i) + ", " + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void append_global_snapshot(std::string& out, std::string_view key) {
  out += '"';
  json::escape(out, key);
  out += "\": ";
  out += Registry::global().to_json();
}

std::string compact_global_snapshot() {
  // to_json never emits newlines inside string literals (they would be
  // \n-escaped), so flattening the pretty layout is a pure whitespace
  // rewrite: drop the line breaks and collapse the indent runs.
  const std::string pretty = Registry::global().to_json();
  std::string out;
  out.reserve(pretty.size());
  bool at_line_start = false;
  for (const char c : pretty) {
    if (c == '\n') {
      at_line_start = true;
      continue;
    }
    if (at_line_start && c == ' ') continue;
    at_line_start = false;
    out += c;
  }
  return out;
}

}  // namespace ssm::common::metrics
