// Metrics: a process-wide registry of counters, gauges and log2-bucket
// histograms behind the checking engine's observability surface.
//
// Design constraints (docs/OBSERVABILITY.md):
//   * hot paths stay lock-free — every instrument is a bundle of relaxed
//     atomics, and call sites cache the instrument reference once (the
//     registry hands out stable addresses for the process lifetime);
//   * updates from thread-pool workers merge without coordination, so
//     suite-level totals survive the fan-out in litmus::run_suite and
//     models::solve_per_processor exactly like SearchStats aggregation;
//   * the whole registry serializes to JSON deterministically (names are
//     kept sorted), which is what `ssm --json` and
//     `bench/checker_scaling --json` emit.
//
// Registration (name lookup) takes a mutex and is expected once per call
// site:
//
//   static auto& nodes = metrics::Registry::global().counter("checker.x");
//   nodes.add(n);
//
// reset() zeroes values in place without invalidating cached references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace ssm::common::metrics {

/// Monotonic event count (e.g. nodes expanded, memo hits).
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (e.g. configured thread-pool width).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Distribution of non-negative samples in power-of-two buckets: bucket i
/// counts samples v with bit_width(v) == i, i.e. bucket 0 holds v == 0 and
/// bucket i >= 1 holds 2^(i-1) <= v < 2^i.  Tracks count/max exactly; the
/// buckets give the shape (frontier widths, wall times, latencies) without
/// per-sample storage.  `sum` is exact until the running total exceeds
/// 2^64-1; each wrap is counted in `overflow` (and surfaced in the JSON
/// snapshot) instead of silently aliasing — high-rate instruments like
/// trace ops/sec can push the total past 64 bits in a long-lived server.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 in 0..64

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Number of times the running sum wrapped past 2^64-1.
  [[nodiscard]] std::uint64_t overflow() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// Name-indexed instrument registry.  Instruments are created on first
/// lookup and live for the process lifetime at a stable address.  Looking
/// up one name as two different instrument kinds throws InvalidInput.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Zeroes every registered instrument in place (cached references stay
  /// valid).  Used by benches and tests to scope a measurement window.
  void reset();

  /// Deterministic JSON snapshot (schema: docs/OBSERVABILITY.md).  Names
  /// are sorted; histograms emit only their non-empty buckets as
  /// [bit_width, count] pairs.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Appends `"<key>": <Registry::global().to_json()>` to a JSON document
/// under construction — the shared tail of every machine-readable
/// emitter (`ssm --json check|matrix|fuzz`, `checker_scaling --json`,
/// the check service's `stats` response).
void append_global_snapshot(std::string& out, std::string_view key = "metrics");

/// Registry::global().to_json() flattened to one line (newlines and
/// indentation collapsed) for newline-delimited framing — what the check
/// service embeds in a `stats` response frame (docs/SERVICE.md).
[[nodiscard]] std::string compact_global_snapshot();

}  // namespace ssm::common::metrics
