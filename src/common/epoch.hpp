// Epoch-based reclamation (EBR) for lock-free read paths.
//
// Readers pin the current epoch for the duration of a critical section
// (epoch::Guard); writers unlink an object from the shared structure and
// retire() it instead of deleting.  A retired object is freed only after
// the global epoch has advanced twice past its retirement epoch, which is
// possible only once every reader that could have observed the object has
// unpinned.  This is the classic three-epoch scheme (Fraser 2004; the
// passive reader-writer and RCU designs in SNIPPETS.md use the same
// grace-period structure): reads are conflict-free — no stores to shared
// cache lines beyond the reader's own pin record — which is exactly what
// the scalable commutativity rule prescribes for commutative operations.
//
// Usage:
//   { common::epoch::Guard g;                 // pin
//     Node* n = slot.load(std::memory_order_acquire);
//     ... read *n ...
//   }                                         // unpin
//   // writer, after unlinking `old` under its mutex:
//   common::epoch::retire(old, [](void* p){ delete static_cast<Node*>(p); });
//
// Guards are cheap (two stores to a thread-owned record) and re-entrant.
// Retirement is mutex-serialized on the write side — writers in this
// codebase already hold a shard mutex, so this adds no new contention.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace ssm::common::epoch {

class Domain {
 public:
  Domain() = default;
  ~Domain();
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// The process-wide domain used by the verdict cache and friends.
  [[nodiscard]] static Domain& global();

  /// Hands `p` to the domain for deferred deletion via `del`.  Must be
  /// called after `p` is unreachable for new readers (unlinked).
  void retire(void* p, void (*del)(void*));

  /// Attempts one epoch advance and frees every retired object that is two
  /// epochs old.  Called automatically by retire() past a threshold;
  /// exposed for tests and shutdown paths.
  void collect();

  /// Total objects freed so far (test observability).
  [[nodiscard]] std::uint64_t reclaimed() const noexcept {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  class Guard;

 private:
  friend class Guard;

  // Per-thread pin record.  Records are CAS-claimed from a lock-free list
  // and returned (owned=false) at thread exit; they are freed only by
  // ~Domain, so a scanning reclaimer can never touch a dangling record.
  struct Rec {
    // 0 = unpinned; otherwise (epoch << 1) | 1.
    std::atomic<std::uint64_t> state{0};
    std::atomic<bool> owned{false};
    Rec* next = nullptr;  // immutable after publication
    unsigned depth = 0;   // owner-only: re-entrant Guard nesting
  };

  struct Retired {
    void* p;
    void (*del)(void*);
    std::uint64_t epoch;
  };

  // Thread-local record handle: claimed on first Guard, released (not
  // freed) at thread exit so another thread can reuse the slot.
  struct ThreadRec {
    Rec* rec = nullptr;
    ~ThreadRec();
  };
  static ThreadRec& thread_rec() noexcept;

  Rec* acquire_rec();
  void collect_locked();

  std::atomic<Rec*> recs_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};
  std::mutex limbo_mu_;
  std::vector<Retired> limbo_;
  std::atomic<std::uint64_t> reclaimed_{0};
};

/// RAII epoch pin on Domain::global().  Re-entrant; must not outlive the
/// thread.  Keep critical sections short: a pinned reader blocks epoch
/// advance and therefore reclamation.
class Domain::Guard {
 public:
  Guard();
  ~Guard();
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  Rec* rec_;
};

using Guard = Domain::Guard;

/// Shorthand for Domain::global().retire(...).
inline void retire(void* p, void (*del)(void*)) {
  Domain::global().retire(p, del);
}

}  // namespace ssm::common::epoch
