#include "common/types.hpp"

namespace ssm {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::Read:
      return "read";
    case OpKind::Write:
      return "write";
    case OpKind::ReadModifyWrite:
      return "rmw";
  }
  return "?";
}

const char* to_string(OpLabel l) noexcept {
  switch (l) {
    case OpLabel::Ordinary:
      return "ordinary";
    case OpLabel::Labeled:
      return "labeled";
  }
  return "?";
}

}  // namespace ssm
