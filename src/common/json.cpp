#include "common/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/types.hpp"

namespace ssm::common::json {

void escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  escape(out, s);
  out += '"';
}

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) throw InvalidInput("JSON: expected a boolean");
  return bool_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) throw InvalidInput("JSON: expected a string");
  return scalar_;
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::Number) throw InvalidInput("JSON: expected a number");
  // Reject anything but a plain decimal natural: budgets and counts must
  // round-trip exactly, and a fraction or sign here is a caller bug.
  if (scalar_.empty() ||
      scalar_.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidInput("JSON: expected an unsigned integer, got '" + scalar_ +
                       "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (errno == ERANGE || end != scalar_.c_str() + scalar_.size()) {
    throw InvalidInput("JSON: integer out of range: '" + scalar_ + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double Value::as_double() const {
  if (kind_ != Kind::Number) throw InvalidInput("JSON: expected a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

const std::vector<Value>& Value::items() const {
  if (kind_ != Kind::Array) throw InvalidInput("JSON: expected an array");
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (kind_ != Kind::Object) throw InvalidInput("JSON: expected an object");
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw InvalidInput("JSON: missing key '" + std::string(key) + "'");
  }
  return *v;
}

/// Recursive-descent parser.  Depth is bounded to keep hostile frames
/// from exhausting the stack (the service feeds network input here).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_word(std::string_view w) {
    skip_ws();
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    Value v;
    if (c == '{') {
      v.kind_ = Value::Kind::Object;
      ++pos_;
      if (consume('}')) return v;
      do {
        skip_ws();
        std::string key = parse_string_body();
        expect(':');
        v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      } while (consume(','));
      expect('}');
    } else if (c == '[') {
      v.kind_ = Value::Kind::Array;
      ++pos_;
      if (consume(']')) return v;
      do {
        v.items_.push_back(parse_value(depth + 1));
      } while (consume(','));
      expect(']');
    } else if (c == '"') {
      v.kind_ = Value::Kind::String;
      v.scalar_ = parse_string_body();
    } else if (c == 't') {
      if (!consume_word("true")) fail("bad literal");
      v.kind_ = Value::Kind::Bool;
      v.bool_ = true;
    } else if (c == 'f') {
      if (!consume_word("false")) fail("bad literal");
      v.kind_ = Value::Kind::Bool;
      v.bool_ = false;
    } else if (c == 'n') {
      if (!consume_word("null")) fail("bad literal");
      v.kind_ = Value::Kind::Null;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind_ = Value::Kind::Number;
      v.scalar_ = parse_number_body();
    } else {
      fail("unexpected character");
    }
    return v;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          // Surrogate halves are not codepoints.  A high surrogate must be
          // immediately followed by an escaped low surrogate (the pair
          // names one supplementary codepoint); anything else — a lone low
          // surrogate, a high surrogate at end of string, or two highs in
          // a row — is rejected so that parse/emit stays a strict inverse
          // (a decoded lone surrogate could never be re-emitted as valid
          // UTF-8).
          if (cp >= 0xDC00 && cp <= 0xDFFF) fail("lone low surrogate");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate without a paired \\u escape");
            }
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("high surrogate paired with a non-low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          // Shortest-form UTF-8 for the decoded codepoint.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  /// Four hex digits of a \u escape (the cursor sits just past the 'u').
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    return cp;
  }

  std::string parse_number_body() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == d0) fail("expected digits");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidInput("JSON, offset " + std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ssm::common::json
