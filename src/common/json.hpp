// Small shared JSON layer: one escaping routine and one generic value
// parser for every machine-readable surface in the tree.
//
// Before this existed, `tools/ssm_cli.cpp`, `src/common/metrics.cpp` and
// `bench/checker_scaling.cpp` each carried their own (subtly different)
// string-escaping loop, and the witness parser was welded to its fixed
// schema.  The check service (src/service) needs both directions for
// arbitrary request frames, so the common pieces live here:
//
//   * json::escape / json::append_quoted — RFC 8259 string escaping
//     (quotes, backslashes, and control characters as \n/\t/\r/\uXXXX),
//     used by every emitter;
//   * json::Value / json::parse — a small recursive-descent parser for
//     full JSON (null/bool/number/string/array/object) that keeps number
//     literals as raw text so uint64 budget caps round-trip exactly.
//
// Emission stays hand-rolled at each call site (the schemas are small and
// the byte-exact layouts are pinned by tests); only escaping and parsing
// are shared.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ssm::common::json {

/// Appends `s` escaped for inclusion inside a JSON string literal:
/// `"` and `\` are backslash-escaped, \n/\t/\r use their short forms,
/// every other control character becomes \u00XX.
void escape(std::string& out, std::string_view s);

/// Appends `"<escaped s>"` (with the surrounding quotes).
void append_quoted(std::string& out, std::string_view s);

/// A parsed JSON value.  Object member order is preserved (insertion
/// order) so emitters that round-trip stay deterministic; lookup is
/// linear, which is fine for the small frames this tree exchanges.
class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }

  /// Value accessors; each throws InvalidInput when the kind mismatches.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Number accessors parse the raw literal; as_u64 rejects signs,
  /// fractions, and overflow so budget caps cannot silently truncate.
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// find() that throws InvalidInput naming the missing key.
  [[nodiscard]] const Value& at(std::string_view key) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  // raw number literal, or decoded string payload
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).  Throws InvalidInput with a byte offset on
/// malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace ssm::common::json
