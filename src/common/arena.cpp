#include "common/arena.hpp"

namespace ssm::common {

namespace {
thread_local WorkerArena* t_current_arena = nullptr;
}  // namespace

WorkerArena& this_worker_arena() noexcept {
  if (t_current_arena != nullptr) return *t_current_arena;
  // Fallback for non-lane threads.  Function-local so construction is
  // on first use and destruction runs at thread exit.
  static thread_local WorkerArena fallback;
  return fallback;
}

namespace detail {
WorkerArena* exchange_current_arena(WorkerArena* next) noexcept {
  WorkerArena* prev = t_current_arena;
  t_current_arena = next;
  return prev;
}
}  // namespace detail

}  // namespace ssm::common
