// WorkerArena: per-worker scratch storage for the work-stealing scheduler.
//
// Each scheduler lane (worker thread or claimed caller slot) owns exactly
// one arena; code running on that lane reaches it through
// this_worker_arena() and parks reusable heavy state there (the checker's
// SearchWorkspace pool, solver scratch, ...).  Arenas are single-owner by
// construction — only the thread currently bound to the lane touches it —
// so slot access takes no locks and the contents survive across batches,
// which is what makes workspace reuse effective: a worker that checks ten
// thousand cells allocates its bitsets once.
//
// Threads that are not scheduler lanes (main before the pool exists, io
// threads, tests) fall back to a thread_local arena, so
// this_worker_arena() is always valid.  Acquire/release pairs against an
// arena must be strictly nested (stack discipline): a task that suspends
// into a nested parallel_for may run further tasks on the SAME arena, and
// those inner acquisitions release before the outer frame resumes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ssm::common {

class WorkerArena {
 public:
  WorkerArena() = default;
  ~WorkerArena() {
    for (auto& e : entries_) e.destroy(e.ptr);
  }
  WorkerArena(const WorkerArena&) = delete;
  WorkerArena& operator=(const WorkerArena&) = delete;

  /// Returns the arena-local instance of T, default-constructing it on
  /// first use.  T is keyed by type: one slot per type per arena.  Only
  /// the lane owner may call this (no synchronization).
  template <typename T>
  T& slot() {
    const void* key = type_key<T>();
    for (const auto& e : entries_) {
      if (e.key == key) return *static_cast<T*>(e.ptr);
    }
    T* p = new T();
    entries_.push_back(Entry{key, p, [](void* q) { delete static_cast<T*>(q); }});
    return *p;
  }

 private:
  struct Entry {
    const void* key;
    void* ptr;
    void (*destroy)(void*);
  };

  template <typename T>
  static const void* type_key() {
    static const char tag = 0;
    return &tag;
  }

  std::vector<Entry> entries_;
};

/// The arena of the scheduler lane this thread is currently bound to, or a
/// thread_local fallback arena when the thread is not a lane.  Never null.
[[nodiscard]] WorkerArena& this_worker_arena() noexcept;

namespace detail {
/// Binds/unbinds the calling thread to a lane arena (scheduler internal).
/// Returns the previous binding so callers can restore it (stack scoped).
WorkerArena* exchange_current_arena(WorkerArena* next) noexcept;
}  // namespace detail

}  // namespace ssm::common
