#include "common/text.hpp"

#include <cctype>
#include <charconv>

#include "common/types.hpp"

namespace ssm {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  const auto head = static_cast<unsigned char>(s.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && uc != '_') return false;
  }
  return true;
}

long long parse_int(std::string_view s) {
  long long value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw InvalidInput("malformed integer: '" + std::string(s) + "'");
  }
  return value;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ssm
