// ThreadPool: the shared worker pool behind the parallel checking engine.
//
// The admission test is embarrassingly parallel at every level — suite
// cells (test × model), per-processor view searches, lattice sweeps — so
// one process-wide pool fans all of them out.  The design is deliberately
// small but work-stealing-friendly:
//
//   * parallel_for publishes a batch of indices claimed from a shared
//     atomic counter; every pool worker that sees the batch joins in, and
//     the CALLING thread participates too.  Nested parallel_for therefore
//     never deadlocks: even when every worker is busy, the caller drains
//     its own batch inline.
//   * Waiting is batch-local (condition variable per batch), so unrelated
//     fan-outs never contend on one lock.
//
// Concurrency defaults to std::thread::hardware_concurrency and is
// overridable with the SSM_JOBS environment variable or the `--jobs` CLI
// flag (see ThreadPool::set_global_jobs).  `jobs == 1` degenerates to a
// plain serial loop with zero threads, which is the reference execution
// every parallel path must match byte-for-byte (see docs/PARALLELISM.md).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ssm::common {

class ThreadPool {
 public:
  /// Creates a pool with `jobs`-way concurrency (jobs - 1 worker threads;
  /// the thread calling parallel_for is the remaining lane).
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the participating caller).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, n), potentially concurrently, and
  /// returns once all n calls have completed.  The calling thread
  /// participates, so nesting parallel_for inside a task is safe.  Index
  /// assignment to threads is nondeterministic; callers must make each
  /// fn(i) independent (write only to slot i of a presized output).
  /// The first exception thrown by any fn is rethrown on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// The process-wide pool used by the checking engine (litmus::run_suite,
  /// models::solve_per_processor).  Created on first use with
  /// default_jobs()-way concurrency.
  [[nodiscard]] static ThreadPool& global();

  /// Replaces the global pool with a `jobs`-way one (0 = default_jobs()).
  /// Must not be called while another thread is inside the global pool;
  /// intended for CLI/bench/test startup (`--jobs`).
  static void set_global_jobs(unsigned jobs);

  /// SSM_JOBS environment override when set to a positive integer,
  /// otherwise std::thread::hardware_concurrency (at least 1).
  [[nodiscard]] static unsigned default_jobs();

 private:
  struct Batch;

  void worker_loop();
  static void run_batch(Batch& batch);

  unsigned jobs_;
  std::vector<std::thread> threads_;
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace ssm::common
