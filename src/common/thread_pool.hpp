// ThreadPool: the work-stealing scheduler behind the parallel checking
// engine.
//
// The admission test is embarrassingly parallel at every level — suite
// cells (test × model), per-processor view searches, lattice sweeps,
// trace windows — so one process-wide pool fans all of them out.  The
// design is a classic work-stealing runtime:
//
//   * Every scheduler lane (worker thread or claimed caller slot) owns a
//     bounded Chase–Lev deque.  parallel_for splits [0, n) into chunks,
//     pushes them onto the SUBMITTING lane's deque, and the owner pops
//     LIFO while idle lanes steal FIFO from a randomized victim — the
//     standard owner-cold/thief-hot split that keeps the common case
//     (no contention) a pair of plain atomic ops on thread-local lines.
//   * The calling thread participates: it drains its own deque first and
//     then steals, so nested parallel_for never deadlocks — even when
//     every worker is busy, the caller executes its own batch inline.
//   * Each lane owns a WorkerArena (common/arena.hpp) where long-lived
//     scratch state (the checker's SearchWorkspace pool) persists across
//     batches, replacing the old thread_local pools.
//
// Concurrency defaults to std::thread::hardware_concurrency and is
// overridable with the SSM_JOBS environment variable or the `--jobs` CLI
// flag (see ThreadPool::set_global_jobs).  `jobs == 1` degenerates to a
// plain serial loop with zero threads and zero scheduler state, which is
// the reference execution every parallel path must match byte-for-byte
// (see docs/PARALLELISM.md).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ssm::common {

class WorkerArena;

class ThreadPool {
 public:
  /// Creates a pool with `jobs`-way concurrency (jobs - 1 worker threads;
  /// the thread calling parallel_for is the remaining lane).
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the participating caller).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, n), potentially concurrently, and
  /// returns once all n calls have completed.  The calling thread
  /// participates, so nesting parallel_for inside a task is safe.  Index
  /// assignment to threads is nondeterministic; callers must make each
  /// fn(i) independent (write only to slot i of a presized output).
  /// The first exception thrown by any fn is rethrown on the caller once
  /// the whole batch has finished (other indices still run).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Number of parallel_for invocations currently executing against this
  /// pool (any thread).  Used by set_global_jobs to enforce that the
  /// global pool is never replaced out from under a live batch.
  [[nodiscard]] std::size_t batches_in_flight() const noexcept {
    return inflight_.load(std::memory_order_acquire);
  }

  /// The process-wide pool used by the checking engine (litmus::run_suite,
  /// models::solve_per_processor).  Created on first use with
  /// default_jobs()-way concurrency.
  [[nodiscard]] static ThreadPool& global();

  /// Replaces the global pool with a `jobs`-way one (0 = default_jobs()).
  /// Intended for CLI/bench/test startup (`--jobs`).  Throws
  /// std::logic_error if any parallel_for against the current global pool
  /// is still in flight: replacing the pool would destroy the deques a
  /// live batch is executing from (previously this was only a documented
  /// convention; it is now an enforced check).
  static void set_global_jobs(unsigned jobs);

  /// SSM_JOBS environment override when set to a positive integer,
  /// otherwise std::thread::hardware_concurrency (at least 1).
  [[nodiscard]] static unsigned default_jobs();

 private:
  struct Batch;
  struct Chunk;
  class StealDeque;
  struct Lane;

  Lane* bound_lane() noexcept;
  Lane* claim_caller_lane() noexcept;
  void release_caller_lane(Lane* lane) noexcept;
  Chunk* try_steal(std::size_t self_lane) noexcept;
  void run_chunk(Chunk* chunk);
  void wake_workers() noexcept;
  void worker_loop(std::size_t lane_index);
  void flush_steal_metrics();

  unsigned jobs_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // workers, then caller slots
  std::size_t worker_lanes_;                  // lanes_[0 .. worker_lanes_)
  std::vector<std::thread> threads_;

  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> pending_{0};  // published, unclaimed chunks
  std::atomic<bool> shutdown_{false};
  /// Steal tallies as pool members, flushed to the `scheduler.steals` /
  /// `scheduler.steal_failures` metrics by CALLER threads only: workers
  /// may still be cycling through their idle loop during process-exit
  /// static destruction, after the metrics registry is gone.
  std::atomic<std::uint64_t> steal_count_{0};
  std::atomic<std::uint64_t> steal_fail_count_{0};
  struct Sleep;
  std::unique_ptr<Sleep> sleep_;
};

}  // namespace ssm::common
