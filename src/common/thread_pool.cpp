#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace ssm::common {

/// One parallel_for invocation: a shared index counter plus completion
/// tracking.  Lives on the heap (shared_ptr) because pool workers may
/// still hold a reference briefly after the caller's wait completes.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex m;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception; guarded by m
};

struct ThreadPool::State {
  std::mutex m;
  std::condition_variable work_cv;
  std::deque<std::shared_ptr<Batch>> queue;
  bool shutdown = false;
};

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? 1 : jobs), state_(std::make_unique<State>()) {
  threads_.reserve(jobs_ - 1);
  for (unsigned i = 1; i < jobs_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->m);
    state_->shutdown = true;
  }
  state_->work_cv.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.m);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.n) {
      // Lock before notifying so the waiter cannot miss the wakeup between
      // its predicate check and its wait.
      std::lock_guard<std::mutex> lock(batch.m);
      batch.done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(state_->m);
    state_->queue.push_back(batch);
  }
  state_->work_cv.notify_all();
  run_batch(*batch);  // the caller is one of the lanes
  {
    std::unique_lock<std::mutex> lock(batch->m);
    batch->done_cv.wait(lock, [&] {
      return batch->completed.load(std::memory_order_acquire) == batch->n;
    });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(state_->m);
      state_->work_cv.wait(
          lock, [&] { return state_->shutdown || !state_->queue.empty(); });
      if (state_->queue.empty()) {
        if (state_->shutdown) return;
        continue;
      }
      batch = state_->queue.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->n) {
        // Exhausted: indices all claimed (stragglers may still be running
        // their claimed fn, holding their own shared_ptr).  Retire it.
        state_->queue.pop_front();
        continue;
      }
    }
    run_batch(*batch);
  }
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(default_jobs());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_jobs(unsigned jobs) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool =
      std::make_unique<ThreadPool>(jobs == 0 ? default_jobs() : jobs);
}

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("SSM_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace ssm::common
