#include "common/thread_pool.hpp"

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "common/arena.hpp"
#include "common/metrics.hpp"

namespace ssm::common {

namespace {

// Upper bound on chunks per batch: small batches get one index per chunk
// (maximal stealing granularity for the checker's irregular cell costs);
// huge batches are coalesced so scheduler overhead stays O(kMaxChunks).
constexpr std::size_t kMaxChunks = 2048;

// Per-lane deque capacity.  Must hold the largest batch (kMaxChunks) plus
// nested-batch headroom; push falls back to inline execution when full,
// so this is a performance knob, not a correctness limit.
constexpr std::size_t kDequeCapacity = 8192;

// Caller slots: external (non-worker) threads that enter parallel_for
// claim one of these lanes for the duration of the call.  The service
// runs a handful of strand workers, so a few slots suffice; when all are
// taken the call degrades to a serial inline loop (correct, just not
// parallel).
constexpr std::size_t kCallerSlots = 8;

metrics::Counter& steals_counter() {
  static auto& c = metrics::Registry::global().counter("scheduler.steals");
  return c;
}

metrics::Counter& steal_failures_counter() {
  static auto& c =
      metrics::Registry::global().counter("scheduler.steal_failures");
  return c;
}

// Cheap per-lane xorshift for randomized victim selection.
std::uint64_t next_rand(std::uint64_t& s) noexcept {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

/// One parallel_for invocation.  Lives on the caller's stack: the caller
/// cannot return before done == n, a chunk pointer is only dereferenced
/// by the thread that claimed it (claimed => unexecuted => the batch is
/// still being waited on), and the completion count is published under
/// the batch mutex with the notify inside the critical section, so the
/// waiter can only observe done == n after the finisher has released its
/// last reference to the batch.
struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<Chunk> chunks;
  std::mutex m;
  std::condition_variable done_cv;
  std::size_t done = 0;      // completed indices; guarded by m
  std::exception_ptr error;  // first exception; guarded by m
};

/// A contiguous index range [lo, hi) of one batch: the unit of stealing.
struct ThreadPool::Chunk {
  Batch* batch;
  std::size_t lo;
  std::size_t hi;
};

/// Bounded Chase–Lev work-stealing deque (Lê et al., "Correct and
/// Efficient Work-Stealing for Weak Memory Models", PPoPP 2013).  The
/// owner pushes/pops at the bottom (LIFO); thieves CAS the top (FIFO).
/// Cells hold raw Chunk pointers, so every array access is a machine-word
/// atomic.
class ThreadPool::StealDeque {
 public:
  StealDeque() : cells_(kDequeCapacity) {}

  /// Owner only.  False when full (caller runs the chunk inline instead).
  bool push(Chunk* c) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kDequeCapacity)) return false;
    cells_[static_cast<std::size_t>(b) & kMask].store(
        c, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only.  LIFO; nullptr when empty.
  Chunk* pop() noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    Chunk* c = nullptr;
    if (t <= b) {
      c = cells_[static_cast<std::size_t>(b) & kMask].load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          c = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return c;
  }

  /// Any thread.  FIFO; nullptr when empty or the race was lost.
  Chunk* steal() noexcept {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Chunk* c =
        cells_[static_cast<std::size_t>(t) & kMask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return c;
  }

 private:
  static constexpr std::size_t kMask = kDequeCapacity - 1;
  static_assert((kDequeCapacity & kMask) == 0, "capacity must be power of 2");

  std::vector<std::atomic<Chunk*>> cells_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

/// One scheduler lane: a deque plus the arena owned by whichever thread
/// is currently bound to the lane.  Worker lanes are bound once for the
/// pool's lifetime; caller slots are CAS-claimed per parallel_for.
struct ThreadPool::Lane {
  StealDeque deque;
  WorkerArena arena;
  std::atomic<bool> claimed{false};  // caller slots only
};

struct ThreadPool::Sleep {
  std::mutex m;
  std::condition_variable cv;
};

namespace {

// The lane (if any) the current thread is bound to, per pool.  A worker
// is bound to its lane for the pool's lifetime; an external caller is
// bound while inside parallel_for.
struct LaneBinding {
  const void* pool = nullptr;
  void* lane = nullptr;
};
thread_local LaneBinding t_binding;

}  // namespace

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? 1 : jobs), sleep_(std::make_unique<Sleep>()) {
  worker_lanes_ = jobs_ - 1;
  const std::size_t total = worker_lanes_ + kCallerSlots;
  lanes_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  threads_.reserve(worker_lanes_);
  for (std::size_t i = 0; i < worker_lanes_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_->m);
  }
  sleep_->cv.notify_all();
  for (auto& t : threads_) t.join();
}

ThreadPool::Lane* ThreadPool::bound_lane() noexcept {
  if (t_binding.pool == this) return static_cast<Lane*>(t_binding.lane);
  return nullptr;
}

ThreadPool::Lane* ThreadPool::claim_caller_lane() noexcept {
  for (std::size_t i = worker_lanes_; i < lanes_.size(); ++i) {
    bool expected = false;
    if (lanes_[i]->claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      return lanes_[i].get();
    }
  }
  return nullptr;
}

void ThreadPool::release_caller_lane(Lane* lane) noexcept {
  // The lane's deque is empty here: every chunk the caller pushed was
  // claimed and executed before its batch completed, and nested batches
  // drained before their parallel_for returned.
  lane->claimed.store(false, std::memory_order_release);
}

ThreadPool::Chunk* ThreadPool::try_steal(std::size_t self_lane) noexcept {
  thread_local std::uint64_t rng_state = 0x9e3779b97f4a7c15ull ^
                                         (self_lane + 1) * 0x2545f4914f6cdd1dull;
  const std::size_t count = lanes_.size();
  const std::size_t start =
      static_cast<std::size_t>(next_rand(rng_state) % count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t victim = (start + k) % count;
    if (victim == self_lane) continue;
    if (Chunk* c = lanes_[victim]->deque.steal()) {
      // Pool-member tally, NOT the metrics registry: workers outlive every
      // function-local static at process exit (the constant-initialized
      // global-pool pointer is destroyed after them), so a worker touching
      // the registry from its idle loop would be a use-after-free.  Caller
      // threads flush the deltas from flush_steal_metrics().
      steal_count_.fetch_add(1, std::memory_order_relaxed);
      return c;
    }
  }
  steal_fail_count_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ThreadPool::flush_steal_metrics() {
  // exchange(0) makes the members deltas-since-last-flush: concurrent
  // flushers each claim a disjoint slice, nothing is double-counted.
  if (const std::uint64_t d = steal_count_.exchange(0, std::memory_order_relaxed)) {
    steals_counter().add(d);
  }
  if (const std::uint64_t d =
          steal_fail_count_.exchange(0, std::memory_order_relaxed)) {
    steal_failures_counter().add(d);
  }
}

void ThreadPool::run_chunk(Chunk* chunk) {
  Batch& batch = *chunk->batch;
  for (std::size_t i = chunk->lo; i < chunk->hi; ++i) {
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.m);
      if (!batch.error) batch.error = std::current_exception();
    }
  }
  // Publish completion under the mutex, notifying INSIDE the critical
  // section: the waiter can only see done == n after we release the lock,
  // so the stack-allocated batch cannot be destroyed under us.
  std::lock_guard<std::mutex> lock(batch.m);
  batch.done += chunk->hi - chunk->lo;
  if (batch.done == batch.n) batch.done_cv.notify_all();
}

void ThreadPool::wake_workers() noexcept {
  // Empty critical section pairs with the worker's predicate check under
  // the same mutex: either the worker is already waiting (notify reaches
  // it) or it has not yet checked pending_ (it will observe the add).
  {
    std::lock_guard<std::mutex> lock(sleep_->m);
  }
  sleep_->cv.notify_all();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // RAII in-flight marker: set_global_jobs refuses to replace a pool with
  // live batches (including the serial path — the caller still holds a
  // reference to this pool).
  struct InFlight {
    std::atomic<std::size_t>& c;
    explicit InFlight(std::atomic<std::size_t>& counter) : c(counter) {
      c.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InFlight() { c.fetch_sub(1, std::memory_order_acq_rel); }
  } inflight_marker(inflight_);

  if (jobs_ <= 1 || n == 1) {
    // Serial reference execution: a plain inline loop, byte-identical to
    // what the parallel path must produce.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Lane* lane = bound_lane();
  const bool claimed_slot = (lane == nullptr);
  WorkerArena* prev_arena = nullptr;
  if (claimed_slot) {
    lane = claim_caller_lane();
    if (lane == nullptr) {
      // Every caller slot busy: run serially rather than block.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    t_binding = LaneBinding{this, lane};
    prev_arena = detail::exchange_current_arena(&lane->arena);
  }

  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  const std::size_t chunk_size = (n + kMaxChunks - 1) / kMaxChunks;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  batch.chunks.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = lo + chunk_size < n ? lo + chunk_size : n;
    batch.chunks.push_back(Chunk{&batch, lo, hi});
  }

  std::size_t self_index = 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].get() == lane) {
      self_index = i;
      break;
    }
  }

  std::size_t published = 0;
  for (auto& chunk : batch.chunks) {
    if (lane->deque.push(&chunk)) {
      ++published;
    } else {
      run_chunk(&chunk);  // deque full: execute inline
    }
  }
  if (published > 0) {
    pending_.fetch_add(published, std::memory_order_acq_rel);
    wake_workers();
  }

  // Help until our batch completes: drain our own deque (LIFO — newest
  // work first keeps nested batches cache-hot), then steal from other
  // lanes so nested work our chunks spawned elsewhere still makes
  // progress through this lane.  Once both come up empty, every
  // remaining chunk of ours is claimed by a running thread, so block on
  // the batch condition variable.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(batch.m);
      if (batch.done == batch.n) break;
    }
    if (Chunk* c = lane->deque.pop()) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      run_chunk(c);
      continue;
    }
    if (Chunk* c = try_steal(self_index)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      run_chunk(c);
      continue;
    }
    std::unique_lock<std::mutex> lock(batch.m);
    if (batch.done == batch.n) break;
    // Plain wait: spurious wakeups loop back through the help path.
    batch.done_cv.wait(lock);
  }

  if (claimed_slot) {
    detail::exchange_current_arena(prev_arena);
    t_binding = LaneBinding{};
    release_caller_lane(lane);
  }

  // Metrics flush on the caller's thread: callers only exist while the
  // program is live, so the registry statics are guaranteed valid here.
  flush_steal_metrics();

  std::lock_guard<std::mutex> lock(batch.m);
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::worker_loop(std::size_t lane_index) {
  Lane* lane = lanes_[lane_index].get();
  t_binding = LaneBinding{this, lane};
  WorkerArena* prev_arena = detail::exchange_current_arena(&lane->arena);
  for (;;) {
    if (Chunk* c = lane->deque.pop()) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      run_chunk(c);
      continue;
    }
    if (Chunk* c = try_steal(lane_index)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      run_chunk(c);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_->m);
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    sleep_->cv.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  detail::exchange_current_arena(prev_arena);
  t_binding = LaneBinding{};
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(default_jobs());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_jobs(unsigned jobs) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_pool) {
    const std::size_t live = g_global_pool->batches_in_flight();
    if (live != 0) {
      throw std::logic_error(
          "ThreadPool::set_global_jobs: " + std::to_string(live) +
          " parallel_for call(s) still in flight on the global pool");
    }
  }
  g_global_pool =
      std::make_unique<ThreadPool>(jobs == 0 ? default_jobs() : jobs);
}

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("SSM_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace ssm::common
