// Core identifier and value types shared by every subsystem.
//
// The paper models a system as a finite set of processors interacting
// through a finite set of named locations; operations carry integer values
// (all locations start at 0).  We mirror that with small strongly-typed
// integer ids so the relation machinery can index dense arrays directly.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace ssm {

/// Index of a processor within a system execution (0-based, dense).
using ProcId = std::uint16_t;

/// Index of a shared-memory location (0-based, dense).  Locations are
/// named externally (see history::SymbolTable); internally they are ints.
using LocId = std::uint16_t;

/// Value read from / written to a location.  The paper uses integers with
/// initial value 0 for every location.
using Value = std::int64_t;

/// Dense index of an operation within a SystemHistory (0-based).  All
/// relations are bitsets indexed by OpIndex.
using OpIndex = std::uint32_t;

/// Sentinel for "no operation" (e.g. "read sees the initial value").
inline constexpr OpIndex kNoOp = std::numeric_limits<OpIndex>::max();

/// Initial value of every location (paper, footnote 1).
inline constexpr Value kInitialValue = 0;

/// Kind of a memory operation.  The paper's model has reads and writes;
/// read-modify-write is treated as a write for view membership (footnote 4),
/// which we represent with a dedicated kind so simulators can still execute
/// it atomically.
enum class OpKind : std::uint8_t {
  Read,
  Write,
  /// Atomic read-modify-write (e.g. SPARC swap / test-and-set).  Included in
  /// every processor view like a write (paper §3.4 footnote); its read part
  /// must still be legal in each view that contains it.
  ReadModifyWrite,
};

/// Labeling of an operation under release consistency (paper §3.4).
/// Ordinary operations are unlabeled; labeled operations are the
/// "synchronization" accesses.  An acquire is a labeled read, a release a
/// labeled write; plain Labeled covers labeled accesses used outside the
/// acquire/release protocol (treated as both-sides ordered).
enum class OpLabel : std::uint8_t {
  Ordinary,
  Labeled,
};

[[nodiscard]] constexpr bool is_write_like(OpKind k) noexcept {
  return k == OpKind::Write || k == OpKind::ReadModifyWrite;
}

[[nodiscard]] constexpr bool is_read_like(OpKind k) noexcept {
  return k == OpKind::Read || k == OpKind::ReadModifyWrite;
}

[[nodiscard]] const char* to_string(OpKind k) noexcept;
[[nodiscard]] const char* to_string(OpLabel l) noexcept;

/// Exception type for malformed inputs (parser errors, inconsistent
/// histories).  Checker verdicts never throw; only construction does.
class InvalidInput : public std::runtime_error {
 public:
  explicit InvalidInput(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace ssm
