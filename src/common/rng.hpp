// Deterministic, fast pseudo-random number generation.
//
// Simulators and the lattice sampler need reproducible randomness that is
// cheap and has no global state.  We implement xoshiro256** (Blackman &
// Vigna) with a splitmix64 seeder; every component that needs randomness
// takes an explicit Rng so experiments are replayable from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace ssm {

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions when needed, but most callers use the
/// bounded helpers below (Lemire reduction, no modulo bias).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent stream (for per-processor schedulers).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace ssm
