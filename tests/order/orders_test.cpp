#include "order/orders.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"

namespace ssm::order {
namespace {

using history::HistoryBuilder;

TEST(ProgramOrder, TotalPerProcessor) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .build();
  const auto po = program_order(h);
  EXPECT_TRUE(po.test(0, 1));   // p's two ops
  EXPECT_FALSE(po.test(1, 0));
  EXPECT_FALSE(po.test(0, 2));  // cross-processor: unordered
  EXPECT_FALSE(po.test(2, 0));
}

TEST(Ppo, WriteThenReadDifferentLocationDropped) {
  auto h = HistoryBuilder(1, 2).w("p", "x", 1).r("p", "y", 0).build();
  const auto ppo = partial_program_order(h);
  EXPECT_FALSE(ppo.test(0, 1));  // the store-buffer reorder TSO allows
}

TEST(Ppo, SameLocationKept) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).r("p", "x", 1).build();
  EXPECT_TRUE(partial_program_order(h).test(0, 1));
}

TEST(Ppo, BothReadsKept) {
  auto h = HistoryBuilder(2, 2)
               .r("p", "x", 0)
               .r("p", "y", 0)
               .build();
  EXPECT_TRUE(partial_program_order(h).test(0, 1));
}

TEST(Ppo, BothWritesKept) {
  auto h = HistoryBuilder(1, 2).w("p", "x", 1).w("p", "y", 1).build();
  EXPECT_TRUE(partial_program_order(h).test(0, 1));
}

TEST(Ppo, ReadThenWriteKept) {
  auto h = HistoryBuilder(1, 2).r("p", "x", 0).w("p", "y", 1).build();
  EXPECT_TRUE(partial_program_order(h).test(0, 1));
}

TEST(Ppo, TransitivityThroughIntermediate) {
  // w(x) ->ppo r(x) (same loc), r(x) ->ppo r(y) (both reads), so
  // w(x) ->ppo r(y) transitively even though direct w->r is dropped.
  auto h = HistoryBuilder(1, 2)
               .w("p", "x", 1)
               .r("p", "x", 1)
               .r("p", "y", 0)
               .build();
  const auto ppo = partial_program_order(h);
  EXPECT_TRUE(ppo.test(0, 2));
}

TEST(Ppo, NoTransitiveRouteLeavesDropped) {
  // w(x), w(y): both writes kept.  w(x), r(z): dropped, and the only
  // intermediate (w(y)) gives w(y) -> r(z)? also dropped (w->r, diff loc).
  auto h = HistoryBuilder(1, 3)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("p", "z", 0)
               .build();
  const auto ppo = partial_program_order(h);
  EXPECT_TRUE(ppo.test(0, 1));
  EXPECT_FALSE(ppo.test(0, 2));
  EXPECT_FALSE(ppo.test(1, 2));
}

TEST(Ppo, RmwOrdersBothWays) {
  auto h = HistoryBuilder(1, 2)
               .w("p", "x", 1)
               .rmw("p", "y", 0, 1)
               .r("p", "z", 0)
               .build();
  const auto ppo = partial_program_order(h);
  EXPECT_TRUE(ppo.test(0, 1));  // write then write-like
  EXPECT_TRUE(ppo.test(1, 2));  // read-like then read
  EXPECT_TRUE(ppo.test(0, 2));  // transitively: rmw never bypassed
}

TEST(WritesBefore, LinksWriterToReader) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 1).build();
  const auto wb = writes_before(h);
  EXPECT_TRUE(wb.test(0, 1));
  EXPECT_FALSE(wb.test(1, 0));
}

TEST(WritesBefore, ReadOfInitialValueUnlinked) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 0).build();
  EXPECT_EQ(writes_before(h).edge_count(), 0u);
}

TEST(CausalOrder, TransitiveAcrossProcessors) {
  // w_p(x)1 -> r_q(x)1 -> w_q(y)1 -> r_r(y)1: co chains them all.
  auto h = HistoryBuilder(3, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .w("q", "y", 1)
               .r("r", "y", 1)
               .build();
  const auto co = causal_order(h);
  EXPECT_TRUE(co.test(0, 3));
  EXPECT_TRUE(co.test(0, 2));
  EXPECT_FALSE(co.test(3, 0));
}

TEST(CausalOrder, ConcurrentWritesUnordered) {
  auto h = HistoryBuilder(2, 2).w("p", "x", 1).w("q", "y", 1).build();
  const auto co = causal_order(h);
  EXPECT_FALSE(co.test(0, 1));
  EXPECT_FALSE(co.test(1, 0));
}

}  // namespace
}  // namespace ssm::order
