#include "order/coherence.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "order/orders.hpp"

namespace ssm::order {
namespace {

using history::HistoryBuilder;

TEST(Coherence, EnumeratesPerLocationOrders) {
  // Two writes to x by different processors (unordered), one write to y:
  // 2 coherence orders.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("q", "x", 2)
               .w("q", "y", 1)
               .build();
  const auto ppo = partial_program_order(h);
  int count = 0;
  for_each_coherence_order(h, ppo, [&](const CoherenceOrder&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
}

TEST(Coherence, SameProcessorWritesKeepProgramOrder) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).w("p", "x", 2).build();
  const auto ppo = partial_program_order(h);
  int count = 0;
  for_each_coherence_order(h, ppo, [&](const CoherenceOrder& coh) {
    ++count;
    EXPECT_TRUE(coh.precedes(0, 1));
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(Coherence, EarlyStopPropagates) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).w("q", "x", 2).build();
  int count = 0;
  const bool stopped = for_each_coherence_order(
      h, partial_program_order(h), [&](const CoherenceOrder&) {
        ++count;
        return false;
      });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 1);
}

TEST(Coherence, AsRelationIsTransitiveChain) {
  auto h = HistoryBuilder(1, 1)
               .w("p", "x", 1)
               .w("p", "x", 2)
               .w("p", "x", 3)
               .build();
  for_each_coherence_order(h, partial_program_order(h),
                           [&](const CoherenceOrder& coh) {
                             const auto r = coh.as_relation();
                             EXPECT_TRUE(r.test(0, 1));
                             EXPECT_TRUE(r.test(1, 2));
                             EXPECT_TRUE(r.test(0, 2));
                             EXPECT_FALSE(r.test(2, 0));
                             return true;
                           });
}

TEST(Coherence, PositionsMatchSequence) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).w("p", "x", 2).build();
  for_each_coherence_order(h, partial_program_order(h),
                           [&](const CoherenceOrder& coh) {
                             EXPECT_EQ(coh.position(0), 0u);
                             EXPECT_EQ(coh.position(1), 1u);
                             EXPECT_EQ(coh.writes(0).size(), 2u);
                             return true;
                           });
}

TEST(Coherence, NoWritesYieldsSingleEmptyOrder) {
  auto h = HistoryBuilder(1, 1).r("p", "x", 0).build();
  int count = 0;
  for_each_coherence_order(h, partial_program_order(h),
                           [&](const CoherenceOrder& coh) {
                             ++count;
                             EXPECT_TRUE(coh.writes(0).empty());
                             return true;
                           });
  EXPECT_EQ(count, 1);
}

TEST(Coherence, ThreeIndependentWritesSixOrders) {
  auto h = HistoryBuilder(3, 1)
               .w("p", "x", 1)
               .w("q", "x", 2)
               .w("r", "x", 3)
               .build();
  int count = 0;
  for_each_coherence_order(h, partial_program_order(h),
                           [&](const CoherenceOrder&) {
                             ++count;
                             return true;
                           });
  EXPECT_EQ(count, 6);
}

}  // namespace
}  // namespace ssm::order
