#include "order/semi_causal.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"

namespace ssm::order {
namespace {

using history::HistoryBuilder;

/// The unique coherence order for a history (asserts uniqueness).
CoherenceOrder only_coherence(const history::SystemHistory& h) {
  const auto ppo = partial_program_order(h);
  CoherenceOrder out;
  int count = 0;
  for_each_coherence_order(h, ppo, [&](const CoherenceOrder& coh) {
    out = coh;
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1) << "history has multiple coherence orders";
  return out;
}

TEST(RemoteWritesBefore, MpEdge) {
  // p: w(x)1 w(y)1 ; q: r(y)1.  The earlier write w(x)1 is remotely
  // before q's read of y (it precedes the read's source in ppo).
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 1)
               .build();
  const auto ppo = partial_program_order(h);
  const auto rwb = remote_writes_before(h, ppo);
  EXPECT_TRUE(rwb.test(0, 2));
  EXPECT_FALSE(rwb.test(1, 2));  // the source itself is wb, not rwb
}

TEST(RemoteWritesBefore, NoEdgeWhenReadOfInitial) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 0)
               .build();
  const auto rwb = remote_writes_before(h, partial_program_order(h));
  EXPECT_EQ(rwb.edge_count(), 0u);
}

TEST(RemoteReadsBefore, StaleReadOrdersBeforeLaterWrite) {
  // q reads x=0 (stale w.r.t. w_p(x)1); p writes y after x.  Then
  // r_q(x)0 ->rrb w_p(y)1.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "x", 0)
               .build();
  const auto ppo = partial_program_order(h);
  const auto coh = only_coherence(h);
  const auto rrb = remote_reads_before(h, ppo, coh);
  EXPECT_TRUE(rrb.test(2, 1));
  EXPECT_FALSE(rrb.test(2, 0));  // not before the x-write itself
}

TEST(RemoteReadsBefore, NoEdgeWhenReadIsCurrent) {
  // q reads the newest value of x; no write is "newer" in coherence.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "x", 1)
               .build();
  const auto ppo = partial_program_order(h);
  const auto rrb = remote_reads_before(h, ppo, only_coherence(h));
  EXPECT_EQ(rrb.edge_count(), 0u);
}

TEST(SemiCausal, ContainsPpoAndClosesTransitively) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 1)
               .w("q", "z", 1)
               .build();
  const auto ppo = partial_program_order(h);
  const auto sem = semi_causal(h, ppo, only_coherence(h));
  EXPECT_TRUE(sem.test(0, 1));  // ppo
  EXPECT_TRUE(sem.test(0, 2));  // rwb
  EXPECT_TRUE(sem.test(2, 3));  // ppo (read then write)
  EXPECT_TRUE(sem.test(0, 3));  // transitive closure
}

TEST(SemiCausal, MpIsForbiddenByEdges) {
  // sem forces w(x)1 before r_q(y)1 before r_q(x)0 — so a legal view for q
  // cannot exist.  Here we only assert the ordering edges exist.
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .r("q", "y", 1)
               .r("q", "x", 0)
               .build();
  const auto ppo = partial_program_order(h);
  const auto sem = semi_causal(h, ppo, only_coherence(h));
  EXPECT_TRUE(sem.test(0, 2));  // rwb: w(x)1 before the y-read
  EXPECT_TRUE(sem.test(2, 3));  // ppo: both reads
  EXPECT_TRUE(sem.test(0, 3));
}

}  // namespace
}  // namespace ssm::order
