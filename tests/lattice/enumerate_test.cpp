#include "lattice/enumerate.hpp"

#include <gtest/gtest.h>

#include <set>

#include "history/print.hpp"

namespace ssm::lattice {
namespace {

TEST(Enumerate, CountsTinyUniverseExactly) {
  // 1 proc, 1 op, 1 loc: the op is w(x)1 or r(x)0 — reads can only see 0
  // (no writes exist when the op is a read).
  EnumerationSpec spec;
  spec.procs = 1;
  spec.ops_per_proc = 1;
  spec.locs = 1;
  std::uint64_t n = for_each_history(spec, [](const SystemHistory&) {
    return true;
  });
  EXPECT_EQ(n, 2u);
}

TEST(Enumerate, AllHistoriesValid) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  std::uint64_t bad = 0;
  for_each_history(spec, [&](const SystemHistory& h) {
    if (h.validate().has_value()) ++bad;
    return true;
  });
  EXPECT_EQ(bad, 0u);
}

TEST(Enumerate, HistoriesAreDistinct) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 1;
  spec.locs = 2;
  std::set<std::string> seen;
  const std::uint64_t n = for_each_history(spec, [&](const SystemHistory& h) {
    seen.insert(history::format_history(h));
    return true;
  });
  EXPECT_EQ(seen.size(), n);
}

TEST(Enumerate, EarlyStopWorks) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  int count = 0;
  for_each_history(spec, [&](const SystemHistory&) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(Enumerate, WriteValuesAreCanonical) {
  EnumerationSpec spec;
  spec.procs = 1;
  spec.ops_per_proc = 3;
  spec.locs = 1;
  for_each_history(spec, [&](const SystemHistory& h) {
    Value expected = 0;
    for (const auto& op : h.operations()) {
      if (op.is_write()) {
        EXPECT_EQ(op.value, ++expected);
      }
    }
    return true;
  });
}

TEST(Enumerate, FigureOneShapeAppears) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  bool found = false;
  for_each_history(spec, [&](const SystemHistory& h) {
    if (history::format_history(h) == "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n") {
      found = true;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(found);
}

TEST(RandomHistory, ValidAndInSpec) {
  EnumerationSpec spec;
  spec.procs = 3;
  spec.ops_per_proc = 4;
  spec.locs = 2;
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const auto h = random_history(spec, rng);
    EXPECT_EQ(h.size(), 12u);
    EXPECT_FALSE(h.validate().has_value()) << history::format_history(h);
  }
}

}  // namespace
}  // namespace ssm::lattice
