#include "lattice/separate.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "history/print.hpp"
#include "models/models.hpp"

namespace ssm::lattice {
namespace {

TEST(Separate, FindsTsoNotScWitness) {
  const auto tso = models::make_tso();
  const auto sc = models::make_sc();
  const auto w = find_separation(*tso, *sc);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(tso->check(*w).allowed);
  EXPECT_FALSE(sc->check(*w).allowed);
  // The minimal witness is the Figure 1 shape (4 ops over 2 locations).
  EXPECT_EQ(w->size(), 4u);
}

TEST(Separate, NoWitnessForContainment) {
  // SC \ TSO is empty (SC is stronger).
  const auto sc = models::make_sc();
  const auto tso = models::make_tso();
  EXPECT_FALSE(find_separation(*sc, *tso).has_value());
}

TEST(Separate, PcCausalBothDirections) {
  const auto pc = models::make_pc();
  const auto causal = models::make_causal();
  const auto pc_not_causal = find_separation(*pc, *causal);
  const auto causal_not_pc = find_separation(*causal, *pc);
  ASSERT_TRUE(pc_not_causal.has_value());
  ASSERT_TRUE(causal_not_pc.has_value());
  EXPECT_FALSE(causal->check(*pc_not_causal).allowed);
  EXPECT_FALSE(pc->check(*causal_not_pc).allowed);
}

TEST(Shrink, ReducesPaddedWitnessToMinimalShape) {
  // Figure 1 with two irrelevant extra operations; shrinking must strip
  // them and keep the 4-op core.
  auto padded = history::HistoryBuilder(2, 3)
                    .w("p", "x", 1)
                    .r("p", "y", 0)
                    .r("p", "z", 0)   // irrelevant
                    .w("q", "y", 1)
                    .r("q", "x", 0)
                    .w("q", "z", 1)   // irrelevant (z never read as 1)
                    .build();
  const auto tso = models::make_tso();
  const auto sc = models::make_sc();
  ASSERT_TRUE(tso->check(padded).allowed);
  ASSERT_FALSE(sc->check(padded).allowed);
  const auto small = shrink_separation(padded, *tso, *sc);
  EXPECT_EQ(small.size(), 4u);
  EXPECT_TRUE(tso->check(small).allowed);
  EXPECT_FALSE(sc->check(small).allowed);
}

TEST(Shrink, AlreadyMinimalWitnessUnchanged) {
  auto fig1 = history::HistoryBuilder(2, 2)
                  .w("p", "x", 1)
                  .r("p", "y", 0)
                  .w("q", "y", 1)
                  .r("q", "x", 0)
                  .build();
  const auto tso = models::make_tso();
  const auto sc = models::make_sc();
  const auto small = shrink_separation(fig1, *tso, *sc);
  EXPECT_EQ(small.size(), 4u);
}

TEST(Shrink, RespectsWellFormedness) {
  // A witness where a read depends on a write: the write cannot be
  // dropped alone.
  auto h = history::HistoryBuilder(3, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .w("q", "y", 1)
               .r("r", "y", 1)
               .r("r", "x", 0)
               .build();
  const auto pc = models::make_pc();
  const auto causal = models::make_causal();
  ASSERT_TRUE(pc->check(h).allowed);
  ASSERT_FALSE(causal->check(h).allowed);
  const auto small = shrink_separation(h, *pc, *causal);
  EXPECT_FALSE(small.validate().has_value());
  EXPECT_TRUE(pc->check(small).allowed);
  EXPECT_FALSE(causal->check(small).allowed);
}

TEST(Separate, CustomUniverseList) {
  // Restricting to a single-location universe hides the SC/TSO witness.
  SeparationQuery q;
  q.universes = {{2, 2, 1, false, 0}};
  const auto tso = models::make_tso();
  const auto sc = models::make_sc();
  EXPECT_FALSE(find_separation(*tso, *sc, q).has_value());
}

}  // namespace
}  // namespace ssm::lattice
