#include "lattice/inclusion.hpp"

#include <gtest/gtest.h>

#include "models/models.hpp"

namespace ssm::lattice {
namespace {

std::vector<models::ModelPtr> chain_models() {
  std::vector<models::ModelPtr> m;
  m.push_back(models::make_sc());
  m.push_back(models::make_tso());
  m.push_back(models::make_pram());
  return m;
}

TEST(Inclusion, ExhaustiveTinyUniverseChain) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  const auto report = compute_inclusions(spec, chain_models());
  ASSERT_EQ(report.model_names.size(), 3u);
  EXPECT_GT(report.universe_size, 0u);
  // SC ⊂ TSO ⊂ PRAM, strictly (fig. 1 lives in this universe).
  EXPECT_TRUE(report.strictly_stronger(0, 1));
  EXPECT_TRUE(report.strictly_stronger(1, 2));
  EXPECT_TRUE(report.strictly_stronger(0, 2));
  // Witnesses exist for the strict direction and not the other.
  EXPECT_TRUE(report.witness[1][0].has_value());
  EXPECT_FALSE(report.witness[0][1].has_value());
}

TEST(Inclusion, AdmissionCountsMonotone) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 2;
  spec.locs = 2;
  const auto report = compute_inclusions(spec, chain_models());
  EXPECT_LE(report.admitted[0], report.admitted[1]);
  EXPECT_LE(report.admitted[1], report.admitted[2]);
  EXPECT_GT(report.admitted[0], 0u);
}

TEST(Inclusion, FormatMentionsRelations) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 1;
  spec.locs = 1;
  const auto report = compute_inclusions(spec, chain_models());
  const std::string s = report.format();
  EXPECT_NE(s.find("universe:"), std::string::npos);
  EXPECT_NE(s.find("SC vs TSO"), std::string::npos);
}

TEST(Inclusion, SampledUniverseAgreesOnContainment) {
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 2;
  const auto report = sample_inclusions(spec, chain_models(), 300, 99);
  EXPECT_EQ(report.universe_size, 300u);
  // Containment is a theorem; sampling can never find a counterexample.
  EXPECT_TRUE(report.stronger_or_equal(0, 1));
  EXPECT_TRUE(report.stronger_or_equal(1, 2));
}

TEST(Inclusion, PcCausalIncomparableInSmallUniverse) {
  // The separating witnesses (fig. 2-like and fig. 3-like shapes) need
  // 3 ops per processor / same-location races; this universe contains
  // fig. 3 (2 procs x 3 ops, 1 loc).
  EnumerationSpec spec;
  spec.procs = 2;
  spec.ops_per_proc = 3;
  spec.locs = 1;
  std::vector<models::ModelPtr> m;
  m.push_back(models::make_pc());
  m.push_back(models::make_causal());
  const auto report = compute_inclusions(spec, m);
  // Causal admits fig. 3 and PC rejects it: Causal \ PC nonempty.
  EXPECT_GT(report.only_in[1][0], 0u);
}

}  // namespace
}  // namespace ssm::lattice
