// Consistent-hash ring unit tests: determinism, the full-permutation
// candidate walk, balance across nodes, and the property that makes the
// ring worth having — removing a member remaps ONLY the keys it owned,
// and failover (skipping a down member on the candidate walk) agrees
// with rebuilding the ring without it.
#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/types.hpp"

using ssm::InvalidInput;
using ssm::cluster::HashRing;

namespace {

std::vector<std::string> specs(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back("unix:/tmp/node-" + std::to_string(i) + ".sock");
  }
  return out;
}

/// A deterministic spray of key hashes (the production hash of synthetic
/// canonical keys, not raw integers — exercises the same distribution the
/// router sees).
std::vector<std::uint64_t> key_sample(std::size_t n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(HashRing::key_hash("name: h\np: w(x)" + std::to_string(i) +
                                      " r(y)0\n"));
  }
  return keys;
}

}  // namespace

TEST(HashRing, RejectsDegenerateConfigs) {
  EXPECT_THROW(HashRing({}, 64), InvalidInput);
  EXPECT_THROW(HashRing(specs(2), 0), InvalidInput);
}

TEST(HashRing, AssignmentIsDeterministicAcrossInstances) {
  const HashRing a(specs(4));
  const HashRing b(specs(4));
  for (const std::uint64_t h : key_sample(500)) {
    EXPECT_EQ(a.owner(h), b.owner(h));
    EXPECT_EQ(a.candidates(h), b.candidates(h));
  }
}

TEST(HashRing, CandidatesArePermutationStartingAtOwner) {
  const HashRing ring(specs(5));
  for (const std::uint64_t h : key_sample(200)) {
    const auto cands = ring.candidates(h);
    ASSERT_EQ(cands.size(), 5u);
    EXPECT_EQ(cands[0], ring.owner(h));
    std::set<std::size_t> distinct(cands.begin(), cands.end());
    EXPECT_EQ(distinct.size(), 5u);  // every node appears exactly once
  }
}

TEST(HashRing, SpreadsKeysRoughlyEvenly) {
  const HashRing ring(specs(4));
  std::map<std::size_t, std::size_t> load;
  const auto keys = key_sample(8000);
  for (const std::uint64_t h : keys) load[ring.owner(h)]++;
  ASSERT_EQ(load.size(), 4u);
  for (const auto& [node, count] : load) {
    // 64 vnodes/node keeps the spread well inside [10%, 45%] of keys.
    EXPECT_GT(count, keys.size() / 10) << "node " << node << " starved";
    EXPECT_LT(count, keys.size() * 45 / 100) << "node " << node << " hot";
  }
}

TEST(HashRing, RemovingANodeRemapsOnlyItsOwnKeys) {
  // Membership {0,1,2,3} vs membership without node 2: every key NOT
  // owned by node 2 keeps its owner.  This is the scale-out contract —
  // a leave (or join, by symmetry) touches one node's slice only.
  const auto four = specs(4);
  std::vector<std::string> three = four;
  three.erase(three.begin() + 2);
  const HashRing big(four);
  const HashRing small(three);
  std::size_t remapped = 0;
  for (const std::uint64_t h : key_sample(2000)) {
    const std::size_t owner = big.owner(h);
    if (owner == 2) {
      ++remapped;
      continue;
    }
    EXPECT_EQ(big.node(owner), small.node(small.owner(h)));
  }
  EXPECT_GT(remapped, 0u);  // node 2 did own something
}

TEST(HashRing, FailoverWalkAgreesWithMembershipChange) {
  // Skipping a down node on the candidate walk must send each of its
  // keys exactly where a ring rebuilt without that node would — so
  // failover and a permanent leave are indistinguishable to clients.
  const auto four = specs(4);
  std::vector<std::string> three = four;
  three.erase(three.begin() + 1);
  const HashRing big(four);
  const HashRing small(three);
  for (const std::uint64_t h : key_sample(2000)) {
    std::size_t failover = big.size();
    for (const std::size_t c : big.candidates(h)) {
      if (c != 1) {  // node 1 is "down"
        failover = c;
        break;
      }
    }
    EXPECT_EQ(big.node(failover), small.node(small.owner(h)));
  }
}

TEST(HashRing, KeyHashMatchesVerdictCacheHashFamily) {
  // The routing hash and the cache's content address must stay the same
  // function: that identity is why the home node's cache is warm.
  EXPECT_EQ(HashRing::key_hash("abc"), HashRing::key_hash("abc"));
  EXPECT_NE(HashRing::key_hash("abc"), HashRing::key_hash("abd"));
}
