// Router tests: end-to-end over real sockets against real in-process
// `ssm serve` nodes (canonical-key routing, sub-batch split/merge order,
// failover on node death, warm shipping on join) and against scripted
// fake nodes (retry on `overloaded`, re-route on `draining`, protocol
// version rejection at pool-connect).  Runs under BOTH the `cluster` and
// `concurrency` labels — the TSan pass covers the router's accept /
// handler / health / pool thread interplay.
#include "cluster/router.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/pool.hpp"
#include "cluster/ring.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "litmus/canonical.hpp"
#include "litmus/parser.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace json = ssm::common::json;
namespace metrics = ssm::common::metrics;
using namespace ssm;
using namespace std::chrono_literals;
using cluster::ClusterError;
using cluster::HashRing;
using cluster::NodeAddress;
using cluster::NodePool;
using cluster::PoolOptions;
using cluster::Router;
using cluster::RouterOptions;
using service::Client;
using service::Server;
using service::ServerOptions;

namespace {

constexpr const char* kSbProgram =
    "name: sb\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n";
/// kSbProgram under a processor swap and location renaming — same
/// isomorphism class, so it must route to the same node and hit its
/// canonical cache.
constexpr const char* kSbIsomorph =
    "name: sb-iso\nq: w(b)1 r(a)0\np: w(a)1 r(b)0\n";

/// Six structurally distinct programs (distinct canonical classes) so a
/// batch actually splits across nodes.
const char* kPrograms[6] = {
    "name: t0\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\n",
    "name: t1\np: w(x)1 w(y)1\nq: r(y)1 r(x)0\n",
    "name: t2\np: w(x)1\nq: r(x)1\n",
    "name: t3\np: r(x)0\n",
    "name: t4\np: r(x)1 w(y)1\nq: r(y)1 w(x)1\n",
    "name: t5\np: w(x)1 r(y)0\nq: w(y)1 r(x)0\nr: r(x)0 r(y)0\n",
};

std::string check_frame(const std::string& program, const std::string& id) {
  std::string frame = "{\"op\": \"check\", \"id\": ";
  json::append_quoted(frame, id);
  frame += ", \"program\": ";
  json::append_quoted(frame, program);
  frame += ", \"models\": [\"SC\", \"TSO\"]}";
  return frame;
}

bool eventually(const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

std::string make_tmpdir() {
  char tmpl[] = "/tmp/ssm-cluster-test-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) throw InvalidInput("mkdtemp failed");
  return tmpl;
}

std::uint64_t routing_hash_of(const char* program) {
  return HashRing::key_hash(
      litmus::canonicalize(litmus::parse_test(program)).key);
}

/// A tmpdir whose two-node ring (specs unix:<dir>/n1, unix:<dir>/n2)
/// splits kPrograms across both nodes.  Node specs embed the random
/// tmpdir path, so a single draw occasionally hands every program to
/// one node; redraw until both nodes own a slice so cross-node tests
/// are guaranteed to actually cross nodes.
std::string make_split_tmpdir() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string dir = make_tmpdir();
    const HashRing ring({"unix:" + dir + "/n1", "unix:" + dir + "/n2"});
    bool owned0 = false, owned1 = false;
    for (const char* p : kPrograms) {
      (ring.owner(routing_hash_of(p)) == 0 ? owned0 : owned1) = true;
    }
    if (owned0 && owned1) return dir;
    ::rmdir(dir.c_str());
  }
  throw InvalidInput("no tmpdir produced a cross-node split");
}

RouterOptions quiet_router(const std::string& socket,
                           std::vector<std::string> nodes) {
  RouterOptions opts;
  opts.unix_socket = socket;
  opts.nodes = std::move(nodes);
  opts.quiet = true;
  opts.probe_interval_ms = 50;
  opts.backoff_base_ms = 1;
  opts.backoff_cap_ms = 10;
  return opts;
}

/// A scripted node: real unix listener, NDJSON framing, canned replies.
/// Answers the handshake/probe pings itself (with a configurable proto,
/// for the version-rejection test) and delegates `check` frames to the
/// test's handler.
class FakeNode {
 public:
  using CheckHandler = std::function<std::string(const json::Value& doc)>;

  FakeNode(std::string path, CheckHandler on_check,
           std::uint64_t proto = service::kProtocolVersion,
           std::string id = "fake")
      : path_(std::move(path)), on_check_(std::move(on_check)),
        proto_(proto), id_(std::move(id)) {}

  ~FakeNode() { stop(); }

  void start() {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
    ::unlink(path_.c_str());
    ASSERT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ASSERT_EQ(::listen(listen_fd_, 16), 0);
    accept_thread_ = std::thread([this] {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        std::lock_guard<std::mutex> lock(mu_);
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back([this, fd] { serve(fd); });
      }
    });
  }

  void stop() {
    if (listen_fd_ < 0) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
      threads.swap(conn_threads_);
    }
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int fd : conn_fds_) ::close(fd);
      conn_fds_.clear();
    }
    ::unlink(path_.c_str());
    listen_fd_ = -1;
  }

 private:
  void serve(int fd) {
    std::string buf;
    char chunk[4096];
    for (;;) {
      const std::size_t pos = buf.find('\n');
      if (pos == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) return;
        buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      const std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (line.empty()) continue;
      std::string reply;
      try {
        const json::Value doc = json::parse(line);
        std::string id;
        if (const json::Value* v = doc.find("id")) id = v->as_string();
        const std::string& op = doc.at("op").as_string();
        if (op == "ping") {
          reply = "{\"id\": ";
          json::append_quoted(reply, id);
          reply += ", \"ok\": true, \"pong\": true, \"node\": ";
          json::append_quoted(reply, id_);
          reply += ", \"proto\": " + std::to_string(proto_) + "}";
        } else if (op == "check") {
          reply = on_check_(doc);
        } else {
          reply = "{\"id\": ";
          json::append_quoted(reply, id);
          reply += ", \"ok\": false, \"error\": {\"type\": \"bad_request\", "
                   "\"message\": \"fake\"}}";
        }
      } catch (const InvalidInput&) {
        return;
      }
      reply += '\n';
      std::size_t off = 0;
      while (off < reply.size()) {
        const ssize_t n = ::send(fd, reply.data() + off, reply.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
  }

  std::string path_;
  CheckHandler on_check_;
  std::uint64_t proto_;
  std::string id_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

std::string fake_ok(const json::Value& doc) {
  std::string id;
  if (const json::Value* v = doc.find("id")) id = v->as_string();
  std::string reply = "{\"id\": ";
  json::append_quoted(reply, id);
  reply += ", \"ok\": true, \"results\": [{\"model\": \"SC\", "
           "\"verdict\": \"forbidden\"}]}";
  return reply;
}

std::string fake_error(const json::Value& doc, const char* type) {
  std::string id;
  if (const json::Value* v = doc.find("id")) id = v->as_string();
  std::string reply = "{\"id\": ";
  json::append_quoted(reply, id);
  reply += ", \"ok\": false, \"error\": {\"type\": \"";
  reply += type;
  reply += "\", \"message\": \"scripted\"}}";
  return reply;
}

}  // namespace

// ---------------------------------------------------------------------------
// Against real nodes

TEST(RouterEndToEnd, PingAnswersWithRouterIdentity) {
  const std::string dir = make_tmpdir();
  ServerOptions sopts;
  sopts.unix_socket = dir + "/n1";
  Server node(sopts);
  node.start();

  RouterOptions ropts = quiet_router(dir + "/r", {"unix:" + dir + "/n1"});
  ropts.router_id = "router-under-test";
  Router router(ropts);
  router.start();

  auto client = Client::connect_unix(dir + "/r");
  const json::Value pong = json::parse(client.call("{\"op\": \"ping\"}"));
  EXPECT_TRUE(pong.at("ok").as_bool());
  EXPECT_TRUE(pong.at("pong").as_bool());
  EXPECT_EQ(pong.at("node").as_string(), "router-under-test");
  EXPECT_EQ(pong.at("proto").as_u64(), service::kProtocolVersion);

  router.begin_drain();
  router.wait();
  node.begin_drain();
  node.wait();
}

TEST(RouterEndToEnd, RoutesIsomorphsToTheSameWarmNode) {
  const std::string dir = make_tmpdir();
  ServerOptions s1, s2;
  s1.unix_socket = dir + "/n1";
  s2.unix_socket = dir + "/n2";
  Server node1(s1), node2(s2);
  node1.start();
  node2.start();

  Router router(quiet_router(
      dir + "/r", {"unix:" + dir + "/n1", "unix:" + dir + "/n2"}));
  router.start();
  auto client = Client::connect_unix(dir + "/r");

  const json::Value cold =
      json::parse(client.call(check_frame(kSbProgram, "a")));
  ASSERT_TRUE(cold.at("ok").as_bool());
  EXPECT_EQ(cold.at("results").items()[0].at("source").as_string(), "solved");

  // The isomorph hashes to the same canonical key, so it must land on
  // the node that just solved the class — every cell a cache hit.
  const json::Value warm =
      json::parse(client.call(check_frame(kSbIsomorph, "b")));
  ASSERT_TRUE(warm.at("ok").as_bool());
  for (const auto& r : warm.at("results").items()) {
    EXPECT_EQ(r.at("source").as_string(), "cache");
  }

  router.begin_drain();
  router.wait();
  node1.begin_drain();
  node1.wait();
  node2.begin_drain();
  node2.wait();
}

TEST(RouterEndToEnd, BatchSplitsAcrossNodesAndMergesInOrder) {
  // Both nodes own part of the batch, so the merge-order check below
  // genuinely exercises a cross-node split and reassembly.
  const std::string dir = make_split_tmpdir();
  ServerOptions s1, s2;
  s1.unix_socket = dir + "/n1";
  s2.unix_socket = dir + "/n2";
  Server node1(s1), node2(s2);
  node1.start();
  node2.start();

  const std::vector<std::string> specs = {"unix:" + dir + "/n1",
                                          "unix:" + dir + "/n2"};
  Router router(quiet_router(dir + "/r", specs));
  router.start();
  auto client = Client::connect_unix(dir + "/r");

  // One bare-array frame: 6 checks with a malformed element wedged into
  // position 3 — one response frame per element, in array order, the
  // error in its position and nowhere else.
  std::string frame = "[";
  int elem = 0;
  for (int i = 0; i < 6; ++i) {
    if (i == 3) {
      if (elem++ > 0) frame += ", ";
      frame += "{\"op\": \"nope\", \"id\": \"bad\"}";
    }
    if (elem++ > 0) frame += ", ";
    std::string one = check_frame(kPrograms[i], "e" + std::to_string(i));
    frame += one;
  }
  frame += "]";
  client.send_frame(frame);

  const char* expected_ids[7] = {"e0", "e1", "e2", "bad", "e3", "e4", "e5"};
  for (int i = 0; i < 7; ++i) {
    const auto reply = client.read_frame();
    ASSERT_TRUE(reply.has_value()) << "response " << i << " missing";
    const json::Value doc = json::parse(*reply);
    EXPECT_EQ(doc.at("id").as_string(), expected_ids[i]) << "position " << i;
    if (std::string(expected_ids[i]) == "bad") {
      EXPECT_FALSE(doc.at("ok").as_bool());
      EXPECT_EQ(doc.at("error").at("type").as_string(), "bad_request");
    } else {
      EXPECT_TRUE(doc.at("ok").as_bool());
    }
  }

  router.begin_drain();
  router.wait();
  node1.begin_drain();
  node1.wait();
  node2.begin_drain();
  node2.wait();
}

TEST(RouterEndToEnd, FailsOverToRingSuccessorWhenNodeDies) {
  const std::string dir = make_tmpdir();
  ServerOptions s1, s2;
  s1.unix_socket = dir + "/n1";
  s2.unix_socket = dir + "/n2";
  Server node1(s1), node2(s2);
  node1.start();
  node2.start();

  const std::vector<std::string> specs = {"unix:" + dir + "/n1",
                                          "unix:" + dir + "/n2"};
  Router router(quiet_router(dir + "/r", specs));
  router.start();
  auto client = Client::connect_unix(dir + "/r");

  ASSERT_TRUE(json::parse(client.call(check_frame(kSbProgram, "warm")))
                  .at("ok")
                  .as_bool());

  // Kill the program's home node (graceful here; the SIGKILL variant is
  // the smoke test's job — to the router both are a dead socket).
  const HashRing ring(specs);
  const std::size_t owner = ring.owner(routing_hash_of(kSbProgram));
  Server& victim = owner == 0 ? node1 : node2;
  victim.begin_drain();
  victim.wait();

  const auto failovers_before =
      metrics::Registry::global().counter("cluster.failovers").value();
  const json::Value after =
      json::parse(client.call(check_frame(kSbProgram, "re")));
  ASSERT_TRUE(after.at("ok").as_bool());
  EXPECT_GT(metrics::Registry::global().counter("cluster.failovers").value(),
            failovers_before);
  EXPECT_TRUE(eventually([&] { return !router.node_up(owner); }));

  router.begin_drain();
  router.wait();
  Server& survivor = owner == 0 ? node2 : node1;
  survivor.begin_drain();
  survivor.wait();
}

TEST(RouterEndToEnd, ShipsWarmSliceToLateJoiningNode) {
  // The late joiner must own a non-empty slice of the corpus, or there
  // is nothing to ship it on the down→up transition.
  const std::string dir = make_split_tmpdir();
  const std::string corpus = dir + "/corpus";
  std::filesystem::create_directories(corpus);
  for (int i = 0; i < 6; ++i) {
    std::ofstream out(corpus + "/t" + std::to_string(i) + ".litmus");
    out << kPrograms[i];
  }

  ServerOptions s1;
  s1.unix_socket = dir + "/n1";
  Server node1(s1);
  node1.start();

  const std::vector<std::string> specs = {"unix:" + dir + "/n1",
                                          "unix:" + dir + "/n2"};
  RouterOptions ropts = quiet_router(dir + "/r", specs);
  ropts.ship_corpus = corpus;
  Router router(ropts);
  router.start();  // node2 not running: comes up mid-flight below
  EXPECT_EQ(router.ship_set_size(), 6u);
  EXPECT_TRUE(router.node_up(0));
  EXPECT_FALSE(router.node_up(1));

  const auto shipped_before =
      metrics::Registry::global().counter("cluster.shipped_records").value();
  ServerOptions s2;
  s2.unix_socket = dir + "/n2";
  Server node2(s2);
  node2.start();
  ASSERT_TRUE(eventually([&] { return router.node_up(1); }));
  // The joiner was shipped its home slice BEFORE entering rotation.
  EXPECT_GT(metrics::Registry::global()
                .counter("cluster.shipped_records")
                .value(),
            shipped_before);

  // Every program is warm on its home node now: all sources "cache".
  auto client = Client::connect_unix(dir + "/r");
  for (int i = 0; i < 6; ++i) {
    const json::Value doc = json::parse(
        client.call(check_frame(kPrograms[i], "w" + std::to_string(i))));
    ASSERT_TRUE(doc.at("ok").as_bool()) << kPrograms[i];
    for (const auto& r : doc.at("results").items()) {
      EXPECT_EQ(r.at("source").as_string(), "cache") << kPrograms[i];
    }
  }

  router.begin_drain();
  router.wait();
  node1.begin_drain();
  node1.wait();
  node2.begin_drain();
  node2.wait();
}

TEST(RouterDrain, ChecksAfterShutdownAnswerDrainingInPosition) {
  const std::string dir = make_tmpdir();
  ServerOptions sopts;
  sopts.unix_socket = dir + "/n1";
  Server node(sopts);
  node.start();

  Router router(quiet_router(dir + "/r", {"unix:" + dir + "/n1"}));
  router.start();
  auto client = Client::connect_unix(dir + "/r");

  // One batch frame [shutdown, check]: the ack flips the router to
  // draining before the check is routed, so the check's in-position
  // response is the typed `draining` error — deterministically.
  std::string frame = "[{\"op\": \"shutdown\", \"id\": \"s\"}, ";
  frame += check_frame(kSbProgram, "c");
  frame += "]";
  client.send_frame(frame);
  const json::Value ack = json::parse(*client.read_frame());
  EXPECT_TRUE(ack.at("ok").as_bool());
  EXPECT_TRUE(ack.at("draining").as_bool());
  const json::Value refused = json::parse(*client.read_frame());
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_EQ(refused.at("error").at("type").as_string(), "draining");

  client.shutdown_write();
  router.wait();  // drains cleanly with the connection still open
  node.begin_drain();
  node.wait();
}

// ---------------------------------------------------------------------------
// Against scripted nodes (typed-error retry policy)

TEST(RouterRetry, RetriesOverloadedOnSameNodeAfterBackoff) {
  const std::string dir = make_tmpdir();
  std::atomic<int> checks{0};
  FakeNode fake(dir + "/f1", [&](const json::Value& doc) {
    return checks.fetch_add(1) == 0 ? fake_error(doc, "overloaded")
                                    : fake_ok(doc);
  });
  fake.start();

  Router router(quiet_router(dir + "/r", {"unix:" + dir + "/f1"}));
  router.start();
  auto client = Client::connect_unix(dir + "/r");

  const auto retries_before =
      metrics::Registry::global().counter("cluster.retries").value();
  const json::Value doc =
      json::parse(client.call(check_frame(kSbProgram, "x")));
  EXPECT_TRUE(doc.at("ok").as_bool());  // second attempt, same node
  EXPECT_EQ(checks.load(), 2);
  EXPECT_GT(metrics::Registry::global().counter("cluster.retries").value(),
            retries_before);

  router.begin_drain();
  router.wait();
}

TEST(RouterRetry, ReRoutesDrainingToRingSuccessor) {
  const std::string dir = make_tmpdir();
  const std::vector<std::string> specs = {"unix:" + dir + "/f1",
                                          "unix:" + dir + "/f2"};
  // Script the program's HOME node to answer `draining` forever; the
  // successor answers ok.  The router must re-route, not fail.
  const HashRing ring(specs);
  const std::size_t owner = ring.owner(routing_hash_of(kSbProgram));
  std::atomic<int> drain_hits{0}, ok_hits{0};
  FakeNode drainer(dir + (owner == 0 ? "/f1" : "/f2"),
                   [&](const json::Value& doc) {
                     drain_hits.fetch_add(1);
                     return fake_error(doc, "draining");
                   });
  FakeNode survivor(dir + (owner == 0 ? "/f2" : "/f1"),
                    [&](const json::Value& doc) {
                      ok_hits.fetch_add(1);
                      return fake_ok(doc);
                    });
  drainer.start();
  survivor.start();

  Router router(quiet_router(dir + "/r", specs));
  router.start();
  auto client = Client::connect_unix(dir + "/r");

  const auto failovers_before =
      metrics::Registry::global().counter("cluster.failovers").value();
  const json::Value doc =
      json::parse(client.call(check_frame(kSbProgram, "x")));
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_GE(drain_hits.load(), 1);
  EXPECT_GE(ok_hits.load(), 1);
  EXPECT_GT(metrics::Registry::global().counter("cluster.failovers").value(),
            failovers_before);

  router.begin_drain();
  router.wait();
}

TEST(NodePoolHandshake, RejectsProtocolMismatchWithTypedError) {
  const std::string dir = make_tmpdir();
  FakeNode fake(dir + "/f1", fake_ok, /*proto=*/99);
  fake.start();

  NodePool pool(NodeAddress::parse("unix:" + dir + "/f1"), PoolOptions{});
  try {
    auto lease = pool.acquire();
    FAIL() << "expected ClusterError";
  } catch (const ClusterError& e) {
    EXPECT_EQ(e.type(), "proto_mismatch");
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos);
  }
}

TEST(NodePoolHandshake, LearnsNodeIdentityFromPing) {
  const std::string dir = make_tmpdir();
  ServerOptions sopts;
  sopts.unix_socket = dir + "/n1";
  sopts.node_id = "alpha";
  Server node(sopts);
  node.start();

  NodePool pool(NodeAddress::parse("unix:" + dir + "/n1"), PoolOptions{});
  {
    auto lease = pool.acquire();
    (void)lease;
  }
  EXPECT_EQ(pool.node_id(), "alpha");

  node.begin_drain();
  node.wait();
}

TEST(NodeAddressSpec, ParsesAndRejects) {
  const NodeAddress unix_addr = NodeAddress::parse("unix:/tmp/x.sock");
  EXPECT_TRUE(unix_addr.is_unix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");
  const NodeAddress tcp = NodeAddress::parse("10.0.0.7:7411");
  EXPECT_FALSE(tcp.is_unix);
  EXPECT_EQ(tcp.host, "10.0.0.7");
  EXPECT_EQ(tcp.port, 7411);
  const NodeAddress bare = NodeAddress::parse(":7411");
  EXPECT_EQ(bare.host, "127.0.0.1");
  EXPECT_THROW(NodeAddress::parse("unix:"), InvalidInput);
  EXPECT_THROW(NodeAddress::parse("nocolon"), InvalidInput);
  EXPECT_THROW(NodeAddress::parse("host:0"), InvalidInput);
  EXPECT_THROW(NodeAddress::parse("host:99999"), InvalidInput);
  EXPECT_THROW(NodeAddress::parse("host:12ab"), InvalidInput);
}
