#include "history/system_history.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "history/print.hpp"

namespace ssm::history {
namespace {

TEST(SystemHistory, AppendAssignsSeqAndIndex) {
  SystemHistory h(SymbolTable::canonical(2, 2));
  Operation op;
  op.kind = OpKind::Write;
  op.proc = 0;
  op.loc = 0;
  op.value = 1;
  const OpIndex a = h.append(op);
  op.proc = 1;
  op.value = 2;
  const OpIndex b = h.append(op);
  op.proc = 0;
  op.kind = OpKind::Read;
  op.value = 1;
  const OpIndex c = h.append(op);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(h.op(a).seq, 0u);
  EXPECT_EQ(h.op(c).seq, 1u);  // second op of processor 0
  EXPECT_EQ(h.op(b).seq, 0u);
  EXPECT_EQ(h.num_processors(), 2u);
}

TEST(SystemHistory, ProcessorOpsInProgramOrder) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("q", "y", 1)
               .r("p", "y", 0)
               .build();
  const auto ops = h.processor_ops(0);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(h.op(ops[0]).is_write());
  EXPECT_TRUE(h.op(ops[1]).is_read());
}

TEST(SystemHistory, WritesToAndAllWrites) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .w("q", "x", 2)
               .w("q", "y", 1)
               .r("p", "y", 1)
               .build();
  EXPECT_EQ(h.writes_to(0).size(), 2u);
  EXPECT_EQ(h.writes_to(1).size(), 1u);
  EXPECT_EQ(h.all_writes().size(), 3u);
  EXPECT_EQ(h.all_reads().size(), 1u);
}

TEST(SystemHistory, WriterOfFindsUniqueWriter) {
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .r("q", "x", 0)
               .build();
  const auto reads = h.all_reads();
  EXPECT_EQ(h.writer_of(reads[0]), h.all_writes()[0]);
  EXPECT_EQ(h.writer_of(reads[1]), kNoOp);  // reads initial value
}

TEST(SystemHistory, WriterOfRejectsUnwrittenValue) {
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)
               .r("q", "x", 7)
               .build_unchecked();
  EXPECT_THROW((void)h.writer_of(h.all_reads()[0]), InvalidInput);
}

TEST(SystemHistory, ValidateCatchesDuplicateWriteValues) {
  auto h = HistoryBuilder(2, 1)
               .w("p", "x", 1)
               .w("q", "x", 1)
               .build_unchecked();
  EXPECT_TRUE(h.validate().has_value());
}

TEST(SystemHistory, ValidateCatchesWriteOfInitialValue) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 0).build_unchecked();
  EXPECT_TRUE(h.validate().has_value());
}

TEST(SystemHistory, ValidateAcceptsWellFormed) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build_unchecked();
  EXPECT_FALSE(h.validate().has_value());
}

TEST(SystemHistory, RmwCountsAsReadAndWrite) {
  auto h = HistoryBuilder(1, 1).rmw("p", "x", 0, 1).build();
  const auto& op = h.op(0);
  EXPECT_TRUE(op.is_read());
  EXPECT_TRUE(op.is_write());
  EXPECT_EQ(op.read_value(), 0);
  EXPECT_EQ(op.value, 1);
  EXPECT_EQ(h.all_writes().size(), 1u);
  EXPECT_EQ(h.all_reads().size(), 1u);
}

TEST(Print, FormatHistoryMatchesPaperStyle) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  EXPECT_EQ(format_history(h), "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
}

TEST(Print, FormatOpShowsLabels) {
  auto h = HistoryBuilder(1, 1).wl("p", "x", 1).build();
  EXPECT_EQ(format_op(h, 0), "w_p(x)1*");
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable t;
  const LocId a = t.intern_location("x");
  const LocId b = t.intern_location("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.location("x"), a);
  EXPECT_EQ(t.location_name(a), "x");
}

TEST(SymbolTable, UnknownLookupsThrow) {
  SymbolTable t;
  EXPECT_THROW((void)t.location("nope"), InvalidInput);
  EXPECT_THROW((void)t.processor("nope"), InvalidInput);
  EXPECT_THROW((void)t.location_name(0), InvalidInput);
}

}  // namespace
}  // namespace ssm::history
