#include "history/print.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"

namespace ssm::history {
namespace {

TEST(Print, FormatSequence) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .build();
  EXPECT_EQ(format_sequence(h, {1, 0}), "r_q(x)1 w_p(x)1");
  EXPECT_EQ(format_sequence(h, {}), "");
}

TEST(Print, RmwFormatting) {
  auto h = HistoryBuilder(1, 1).rmw("p", "x", 0, 1).build();
  EXPECT_EQ(format_op(h, 0), "rmw_p(x)1<-0");
  EXPECT_EQ(format_history(h), "p: rmw(x)1<-0\n");
}

TEST(Print, OperationToStringStandalone) {
  Operation op;
  op.kind = OpKind::Write;
  op.proc = 2;
  op.loc = 1;
  op.value = 7;
  op.label = OpLabel::Labeled;
  EXPECT_EQ(to_string(op), "w_2(x1)7*");
}

TEST(Canonicalized, RenamesSymbolsOnly) {
  SymbolTable table;
  table.intern_processor("alpha");
  table.intern_processor("beta");
  table.intern_location("counter");
  SystemHistory h(table);
  Operation op;
  op.kind = OpKind::Write;
  op.proc = 0;
  op.loc = 0;
  op.value = 1;
  h.append(op);
  op.kind = OpKind::Read;
  op.proc = 1;
  h.append(op);
  const auto canon = canonicalized(h);
  EXPECT_EQ(format_history(h), "alpha: w(counter)1\nbeta: r(counter)1\n");
  EXPECT_EQ(format_history(canon), "p: w(x)1\nq: r(x)1\n");
  ASSERT_EQ(canon.size(), h.size());
  for (OpIndex i = 0; i < h.size(); ++i) {
    EXPECT_EQ(canon.op(i).value, h.op(i).value);
    EXPECT_EQ(canon.op(i).kind, h.op(i).kind);
  }
}

TEST(Canonicalized, IdempotentOnCanonicalInput) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .build();
  EXPECT_EQ(format_history(canonicalized(h)), format_history(h));
}

TEST(TypesToString, KindAndLabel) {
  EXPECT_STREQ(ssm::to_string(OpKind::Read), "read");
  EXPECT_STREQ(ssm::to_string(OpKind::Write), "write");
  EXPECT_STREQ(ssm::to_string(OpKind::ReadModifyWrite), "rmw");
  EXPECT_STREQ(ssm::to_string(OpLabel::Ordinary), "ordinary");
  EXPECT_STREQ(ssm::to_string(OpLabel::Labeled), "labeled");
}

}  // namespace
}  // namespace ssm::history
