#include "history/builder.hpp"

#include <gtest/gtest.h>

namespace ssm::history {
namespace {

TEST(HistoryBuilder, BuildsFigureOne) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("p", "y", 0)
               .w("q", "y", 1)
               .r("q", "x", 0)
               .build();
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.num_processors(), 2u);
  EXPECT_EQ(h.num_locations(), 2u);
}

TEST(HistoryBuilder, BuildValidates) {
  EXPECT_THROW((void)HistoryBuilder(2, 1)
                   .w("p", "x", 1)
                   .w("q", "x", 1)
                   .build(),
               InvalidInput);
}

TEST(HistoryBuilder, LabeledHelpers) {
  auto h = HistoryBuilder(1, 2).wl("p", "x", 1).rl("p", "y", 0).build();
  EXPECT_TRUE(h.op(0).is_release());
  EXPECT_TRUE(h.op(1).is_acquire());
  EXPECT_FALSE(h.op(0).is_acquire());
}

TEST(HistoryBuilder, NewNamesExtendSymbolTable) {
  auto h = HistoryBuilder(1, 1).w("p", "flag", 1).w("zz", "x", 2).build();
  EXPECT_EQ(h.num_processors(), 2u);
  EXPECT_EQ(h.num_locations(), 2u);
  EXPECT_EQ(h.symbols().processor_name(1), "zz");
}

TEST(HistoryBuilder, RmwValidatesReadPart) {
  // rmw observing a never-written nonzero value is invalid.
  EXPECT_THROW((void)HistoryBuilder(1, 1).rmw("p", "x", 9, 1).build(),
               InvalidInput);
}

}  // namespace
}  // namespace ssm::history
