#include "history/dot.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "order/orders.hpp"

namespace ssm::history {
namespace {

TEST(Dot, RendersClustersAndLayers) {
  auto h = HistoryBuilder(2, 1).w("p", "x", 1).r("q", "x", 1).build();
  const auto po = order::program_order(h);
  const auto wb = order::writes_before(h);
  const std::string dot = to_dot(
      h, {{"po", "gray50", &po, true}, {"wb", "blue", &wb, false}}, "t");
  EXPECT_NE(dot.find("digraph \"t\""), std::string::npos);
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("w_p(x)1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"wb\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1 [color=blue"), std::string::npos);
}

TEST(Dot, TransitiveReductionDropsImpliedEdges) {
  auto h = HistoryBuilder(1, 3)
               .w("p", "x", 1)
               .w("p", "y", 1)
               .w("p", "z", 1)
               .build();
  const auto po = order::program_order(h);  // closed: 0->1,0->2,1->2
  const std::string reduced =
      to_dot(h, {{"po", "black", &po, true}}, "r");
  // 0 -> 2 is implied via 1 and must be dropped.
  EXPECT_EQ(reduced.find("n0 -> n2 [color=black"), std::string::npos);
  EXPECT_NE(reduced.find("n0 -> n1 [color=black"), std::string::npos);
  const std::string full = to_dot(h, {{"po", "black", &po, false}}, "f");
  EXPECT_NE(full.find("n0 -> n2 [color=black"), std::string::npos);
}

TEST(Dot, NullLayerSkipped) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).build();
  const std::string dot = to_dot(h, {{"po", "black", nullptr, true}}, "n");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace ssm::history
