#include "history/subhistory.hpp"

#include <gtest/gtest.h>

#include "history/builder.hpp"

namespace ssm::history {
namespace {

TEST(SubHistory, ExtractLabeledSubset) {
  auto h = HistoryBuilder(2, 3)
               .w("p", "d", 1)
               .wl("p", "f", 1)
               .rl("q", "f", 1)
               .r("q", "d", 1)
               .build();
  rel::DynBitset mask(h.size());
  for (const auto& op : h.operations()) {
    if (op.is_labeled()) mask.set(op.index);
  }
  const SubHistory s = extract(h, mask);
  ASSERT_EQ(s.sub.size(), 2u);
  EXPECT_EQ(s.to_parent.size(), 2u);
  // Sub op 0 = p's labeled write, sub op 1 = q's labeled read.
  EXPECT_TRUE(s.sub.op(0).is_write());
  EXPECT_TRUE(s.sub.op(1).is_read());
  EXPECT_EQ(h.op(s.to_parent[0]).proc, 0);
  EXPECT_EQ(h.op(s.to_parent[1]).proc, 1);
  // from_parent is the inverse on the mask, kNoOp elsewhere.
  EXPECT_EQ(s.from_parent[s.to_parent[0]], 0u);
  EXPECT_EQ(s.from_parent[s.to_parent[1]], 1u);
  EXPECT_EQ(s.from_parent[0], kNoOp);
}

TEST(SubHistory, SeqNumbersReassigned) {
  auto h = HistoryBuilder(1, 2)
               .w("p", "x", 1)
               .wl("p", "y", 1)
               .wl("p", "x", 2)
               .build();
  rel::DynBitset mask(h.size());
  mask.set(1);
  mask.set(2);
  const SubHistory s = extract(h, mask);
  EXPECT_EQ(s.sub.op(0).seq, 0u);
  EXPECT_EQ(s.sub.op(1).seq, 1u);
  EXPECT_EQ(s.sub.processor_ops(0).size(), 2u);
}

TEST(SubHistory, EmptyMask) {
  auto h = HistoryBuilder(1, 1).w("p", "x", 1).build();
  const SubHistory s = extract(h, rel::DynBitset(h.size()));
  EXPECT_EQ(s.sub.size(), 0u);
  EXPECT_EQ(s.from_parent[0], kNoOp);
}

TEST(SubHistory, FullMaskPreservesEverything) {
  auto h = HistoryBuilder(2, 2)
               .w("p", "x", 1)
               .r("q", "x", 1)
               .w("q", "y", 1)
               .build();
  rel::DynBitset mask(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) mask.set(i);
  const SubHistory s = extract(h, mask);
  EXPECT_EQ(s.sub.size(), h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(s.sub.op(s.from_parent[i]).value, h.op(i).value);
    EXPECT_EQ(s.sub.op(s.from_parent[i]).proc, h.op(i).proc);
  }
}

}  // namespace
}  // namespace ssm::history
