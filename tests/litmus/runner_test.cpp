#include "litmus/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "litmus/suite.hpp"
#include "models/models.hpp"

namespace ssm::litmus {
namespace {

std::vector<models::ModelPtr> two_models() {
  std::vector<models::ModelPtr> m;
  m.push_back(models::make_sc());
  m.push_back(models::make_pram());
  return m;
}

TEST(Runner, RunTestReportsPerModel) {
  const auto out = run_test(find_test("fig1-sb"), two_models());
  ASSERT_EQ(out.per_model.size(), 2u);
  EXPECT_EQ(out.per_model[0].model, "SC");
  EXPECT_FALSE(out.per_model[0].allowed);
  EXPECT_TRUE(out.per_model[1].allowed);
  EXPECT_TRUE(out.all_match());
}

TEST(Runner, MismatchDetected) {
  LitmusTest t = find_test("fig1-sb");
  t.expectations["SC"] = true;  // deliberately wrong
  const auto out = run_test(t, two_models());
  EXPECT_FALSE(out.all_match());
  EXPECT_FALSE(out.per_model[0].matches());
  EXPECT_TRUE(out.per_model[1].matches());
}

TEST(Runner, FormatMatrixShape) {
  const std::vector<LitmusTest> suite{find_test("fig1-sb"),
                                      find_test("mp")};
  const auto outcomes = run_suite(suite, two_models());
  const std::string m = format_matrix(outcomes);
  // Header + one line per test.
  EXPECT_NE(m.find("SC"), std::string::npos);
  EXPECT_NE(m.find("PRAM"), std::string::npos);
  EXPECT_NE(m.find("fig1-sb"), std::string::npos);
  EXPECT_NE(m.find("mp"), std::string::npos);
  EXPECT_EQ(std::count(m.begin(), m.end(), '\n'), 3);
}

TEST(Runner, EmptySuite) {
  EXPECT_EQ(format_matrix({}), "(no tests)\n");
}

TEST(Runner, TinyBudgetSurfacesInconclusive) {
  // fig1-sb is forbidden under SC, so the check must exhaust the search —
  // with one node of budget it cannot conclude anything, and the outcome
  // has to say so rather than report a spurious "forbidden".
  RunOptions options;
  options.budget.max_nodes = 1;
  const std::vector<LitmusTest> suite{find_test("fig1-sb")};
  const auto outcomes = run_suite(suite, two_models(), options);
  ASSERT_EQ(outcomes.size(), 1u);
  const auto& sc = outcomes[0].per_model[0];
  EXPECT_EQ(sc.model, "SC");
  EXPECT_TRUE(sc.inconclusive);
  // INCONCLUSIVE never contradicts an expectation.
  EXPECT_TRUE(sc.matches());
  const std::string m = format_matrix(outcomes);
  EXPECT_NE(m.find('?'), std::string::npos) << m;
}

TEST(Runner, AmpleBudgetMatchesUnbudgetedRun) {
  RunOptions generous;
  generous.budget.max_nodes = 10'000'000;
  const std::vector<LitmusTest> suite{find_test("fig1-sb"),
                                      find_test("mp")};
  const auto budgeted = run_suite(suite, two_models(), generous);
  const auto free_run = run_suite(suite, two_models());
  EXPECT_EQ(format_matrix(budgeted), format_matrix(free_run));
  for (const auto& o : budgeted) {
    for (const auto& pm : o.per_model) {
      EXPECT_FALSE(pm.inconclusive) << o.test << " x " << pm.model;
    }
  }
}

}  // namespace
}  // namespace ssm::litmus
