// Parallel run_suite: the fan-out must be an implementation detail.
// Whatever the pool width, the outcome vector, the rendered matrix, and
// (for fully-completing workloads) even the aggregate search statistics
// are identical to the serial run.
#include "litmus/runner.hpp"

#include <gtest/gtest.h>

#include "checker/legality.hpp"
#include "common/thread_pool.hpp"
#include "history/builder.hpp"
#include "litmus/canonical.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::litmus {
namespace {

using common::ThreadPool;
using history::HistoryBuilder;

/// RAII: every test leaves the global pool serial so test order never
/// matters.
struct SerialAtExit {
  ~SerialAtExit() { ThreadPool::set_global_jobs(1); }
};

bool outcomes_equal(const std::vector<TestOutcome>& a,
                    const std::vector<TestOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].test != b[i].test) return false;
    if (a[i].per_model.size() != b[i].per_model.size()) return false;
    for (std::size_t j = 0; j < a[i].per_model.size(); ++j) {
      const auto& x = a[i].per_model[j];
      const auto& y = b[i].per_model[j];
      if (x.model != y.model || x.allowed != y.allowed ||
          x.expected != y.expected) {
        return false;
      }
    }
  }
  return true;
}

TEST(ParallelRunner, SuiteDeterministicAcrossJobs) {
  SerialAtExit guard;
  const auto suite = builtin_suite();
  ThreadPool::set_global_jobs(1);
  const auto serial = run_suite(suite, models::paper_models());
  const auto serial_matrix = format_matrix(serial);
  for (unsigned jobs : {2u, 8u}) {
    ThreadPool::set_global_jobs(jobs);
    const auto parallel = run_suite(suite, models::paper_models());
    EXPECT_TRUE(outcomes_equal(serial, parallel)) << "jobs=" << jobs;
    EXPECT_EQ(serial_matrix, format_matrix(parallel)) << "jobs=" << jobs;
  }
}

/// Histories admitted by every model in the merge workload below (they are
/// SC-admissible or classic store-buffer outcomes, all far below the weak
/// models used).  All-admitted matters: when every per-processor search
/// completes, no cancellation fires and the node counts are exactly
/// reproducible at any pool width.
std::vector<LitmusTest> all_admitted_suite() {
  std::vector<LitmusTest> suite;
  {
    LitmusTest t;
    t.name = "mp-ok";
    t.hist = HistoryBuilder(2, 2)
                 .w("p", "x", 1)
                 .w("p", "y", 1)
                 .r("q", "y", 1)
                 .r("q", "x", 1)
                 .build();
    suite.push_back(std::move(t));
  }
  {
    LitmusTest t;
    t.name = "sb-zeros";
    t.hist = HistoryBuilder(2, 2)
                 .w("p", "x", 1)
                 .r("p", "y", 0)
                 .w("q", "y", 1)
                 .r("q", "x", 0)
                 .build();
    suite.push_back(std::move(t));
  }
  {
    LitmusTest t;
    t.name = "three-writers";
    t.hist = HistoryBuilder(3, 3)
                 .w("p", "x", 1)
                 .r("p", "y", 0)
                 .w("q", "y", 1)
                 .r("q", "z", 0)
                 .w("r", "z", 1)
                 .r("r", "x", 0)
                 .build();
    suite.push_back(std::move(t));
  }
  return suite;
}

std::vector<models::ModelPtr> weak_models() {
  std::vector<models::ModelPtr> out;
  for (const char* name : {"PRAM", "Causal", "Slow", "Local"}) {
    out.push_back(models::make_model(name));
  }
  return out;
}

TEST(ParallelRunner, StatsMergeAggregatesAcrossWorkers) {
  SerialAtExit guard;
  const auto suite = all_admitted_suite();

  ThreadPool::set_global_jobs(1);
  checker::reset_aggregate_search_stats();
  const auto serial = run_suite(suite, weak_models());
  const auto serial_stats = checker::aggregate_search_stats();

  for (const auto& o : serial) {
    for (const auto& cell : o.per_model) {
      ASSERT_TRUE(cell.allowed)
          << o.test << " vs " << cell.model
          << ": workload must be all-admitted for exact stats equality";
    }
  }
  EXPECT_GT(serial_stats.nodes, 0u);
  EXPECT_GT(serial_stats.searches, 0u);
  EXPECT_EQ(serial_stats.cancelled, 0u);

  ThreadPool::set_global_jobs(4);
  checker::reset_aggregate_search_stats();
  const auto parallel = run_suite(suite, weak_models());
  const auto parallel_stats = checker::aggregate_search_stats();

  EXPECT_TRUE(outcomes_equal(serial, parallel));
  // Workers each searched a slice; the merged totals must equal the
  // serial run's exactly — nothing lost, nothing double-counted.
  EXPECT_EQ(parallel_stats.nodes, serial_stats.nodes);
  EXPECT_EQ(parallel_stats.memo_hits, serial_stats.memo_hits);
  EXPECT_EQ(parallel_stats.searches, serial_stats.searches);
  EXPECT_EQ(parallel_stats.cancelled, 0u);
}

TEST(ParallelRunner, IsomorphismDedupIdenticalAcrossJobsAndToggles) {
  SerialAtExit guard;
  // Each builtin test plus a hand-renamed isomorph (locations swapped via
  // the reversal l -> max-l, values shifted by +7): the dedup path must
  // replay, not re-solve, and the outcome vector must be byte-identical
  // with dedup off, at every pool width.
  std::vector<LitmusTest> suite;
  for (const auto& t : builtin_suite()) {
    suite.push_back(t);
    LitmusTest clone;
    clone.name = t.name + "-iso";
    history::SymbolTable symbols;
    for (std::size_t p = 0; p < t.hist.num_processors(); ++p) {
      symbols.intern_processor("q" + std::to_string(p));
    }
    const std::size_t locs = t.hist.num_locations();
    for (std::size_t l = 0; l < locs; ++l) {
      symbols.intern_location("y" + std::to_string(l));
    }
    clone.hist = history::SystemHistory(std::move(symbols));
    for (std::size_t p = 0; p < t.hist.num_processors(); ++p) {
      for (OpIndex i : t.hist.processor_ops(static_cast<ProcId>(p))) {
        history::Operation op = t.hist.op(i);
        op.loc = static_cast<LocId>(locs - 1 - op.loc);
        if (op.is_write()) op.value += 7;
        if (op.kind == OpKind::ReadModifyWrite) {
          op.rmw_read =
              t.hist.writer_of(i) == kNoOp ? kInitialValue : op.rmw_read + 7;
        } else if (op.is_read()) {
          op.value =
              t.hist.writer_of(i) == kNoOp ? kInitialValue : op.value + 7;
        }
        clone.hist.append(op);
      }
    }
    ASSERT_EQ(canonical_key(clone), canonical_key(t)) << t.name;
    suite.push_back(std::move(clone));
  }

  RunOptions dedup_off;
  dedup_off.dedup_isomorphic = false;
  ThreadPool::set_global_jobs(1);
  const auto reference = run_suite(suite, models::paper_models(), dedup_off);
  for (unsigned jobs : {1u, 4u}) {
    ThreadPool::set_global_jobs(jobs);
    const auto deduped = run_suite(suite, models::paper_models());
    EXPECT_TRUE(outcomes_equal(reference, deduped)) << "jobs=" << jobs;
    EXPECT_EQ(format_matrix(reference), format_matrix(deduped))
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace ssm::litmus
