// litmus::emit is the inverse of the parser; the fuzzing corpus depends
// on the round trip being exact (labels, rmw values, expect lines).
#include "litmus/emit.hpp"

#include <gtest/gtest.h>

#include "fuzz/generator.hpp"
#include "litmus/parser.hpp"
#include "litmus/suite.hpp"

namespace ssm::litmus {
namespace {

/// Structural equality: same processor sequences, op for op.
void expect_same_history(const SystemHistory& a, const SystemHistory& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_processors(), b.num_processors());
  for (OpIndex i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a.op(i) == b.op(i)) << "op " << i << " differs";
  }
}

TEST(Emit, RoundTripsEveryBuiltinTest) {
  for (const auto& t : builtin_suite()) {
    const std::string text = emit(t);
    const auto back = parse_test(text);
    EXPECT_EQ(back.name, t.name);
    EXPECT_EQ(back.origin, t.origin);
    EXPECT_EQ(back.expectations, t.expectations);
    expect_same_history(back.hist, t.hist);
    // Emit is canonical: a second trip reproduces the text byte-for-byte.
    EXPECT_EQ(emit(back), text) << "non-canonical emit for " << t.name;
  }
}

TEST(Emit, RoundTripsGeneratedCases) {
  // Crank every generator feature: labels, rmw, 4-proc IRIW skeletons.
  fuzz::GeneratorSpec spec;
  spec.max_procs = 4;
  spec.max_ops = 4;
  spec.locs = 3;
  spec.label_percent = 50;
  spec.rmw_percent = 40;
  Rng rng(20260807);
  for (int i = 0; i < 300; ++i) {
    const auto t = fuzz::random_test(spec, rng, "case-" + std::to_string(i));
    const std::string text = emit(t);
    const auto back = parse_test(text);
    // The parser assigns LocIds by first appearance while the generator
    // numbers them up front, so histories match up to location renaming;
    // canonical-text equality is the exact structural contract.
    EXPECT_EQ(emit(back), text) << text;
    ASSERT_EQ(back.hist.size(), t.hist.size());
    for (OpIndex j = 0; j < t.hist.size(); ++j) {
      const auto& a = t.hist.op(j);
      const auto& b = back.hist.op(j);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.proc, b.proc);
      EXPECT_EQ(a.value, b.value);
      EXPECT_EQ(a.label, b.label);
      EXPECT_EQ(t.hist.symbols().location_name(a.loc),
                back.hist.symbols().location_name(b.loc));
    }
  }
}

TEST(Emit, ExpectLinesSortedByModelName) {
  auto t = parse_test("name: e\np: w(x)1\nexpect: TSO=yes SC=no\n");
  const std::string text = emit(t);
  EXPECT_NE(text.find("expect: SC=no TSO=yes"), std::string::npos) << text;
}

TEST(Emit, LabeledAndRmwSyntax) {
  const std::string text =
      "name: syntax\np: w*(x)1 rmw(x)1:2 r(x)2\nq: r*(x)0\n";
  const auto t = parse_test(text);
  EXPECT_EQ(emit(t), text);
}

TEST(Emit, SuiteRoundTrip) {
  const auto suite = builtin_suite();
  const auto back = parse_suite(emit_suite(suite));
  ASSERT_EQ(back.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(emit(back[i]), emit(suite[i]));
  }
}

TEST(Emit, ToDslIsAnAlias) {
  for (const auto& t : builtin_suite()) EXPECT_EQ(to_dsl(t), emit(t));
}

}  // namespace
}  // namespace ssm::litmus
