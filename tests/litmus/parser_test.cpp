#include "litmus/parser.hpp"

#include <gtest/gtest.h>

#include "litmus/suite.hpp"

namespace ssm::litmus {
namespace {

TEST(Parser, ParsesSimpleTest) {
  const auto t = parse_test(R"(
name: demo
origin: unit test
p: w(x)1 r(y)0
q: w(y)1 r(x)0
expect: SC=no TSO=yes
)");
  EXPECT_EQ(t.name, "demo");
  EXPECT_EQ(t.origin, "unit test");
  EXPECT_EQ(t.hist.size(), 4u);
  EXPECT_EQ(t.hist.num_processors(), 2u);
  EXPECT_EQ(t.expectation("SC"), std::make_optional(false));
  EXPECT_EQ(t.expectation("TSO"), std::make_optional(true));
  EXPECT_EQ(t.expectation("PC"), std::nullopt);
}

TEST(Parser, ParsesLabelsAndRmw) {
  const auto t = parse_test(R"(
name: demo
p: w*(f)1 rmw(l)0:1 r*(f)1
)");
  EXPECT_TRUE(t.hist.op(0).is_labeled());
  EXPECT_EQ(t.hist.op(1).kind, OpKind::ReadModifyWrite);
  EXPECT_EQ(t.hist.op(1).rmw_read, 0);
  EXPECT_EQ(t.hist.op(1).value, 1);
  EXPECT_TRUE(t.hist.op(2).is_acquire());
}

TEST(Parser, CommentsAndBlanksIgnored) {
  const auto t = parse_test(R"(
# a comment
name: demo

p: w(x)1
# another
)");
  EXPECT_EQ(t.hist.size(), 1u);
}

TEST(Parser, RejectsMissingName) {
  EXPECT_THROW((void)parse_test("p: w(x)1\n"), InvalidInput);
}

TEST(Parser, RejectsMalformedToken) {
  EXPECT_THROW((void)parse_test("name: t\np: v(x)1\n"), InvalidInput);
  EXPECT_THROW((void)parse_test("name: t\np: w(x\n"), InvalidInput);
  EXPECT_THROW((void)parse_test("name: t\np: w(x)\n"), InvalidInput);
  EXPECT_THROW((void)parse_test("name: t\np: rmw(x)1\n"), InvalidInput);
}

TEST(Parser, RejectsInvalidHistory) {
  // Duplicate write value to one location.
  EXPECT_THROW((void)parse_test("name: t\np: w(x)1\nq: w(x)1\n"),
               InvalidInput);
}

TEST(Parser, RejectsBadExpectation) {
  EXPECT_THROW((void)parse_test("name: t\np: w(x)1\nexpect: SC\n"),
               InvalidInput);
  EXPECT_THROW((void)parse_test("name: t\np: w(x)1\nexpect: SC=maybe\n"),
               InvalidInput);
}

TEST(Parser, HandlesCrLfAndTabs) {
  const auto t = parse_test("name: t\r\np:\tw(x)1  r(y)0\r\n");
  EXPECT_EQ(t.name, "t");
  EXPECT_EQ(t.hist.size(), 2u);
}

TEST(Parser, NegativeValuesParse) {
  const auto t = parse_test("name: t\np: w(x)-3 r(x)-3\n");
  EXPECT_EQ(t.hist.op(0).value, -3);
}

TEST(Parser, RejectsUnregisteredExpectationModel) {
  // A typo'd model name used to be accepted silently into expectations,
  // where it would never be checked against anything.
  try {
    (void)parse_test("name: t\np: w(x)1\nexpect: SCC=no\n");
    FAIL() << "unregistered model accepted";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("SCC"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, ErrorsCarryDocumentLineNumbers) {
  try {
    (void)parse_test("name: t\n\np: v(x)1\n");
    FAIL() << "malformed token accepted";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  // In a suite, line numbers are document-absolute, not test-relative.
  try {
    (void)parse_suite("name: one\np: w(x)1\nname: two\nq: r(y]0\n");
    FAIL() << "malformed token accepted";
  } catch (const InvalidInput& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(Parser, FinalTestWithoutTrailingNewlineKeepsLastLine) {
  // The last line of an unterminated document must not be dropped — here
  // it carries the expectation of the final test.
  const auto suite = parse_suite(
      "name: one\np: w(x)1\nname: two\nq: r(y)0\nexpect: SC=yes");
  ASSERT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite[1].expectation("SC"), std::make_optional(true));
  // Same for an operation line.
  const auto ops = parse_suite("name: only\np: w(x)1 r(x)1");
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].hist.size(), 2u);
}

TEST(Parser, SuiteSplitsOnNameHeaders) {
  const auto suite = parse_suite(R"(
name: one
p: w(x)1
name: two
q: r(y)0
)");
  ASSERT_EQ(suite.size(), 2u);
  EXPECT_EQ(suite[0].name, "one");
  EXPECT_EQ(suite[1].name, "two");
}

TEST(Parser, DslRoundTrip) {
  for (const auto& t : builtin_suite()) {
    const std::string dsl = to_dsl(t);
    const auto back = parse_test(dsl);
    EXPECT_EQ(back.name, t.name);
    ASSERT_EQ(back.hist.size(), t.hist.size()) << dsl;
    for (std::size_t i = 0; i < t.hist.size(); ++i) {
      EXPECT_EQ(back.hist.op(static_cast<OpIndex>(i)),
                t.hist.op(static_cast<OpIndex>(i)))
          << t.name << " op " << i;
    }
    EXPECT_EQ(back.expectations, t.expectations);
  }
}

TEST(Parser, DslRoundTripLabeledRmw) {
  // Labeled read-modify-writes exercise every token feature at once:
  // "rmw*(l)0:1" must survive to_dsl -> parse_test unchanged.
  const auto t = parse_test(R"(
name: rmw-labels
p: w*(f)1 rmw*(l)0:1 rmw(l)1:2 r*(f)1
q: rmw(m)0:5
expect: SC=yes
)");
  const auto back = parse_test(to_dsl(t));
  ASSERT_EQ(back.hist.size(), t.hist.size());
  for (std::size_t i = 0; i < t.hist.size(); ++i) {
    EXPECT_EQ(back.hist.op(static_cast<OpIndex>(i)),
              t.hist.op(static_cast<OpIndex>(i)))
        << "op " << i;
  }
  EXPECT_EQ(back.expectations, t.expectations);
  // The serialization itself is a fixed point.
  EXPECT_EQ(to_dsl(back), to_dsl(t));
}

TEST(Parser, SuiteDslRoundTripMultiTest) {
  // Property: concatenating to_dsl over a suite and re-parsing with
  // parse_suite reproduces every test, in order — including the built-in
  // suite, whose documents carry comments, labels, rmws, and
  // expectations.
  const auto& suite = builtin_suite();
  std::string doc;
  for (const auto& t : suite) doc += to_dsl(t);
  const auto back = parse_suite(doc);
  ASSERT_EQ(back.size(), suite.size());
  for (std::size_t k = 0; k < suite.size(); ++k) {
    EXPECT_EQ(back[k].name, suite[k].name);
    ASSERT_EQ(back[k].hist.size(), suite[k].hist.size()) << suite[k].name;
    for (std::size_t i = 0; i < suite[k].hist.size(); ++i) {
      EXPECT_EQ(back[k].hist.op(static_cast<OpIndex>(i)),
                suite[k].hist.op(static_cast<OpIndex>(i)))
          << suite[k].name << " op " << i;
    }
    EXPECT_EQ(back[k].expectations, suite[k].expectations) << suite[k].name;
  }
}

TEST(Suite, BuiltinSuiteIsWellFormed) {
  const auto& suite = builtin_suite();
  EXPECT_GE(suite.size(), 15u);
  for (const auto& t : suite) {
    EXPECT_FALSE(t.hist.validate().has_value()) << t.name;
    EXPECT_FALSE(t.name.empty());
    EXPECT_FALSE(t.origin.empty()) << t.name;
  }
}

TEST(Suite, FindTestByName) {
  EXPECT_EQ(find_test("fig1-sb").name, "fig1-sb");
  EXPECT_THROW((void)find_test("nope"), InvalidInput);
}

}  // namespace
}  // namespace ssm::litmus
