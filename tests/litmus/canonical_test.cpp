// Symmetry canonicalization properties (litmus/canonical.hpp): invariance
// under isomorphism, exact round-tripping of the canonical form, verdict
// transport across the whole 18-model matrix, and witness remapping.
#include "litmus/canonical.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/witness.hpp"
#include "checker/witness_verifier.hpp"
#include "common/thread_pool.hpp"
#include "fuzz/generator.hpp"
#include "litmus/emit.hpp"
#include "litmus/parser.hpp"
#include "litmus/runner.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"

namespace ssm::litmus {
namespace {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic isomorphic clone #k of `t`: processors rotated by k+1,
/// locations reverse-permuted, written values shifted by 7*(k+1) (a
/// per-location bijection).  Reads follow their writers; initial-value
/// reads stay 0.  Canonicalization must erase all of it.
LitmusTest make_clone(const LitmusTest& t, std::size_t k) {
  const auto& h = t.hist;
  const std::size_t procs = h.num_processors();
  const std::size_t locs = h.num_locations();
  const Value offset = static_cast<Value>(7 * (k + 1));

  history::SymbolTable symbols;
  for (std::size_t p = 0; p < procs; ++p) {
    symbols.intern_processor("q" + std::to_string(p));
  }
  for (std::size_t l = 0; l < locs; ++l) {
    symbols.intern_location("y" + std::to_string(l));
  }
  LitmusTest out;
  out.name = t.name + "_clone";
  out.hist = history::SystemHistory(std::move(symbols));
  for (std::size_t pos = 0; pos < procs; ++pos) {
    for (ProcId orig = 0; orig < procs; ++orig) {
      if ((orig + k + 1) % procs != pos) continue;
      for (OpIndex i : h.processor_ops(orig)) {
        const history::Operation& src = h.op(i);
        history::Operation op;
        op.kind = src.kind;
        op.label = src.label;
        op.proc = static_cast<ProcId>(pos);
        op.loc = static_cast<LocId>(locs - 1 - src.loc);
        const auto read = [&] {
          return h.writer_of(i) == kNoOp
                     ? kInitialValue
                     : static_cast<Value>(src.read_value() + offset);
        };
        if (src.kind == OpKind::ReadModifyWrite) {
          op.value = static_cast<Value>(src.value + offset);
          op.rmw_read = read();
        } else if (src.is_write()) {
          op.value = static_cast<Value>(src.value + offset);
        } else {
          op.value = read();
        }
        out.hist.append(op);
      }
    }
  }
  return out;
}

fuzz::GeneratorSpec small_spec() {
  fuzz::GeneratorSpec spec;
  spec.max_procs = 3;
  spec.max_ops = 4;
  spec.locs = 2;
  spec.label_percent = 25;
  spec.rmw_percent = 20;
  return spec;
}

TEST(Canonical, InvariantUnderIsomorphismOnGeneratedCases) {
  const auto spec = small_spec();
  Rng rng(20260807);
  for (int i = 0; i < 200; ++i) {
    const auto t = fuzz::random_test(spec, rng, "case-" + std::to_string(i));
    const std::string key = canonical_key(t);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(canonical_key(make_clone(t, k)), key)
          << "clone " << k << " of:\n"
          << emit(t);
    }
  }
}

TEST(Canonical, CanonicalFormIsAFixpointAndRoundTrips) {
  const auto spec = small_spec();
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto t = fuzz::random_test(spec, rng, "fix-" + std::to_string(i));
    const Canonical c = canonicalize(t);
    EXPECT_EQ(emit(c.test), c.key);
    // The representative is its own representative…
    const Canonical cc = canonicalize(c.test);
    EXPECT_TRUE(cc.is_identity()) << c.key;
    EXPECT_EQ(cc.key, c.key);
    // …and the key survives a parse/emit round trip exactly.
    const auto back = parse_test(c.key);
    EXPECT_EQ(emit(back), c.key);
    EXPECT_EQ(canonicalize(back).key, c.key);
  }
}

TEST(Canonical, BuiltinSuiteKeysAreStableAcrossClones) {
  for (const auto& t : builtin_suite()) {
    const std::string key = canonical_key(t);
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_EQ(canonical_key(make_clone(t, k)), key) << t.name;
    }
  }
}

/// Serializes one verdict matrix row per test: "name model=verdict …".
std::string matrix_row(const LitmusTest& t,
                       const std::vector<models::ModelPtr>& models) {
  std::string row = t.name;
  for (const auto& m : models) {
    const auto v = m->check(t.hist);
    row += ' ';
    row += m->name();
    row += v.inconclusive ? "=inconclusive" : (v.allowed ? "=allowed"
                                                         : "=forbidden");
  }
  row += '\n';
  return row;
}

TEST(Canonical, VerdictMatrixTransportsToCanonicalForm) {
  // Every model must give the canonical representative the same verdict as
  // the original — this is the soundness argument behind keying caches on
  // the canonical form.  Checked over the full paper model set.
  common::ThreadPool::set_global_jobs(1);
  const auto models = models::paper_models();
  std::string original, canonical;
  for (const auto& t : builtin_suite()) {
    std::string row = matrix_row(t, models);
    original += row;
    LitmusTest rep = canonicalize(t).test;
    rep.name = t.name;  // align the row label; verdicts are the payload
    canonical += matrix_row(rep, models);
  }
  EXPECT_EQ(original, canonical);
  // Pinned: drift in either hash means a model or the canonicalizer
  // changed verdict-visible behavior (update deliberately, with review).
  EXPECT_EQ(fnv1a64(original), 0x70b0598bfb6e41baULL)
      << "matrix changed:\n"
      << original;
  EXPECT_EQ(fnv1a64(original), fnv1a64(canonical));
}

TEST(Canonical, WitnessesRemapToTheOriginalFrame) {
  // Solve each allowed (builtin test × model) cell on the CANONICAL
  // history, transport the certificate back through the recorded maps, and
  // re-verify it against the ORIGINAL history with the independent
  // verifier.  This is exactly the service cache-hit path.
  common::ThreadPool::set_global_jobs(1);
  const auto models = models::paper_models();
  std::size_t remapped = 0;
  for (const auto& t : builtin_suite()) {
    const Canonical c = canonicalize(t);
    for (const auto& m : models) {
      const auto v = m->check(c.test.hist);
      if (v.inconclusive || !v.allowed) continue;
      const auto w = checker::witness_from_verdict(
          c.test.hist, std::string(m->name()), v);
      const auto back = remap_witness_from_canonical(w, c);
      const auto err = checker::verify_witness(t.hist, back);
      EXPECT_FALSE(err.has_value())
          << t.name << " × " << m->name() << ": " << *err;
      ++remapped;
    }
  }
  EXPECT_GT(remapped, 20u);  // the matrix is mostly-allowed; stay honest
}

TEST(Canonical, SuiteDedupDoesNotChangeTheMatrix) {
  // run_suite with isomorphism dedup on must produce byte-identical
  // outcomes to dedup off — replayed verdicts are real verdicts.
  common::ThreadPool::set_global_jobs(1);
  const auto models = models::paper_models();
  std::vector<LitmusTest> suite;
  for (const auto& t : builtin_suite()) {
    suite.push_back(t);
    suite.push_back(make_clone(t, 0));
    suite.push_back(make_clone(t, 1));
  }
  RunOptions with, without;
  with.dedup_isomorphic = true;
  without.dedup_isomorphic = false;
  const auto serialize = [&](const std::vector<TestOutcome>& outcomes) {
    std::string out;
    for (const auto& o : outcomes) {
      out += o.test;
      for (const auto& cell : o.per_model) {
        out += ' ';
        out += cell.model;
        out += cell.inconclusive ? "=inconclusive"
                                 : (cell.allowed ? "=allowed" : "=forbidden");
      }
      out += '\n';
    }
    return out;
  };
  const std::string deduped = serialize(run_suite(suite, models, with));
  const std::string full = serialize(run_suite(suite, models, without));
  EXPECT_EQ(deduped, full);
  EXPECT_EQ(fnv1a64(deduped), fnv1a64(full));
}

}  // namespace
}  // namespace ssm::litmus
