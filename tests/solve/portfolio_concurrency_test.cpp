// Thread-interaction coverage for portfolio racing, run under the
// `concurrency` label so the TSan build exercises the winner CAS, the
// cancel token, budget poisoning, and the search-thread join from many
// races in flight at once (via run_suite's pool fan-out) — not just one
// race at a time.
#include <gtest/gtest.h>

#include "litmus/parser.hpp"
#include "litmus/runner.hpp"
#include "litmus/suite.hpp"
#include "models/registry.hpp"
#include "solve/portfolio.hpp"

namespace ssm::checker {
namespace {

TEST(PortfolioConcurrency, ManyConcurrentRacesUnderBudget) {
  // Every (test × model) cell races both backends, fanned out across the
  // global pool: dozens of concurrent winner-claims and cancellations.
  litmus::RunOptions opts;
  opts.budget = BudgetSpec{.max_nodes = 100, .timeout_ms = 0};
  opts.backend = Backend::Race;
  const auto out = litmus::run_suite(litmus::builtin_suite(),
                                     models::all_models(), opts);
  EXPECT_EQ(out.size(), litmus::builtin_suite().size());
}

TEST(PortfolioConcurrency, RepeatedCancellationsOfAMidFlightLoser) {
  // The search side needs minutes here; the encoder wins in milliseconds
  // and must cancel a search that is genuinely mid-flight, every time.
  const auto t = litmus::parse_test(
      "name: bigrace\n"
      "p: w(x)1 w(x)2\n"
      "q: r(x)2 r(x)1\n"
      "r: w(y)1 w(y)2 w(y)3 w(y)4 w(y)5 w(y)6 w(y)7 w(y)8\n"
      "s: w(z)1 w(z)2 w(z)3 w(z)4 w(z)5 w(z)6 w(z)7 w(z)8\n");
  for (int i = 0; i < 8; ++i) {
    const auto v = Portfolio::check(t.hist, "TSO", Backend::Race);
    ASSERT_FALSE(v.inconclusive);
    EXPECT_FALSE(v.allowed);
  }
}

}  // namespace
}  // namespace ssm::checker
